//! `alicoco` — command-line interface over the concept net.
//!
//! ```text
//! alicoco build <snapshot> [--full] [--binary] [--embeddings]
//!                                          build a synthetic world, run
//!                                          the pipeline, save the net
//!                                          (--embeddings trains the hybrid
//!                                          retrieval bundle and implies
//!                                          --binary)
//! alicoco stats <snapshot>                 Table-2-style statistics
//! alicoco search <snapshot> <query>        concept cards for a query
//! alicoco qa <snapshot> <question>         scenario question answering
//! alicoco recommend <snapshot>             concept cards for a sampled user
//! alicoco concept <snapshot> <name>        dump one concept's neighbourhood
//! alicoco snapshot convert <in> <out>      convert TSV <-> binary (by magic)
//! alicoco snapshot inspect <file>          section sizes and record counts
//! ```
//!
//! Every `<snapshot>` argument accepts either codec — the format is sniffed
//! from the leading magic bytes (see `alicoco::store`).
//!
//! Any invocation also accepts a global `--metrics <out.json>` flag: the
//! command runs with instrumented engines and the metric registry is
//! exported as deterministic JSON to `out.json` on success. With
//! `--metrics` and no subcommand, a built-in demo net exercises every
//! serving path (search, batch search, QA, recommendation, relevance,
//! snapshot roundtrip) so CI can smoke-test the observability layer
//! without a snapshot on disk.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

use alicoco::{store, AliCoCo, Stats};
use alicoco_apps::{
    CognitiveRecommender, RecommendConfig, RelevanceScorer, ScenarioQa, SearchConfig,
    SemanticSearch,
};
use alicoco_corpus::{Dataset, WorldConfig};
use alicoco_mining::pipeline::{build_alicoco_instrumented, PipelineConfig};
use alicoco_obs::Registry;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_path = match take_metrics_flag(&mut args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let metrics = Registry::new();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..], &metrics),
        Some("stats") => cmd_stats(&args[1..], &metrics),
        Some("search") => cmd_search(&args[1..], &metrics),
        Some("qa") => cmd_qa(&args[1..], &metrics),
        Some("recommend") => cmd_recommend(&args[1..], &metrics),
        Some("concept") => cmd_concept(&args[1..], &metrics),
        Some("snapshot") => cmd_snapshot(&args[1..], &metrics),
        None if metrics_path.is_some() => cmd_demo(&metrics),
        _ => {
            eprintln!(
                "usage: alicoco [--metrics <out.json>] \
                 <build|stats|search|qa|recommend|concept|snapshot> <snapshot> [args]"
            );
            return ExitCode::from(2);
        }
    };
    let result = result.and_then(|()| match &metrics_path {
        Some(path) => write_metrics(path, &metrics),
        None => Ok(()),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Extract a global `--metrics <path>` flag from anywhere in the argument
/// list, returning the path and removing both tokens.
fn take_metrics_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == "--metrics") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err("--metrics requires an output path".to_string());
    }
    let path = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(path))
}

fn write_metrics(path: &str, metrics: &Registry) -> CliResult {
    let mut file = BufWriter::new(File::create(path)?);
    file.write_all(metrics.export_json().as_bytes())?;
    file.write_all(b"\n")?;
    file.flush()?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

/// Load a net from either codec, sniffed by magic. The TSV path keeps the
/// legacy `snapshot.load_*` metric names; binary snapshots record the
/// per-backend `snapshot.binary.*` family.
fn load_net(path: &str, metrics: &Registry) -> Result<AliCoCo, Box<dyn std::error::Error>> {
    Ok(store::load_file(std::path::Path::new(path), metrics)?)
}

fn require<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing argument: {what}"))
}

fn cmd_build(args: &[String], metrics: &Registry) -> CliResult {
    let path = require(args, 0, "snapshot path")?;
    let full = args.iter().any(|a| a == "--full");
    let embeddings = args.iter().any(|a| a == "--embeddings");
    // The ANN trailer only exists in the binary codec, so --embeddings
    // implies --binary.
    let binary = embeddings || args.iter().any(|a| a == "--binary");
    let config = if full {
        WorldConfig::default()
    } else {
        WorldConfig::tiny()
    };
    eprintln!("generating world ({} items)...", config.num_items);
    let ds = Dataset::generate(config);
    eprintln!("running construction pipeline...");
    let (kg, report) = build_alicoco_instrumented(&ds, &PipelineConfig::default(), metrics);
    eprintln!("{report:#?}");
    if embeddings {
        eprintln!("training retrieval embeddings + HNSW indexes...");
        let bundle = alicoco_ann::build_default_bundle(&kg);
        let mut out = Vec::new();
        alicoco_ann::save_snapshot_with_bundle(&kg, &bundle, &mut out)?;
        std::fs::write(path, &out)?;
        eprintln!(
            "bundle: {} tokens (dim {}), {} concept vectors, {} item vectors",
            bundle.tokens().len(),
            bundle.tokens().dim(),
            bundle.concepts().len(),
            bundle.items().len()
        );
    } else if binary {
        let mut out = Vec::new();
        store::save_instrumented(&store::BinaryStore, &kg, &mut out, metrics)?;
        std::fs::write(path, &out)?;
    } else {
        let file = File::create(path)?;
        alicoco::snapshot::save_instrumented(&kg, &mut BufWriter::new(file), metrics)?;
    }
    eprintln!("saved {path}");
    Ok(())
}

/// `snapshot convert <in> <out>` / `snapshot inspect <file>`: storage-layer
/// utilities over both codecs, format sniffed by magic.
fn cmd_snapshot(args: &[String], metrics: &Registry) -> CliResult {
    match args.first().map(String::as_str) {
        Some("convert") => {
            let input = require(args, 1, "input snapshot")?;
            let output = require(args, 2, "output snapshot")?;
            let bytes = std::fs::read(input)?;
            let from = store::detect(&bytes);
            let kg = store::load_instrumented(from, &bytes, metrics)?;
            let to = store::store_for(from.format().other());
            let mut out = Vec::new();
            store::save_instrumented(to, &kg, &mut out, metrics)?;
            std::fs::write(output, &out)?;
            eprintln!(
                "converted {input} ({} bytes, {}) -> {output} ({} bytes, {})",
                bytes.len(),
                from.format(),
                out.len(),
                to.format()
            );
            Ok(())
        }
        Some("inspect") => {
            let path = require(args, 1, "snapshot path")?;
            let bytes = std::fs::read(path)?;
            let backend = store::detect(&bytes);
            let info = store::open_instrumented(backend, &bytes, metrics)?;
            println!("format: {}", info.format);
            println!("total:  {} bytes", info.total_bytes);
            println!("{:<10} {:>12} {:>12}", "section", "bytes", "records");
            for s in &info.sections {
                println!("{:<10} {:>12} {:>12}", s.name, s.bytes, s.records);
            }
            Ok(())
        }
        _ => Err("usage: alicoco snapshot <convert <in> <out> | inspect <file>>".into()),
    }
}

fn cmd_stats(args: &[String], metrics: &Registry) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?, metrics)?;
    print!("{}", Stats::compute(&kg));
    let ci = alicoco::query::concept_item_degrees(&kg);
    let ip = alicoco::query::item_primitive_degrees(&kg);
    println!("Degrees");
    println!(
        "  concept->item   min {} max {} mean {:.2} (isolated {})",
        ci.min, ci.max, ci.mean, ci.isolated
    );
    println!(
        "  item->primitive min {} max {} mean {:.2} (isolated {})",
        ip.min, ip.max, ip.mean, ip.isolated
    );
    Ok(())
}

fn cmd_search(args: &[String], metrics: &Registry) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?, metrics)?;
    let query = require(args, 1, "query")?;
    let engine = SemanticSearch::with_metrics(&kg, SearchConfig::default(), metrics);
    let cards = engine.search(query);
    if cards.is_empty() {
        println!("no concept card for {query:?}; keyword items:");
        for iid in engine.keyword_items(query, 5) {
            println!("  {}", kg.item(iid).title.join(" "));
        }
        return Ok(());
    }
    for card in cards {
        println!("[{:.2}] {}", card.score, card.name);
        for (domain, surface) in &card.interpretation {
            println!("    <{domain}: {surface}>");
        }
        for (iid, w) in card.items.iter().take(5) {
            println!("    ({w:.2}) {}", kg.item(*iid).title.join(" "));
        }
    }
    Ok(())
}

fn cmd_qa(args: &[String], metrics: &Registry) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?, metrics)?;
    let question = require(args, 1, "question")?;
    match ScenarioQa::with_metrics(&kg, metrics).answer(question) {
        Some(a) => {
            println!("for \"{}\" you will need:", a.concept_name);
            for e in &a.checklist {
                println!("  [{:.0}%] {}", e.confidence * 100.0, e.title);
            }
        }
        None => println!("no shopping scenario found for that question"),
    }
    Ok(())
}

fn cmd_recommend(args: &[String], metrics: &Registry) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?, metrics)?;
    let history: Vec<alicoco::ItemId> = kg
        .item_ids()
        .filter(|&i| !kg.concepts_for_item(i).is_empty())
        .take(3)
        .collect();
    if history.is_empty() {
        println!("net has no concept-item links to recommend from");
        return Ok(());
    }
    println!("history:");
    for &i in &history {
        println!("  viewed {}", kg.item(i).title.join(" "));
    }
    let rec = CognitiveRecommender::with_metrics(&kg, RecommendConfig::default(), metrics);
    for r in rec.recommend(&history) {
        println!("[{:.2}] {}", r.affinity, r.name);
        println!("    {}", r.reason.text(&kg, &r.name));
        for (iid, w) in r.items.iter().take(3) {
            println!("    ({w:.2}) {}", kg.item(*iid).title.join(" "));
        }
    }
    Ok(())
}

fn cmd_concept(args: &[String], metrics: &Registry) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?, metrics)?;
    let name = require(args, 1, "concept name")?;
    let cid = kg
        .concept_by_name(name)
        .ok_or_else(|| format!("no concept named {name:?}"))?;
    let c = kg.concept(cid);
    println!("concept: {}", c.name);
    println!("interpreted by:");
    for &p in &c.primitives {
        let prim = kg.primitive(p);
        let domain = kg.class(kg.class_domain(prim.class)).name.clone();
        println!("  <{domain}: {}>", prim.name);
    }
    for &h in &c.hypernyms {
        println!("isA: {}", kg.concept(h).name);
    }
    println!("items ({}):", c.items.len());
    for (iid, w) in kg.items_for_concept(cid).iter().take(10) {
        println!("  ({w:.2}) {}", kg.item(*iid).title.join(" "));
    }
    Ok(())
}

/// A small hand-built net covering every serving path: a concept card for
/// search, a shopping scenario for QA, concept-item links plus a shared
/// primitive for recommendation, and an isA edge for relevance expansion.
fn demo_net() -> AliCoCo {
    let mut kg = AliCoCo::new();
    let root = kg.add_class("concept", None);
    let loc = kg.add_class("Location", Some(root));
    let event = kg.add_class("Event", Some(root));
    let outdoor = kg.add_primitive("outdoor", loc);
    let bbq = kg.add_primitive("barbecue", event);
    let grill_prim = kg.add_primitive("grill", event);
    kg.add_primitive_is_a(grill_prim, bbq);
    let c1 = kg.add_concept("outdoor barbecue");
    kg.link_concept_primitive(c1, outdoor);
    kg.link_concept_primitive(c1, bbq);
    let c2 = kg.add_concept("indoor yoga");
    let _ = c2;
    let grill = kg.add_item(&["brand".into(), "grill".into()]);
    let charcoal = kg.add_item(&["best".into(), "charcoal".into()]);
    let skewers = kg.add_item(&["steel".into(), "skewers".into()]);
    kg.link_concept_item(c1, grill, 0.9);
    kg.link_concept_item(c1, charcoal, 0.8);
    kg.link_item_primitive(grill, bbq);
    kg.link_item_primitive(skewers, bbq);
    kg
}

/// Exercise every instrumented serving path against the demo net so the
/// exported registry contains a sample of each metric family.
fn cmd_demo(metrics: &Registry) -> CliResult {
    let kg = demo_net();

    let search = SemanticSearch::with_metrics(&kg, SearchConfig::default(), metrics);
    let mut cards = 0;
    for q in ["barbecue outdoor", "outdoor", "indoor yoga"] {
        cards += search.search(q).len();
    }
    cards += search
        .search_batch(&["barbecue", "charcoal grill"])
        .iter()
        .map(Vec::len)
        .sum::<usize>();
    println!("search: {cards} concept cards over 5 queries");

    let qa = ScenarioQa::with_metrics(&kg, metrics);
    let answered = ["What should I prepare for a barbecue?", "Quiet evening?"]
        .iter()
        .filter(|q| qa.answer(q).is_some())
        .count();
    println!("qa: {answered} of 2 questions answered");

    let rec = CognitiveRecommender::with_metrics(&kg, RecommendConfig::default(), metrics);
    let history: Vec<alicoco::ItemId> = kg.item_ids().take(1).collect();
    println!("recommend: {} cards", rec.recommend(&history).len());

    let scorer = RelevanceScorer::with_metrics(&kg, metrics);
    let hits = scorer.top_items_expanded(&["barbecue".to_string()], 5);
    println!("relevance: {} items after isA expansion", hits.len());

    let mut buf: Vec<u8> = Vec::new();
    alicoco::snapshot::save_instrumented(&kg, &mut buf, metrics)?;
    let reloaded = alicoco::snapshot::load_instrumented(&mut buf.as_slice(), metrics)?;
    println!(
        "snapshot: roundtripped {} concepts / {} items",
        reloaded.num_concepts(),
        reloaded.num_items()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alicoco::store::Store as _;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn metrics_flag_is_extracted_from_anywhere() {
        let mut args = strings(&["search", "net.tsv", "--metrics", "out.json", "grill"]);
        assert_eq!(
            take_metrics_flag(&mut args).unwrap(),
            Some("out.json".to_string())
        );
        assert_eq!(args, strings(&["search", "net.tsv", "grill"]));

        let mut args = strings(&["--metrics", "m.json"]);
        assert_eq!(
            take_metrics_flag(&mut args).unwrap(),
            Some("m.json".to_string())
        );
        assert!(args.is_empty());

        let mut args = strings(&["stats", "net.tsv"]);
        assert_eq!(take_metrics_flag(&mut args).unwrap(), None);
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn metrics_flag_without_path_is_an_error() {
        let mut args = strings(&["search", "net.tsv", "--metrics"]);
        assert!(take_metrics_flag(&mut args).is_err());
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("alicoco-suite-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_convert_roundtrips_to_oracle_bytes() {
        let dir = scratch_dir("convert");
        let tsv = dir.join("net.tsv");
        let bin = dir.join("net.bin");
        let back = dir.join("back.tsv");
        let kg = demo_net();
        let mut oracle = Vec::new();
        alicoco::snapshot::save(&kg, &mut oracle).unwrap();
        std::fs::write(&tsv, &oracle).unwrap();

        let reg = Registry::new();
        let args = strings(&["convert", tsv.to_str().unwrap(), bin.to_str().unwrap()]);
        cmd_snapshot(&args, &reg).unwrap();
        let bin_bytes = std::fs::read(&bin).unwrap();
        assert_eq!(store::Format::detect(&bin_bytes), store::Format::Binary);

        let args = strings(&["convert", bin.to_str().unwrap(), back.to_str().unwrap()]);
        cmd_snapshot(&args, &reg).unwrap();
        assert_eq!(
            std::fs::read(&back).unwrap(),
            oracle,
            "binary -> model -> TSV must reproduce the oracle bytes"
        );
        // Both backends recorded their own metric family.
        assert_eq!(reg.histogram("snapshot.tsv.load_ns").count(), 1);
        assert_eq!(reg.histogram("snapshot.binary.save_ns").count(), 1);
        assert_eq!(reg.histogram("snapshot.binary.load_ns").count(), 1);
        assert_eq!(reg.histogram("snapshot.tsv.save_ns").count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_inspect_reports_sections_for_both_codecs() {
        let dir = scratch_dir("inspect");
        let kg = demo_net();
        let reg = Registry::new();
        for backend in [&store::TsvStore as &dyn store::Store, &store::BinaryStore] {
            let mut bytes = Vec::new();
            backend.save(&kg, &mut bytes).unwrap();
            let path = dir.join(format!("net.{}", backend.format()));
            std::fs::write(&path, &bytes).unwrap();
            let args = strings(&["inspect", path.to_str().unwrap()]);
            cmd_snapshot(&args, &reg).unwrap();
            let name = format!("snapshot.{}.open_ns", backend.format());
            assert_eq!(reg.histogram(&name).count(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_subcommand_rejects_unknown_actions() {
        let reg = Registry::new();
        assert!(cmd_snapshot(&strings(&["frobnicate"]), &reg).is_err());
        assert!(cmd_snapshot(&strings(&["convert", "only-one-path"]), &reg).is_err());
    }

    #[test]
    fn load_net_auto_detects_binary_snapshots() {
        let dir = scratch_dir("load");
        let kg = demo_net();
        let mut bytes = Vec::new();
        store::BinaryStore.save(&kg, &mut bytes).unwrap();
        let path = dir.join("net.bin");
        std::fs::write(&path, &bytes).unwrap();
        let reg = Registry::new();
        let loaded = load_net(path.to_str().unwrap(), &reg).unwrap();
        assert_eq!(loaded, kg);
        assert_eq!(
            reg.counter("snapshot.binary.loaded_bytes").get(),
            bytes.len() as u64
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_with_embeddings_writes_a_hybrid_snapshot() {
        let dir = scratch_dir("embed-build");
        let path = dir.join("net.alcc");
        let reg = Registry::new();
        cmd_build(&strings(&[path.to_str().unwrap(), "--embeddings"]), &reg).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(store::Format::detect(&bytes), store::Format::Binary);
        let (kg, bundle) = alicoco_ann::load_snapshot_with_bundle(&bytes).unwrap();
        let bundle = bundle.expect("--embeddings must attach the ANN trailer");
        assert_eq!(bundle.concepts().len(), kg.num_concepts());
        assert_eq!(bundle.items().len(), kg.num_items());
        // The bare binary store still reads the graph, trailer ignored.
        let plain = load_net(path.to_str().unwrap(), &reg).unwrap();
        assert_eq!(plain, kg);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn demo_populates_every_metric_family() {
        let reg = Registry::new();
        cmd_demo(&reg).unwrap();
        let json = reg.export_json();
        for family in [
            "search.",
            "qa.",
            "recommend.",
            "relevance.",
            "bm25.",
            "snapshot.",
        ] {
            assert!(json.contains(family), "missing {family}* metrics");
        }
        assert!(reg.counter("search.requests").get() >= 5);
        assert_eq!(
            reg.counter("snapshot.save_records").get(),
            reg.counter("snapshot.load_records").get()
        );
    }
}
