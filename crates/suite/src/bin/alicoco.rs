//! `alicoco` — command-line interface over the concept net.
//!
//! ```text
//! alicoco build <snapshot.tsv> [--full]    build a synthetic world, run the
//!                                          pipeline, save the net
//! alicoco stats <snapshot.tsv>             Table-2-style statistics
//! alicoco search <snapshot.tsv> <query>    concept cards for a query
//! alicoco qa <snapshot.tsv> <question>     scenario question answering
//! alicoco recommend <snapshot.tsv>         concept cards for a sampled user
//! alicoco concept <snapshot.tsv> <name>    dump one concept's neighbourhood
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use alicoco::{AliCoCo, Stats};
use alicoco_apps::{
    CognitiveRecommender, RecommendConfig, ScenarioQa, SearchConfig, SemanticSearch,
};
use alicoco_corpus::{Dataset, WorldConfig};
use alicoco_mining::pipeline::{build_alicoco, PipelineConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("qa") => cmd_qa(&args[1..]),
        Some("recommend") => cmd_recommend(&args[1..]),
        Some("concept") => cmd_concept(&args[1..]),
        _ => {
            eprintln!(
                "usage: alicoco <build|stats|search|qa|recommend|concept> <snapshot.tsv> [args]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn load_net(path: &str) -> Result<AliCoCo, Box<dyn std::error::Error>> {
    let file = File::open(path)?;
    Ok(alicoco::snapshot::load(&mut BufReader::new(file))?)
}

fn require<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing argument: {what}"))
}

fn cmd_build(args: &[String]) -> CliResult {
    let path = require(args, 0, "snapshot path")?;
    let full = args.iter().any(|a| a == "--full");
    let config = if full {
        WorldConfig::default()
    } else {
        WorldConfig::tiny()
    };
    eprintln!("generating world ({} items)...", config.num_items);
    let ds = Dataset::generate(config);
    eprintln!("running construction pipeline...");
    let (kg, report) = build_alicoco(&ds, &PipelineConfig::default());
    eprintln!("{report:#?}");
    let file = File::create(path)?;
    alicoco::snapshot::save(&kg, &mut BufWriter::new(file))?;
    eprintln!("saved {path}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?)?;
    print!("{}", Stats::compute(&kg));
    let ci = alicoco::query::concept_item_degrees(&kg);
    let ip = alicoco::query::item_primitive_degrees(&kg);
    println!("Degrees");
    println!(
        "  concept->item   min {} max {} mean {:.2} (isolated {})",
        ci.min, ci.max, ci.mean, ci.isolated
    );
    println!(
        "  item->primitive min {} max {} mean {:.2} (isolated {})",
        ip.min, ip.max, ip.mean, ip.isolated
    );
    Ok(())
}

fn cmd_search(args: &[String]) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?)?;
    let query = require(args, 1, "query")?;
    let engine = SemanticSearch::new(&kg, SearchConfig::default());
    let cards = engine.search(query);
    if cards.is_empty() {
        println!("no concept card for {query:?}; keyword items:");
        for iid in engine.keyword_items(query, 5) {
            println!("  {}", kg.item(iid).title.join(" "));
        }
        return Ok(());
    }
    for card in cards {
        println!("[{:.2}] {}", card.score, card.name);
        for (domain, surface) in &card.interpretation {
            println!("    <{domain}: {surface}>");
        }
        for (iid, w) in card.items.iter().take(5) {
            println!("    ({w:.2}) {}", kg.item(*iid).title.join(" "));
        }
    }
    Ok(())
}

fn cmd_qa(args: &[String]) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?)?;
    let question = require(args, 1, "question")?;
    match ScenarioQa::new(&kg).answer(question) {
        Some(a) => {
            println!("for \"{}\" you will need:", a.concept_name);
            for e in &a.checklist {
                println!("  [{:.0}%] {}", e.confidence * 100.0, e.title);
            }
        }
        None => println!("no shopping scenario found for that question"),
    }
    Ok(())
}

fn cmd_recommend(args: &[String]) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?)?;
    let history: Vec<alicoco::ItemId> = kg
        .item_ids()
        .filter(|&i| !kg.concepts_for_item(i).is_empty())
        .take(3)
        .collect();
    if history.is_empty() {
        println!("net has no concept-item links to recommend from");
        return Ok(());
    }
    println!("history:");
    for &i in &history {
        println!("  viewed {}", kg.item(i).title.join(" "));
    }
    let rec = CognitiveRecommender::new(&kg, RecommendConfig::default());
    for r in rec.recommend(&history) {
        println!("[{:.2}] {}", r.affinity, r.name);
        println!("    {}", r.reason.text(&kg, &r.name));
        for (iid, w) in r.items.iter().take(3) {
            println!("    ({w:.2}) {}", kg.item(*iid).title.join(" "));
        }
    }
    Ok(())
}

fn cmd_concept(args: &[String]) -> CliResult {
    let kg = load_net(require(args, 0, "snapshot path")?)?;
    let name = require(args, 1, "concept name")?;
    let cid = kg
        .concept_by_name(name)
        .ok_or_else(|| format!("no concept named {name:?}"))?;
    let c = kg.concept(cid);
    println!("concept: {}", c.name);
    println!("interpreted by:");
    for &p in &c.primitives {
        let prim = kg.primitive(p);
        let domain = kg.class(kg.class_domain(prim.class)).name.clone();
        println!("  <{domain}: {}>", prim.name);
    }
    for &h in &c.hypernyms {
        println!("isA: {}", kg.concept(h).name);
    }
    println!("items ({}):", c.items.len());
    for (iid, w) in kg.items_for_concept(cid).iter().take(10) {
        println!("  ({w:.2}) {}", kg.item(*iid).title.join(" "));
    }
    Ok(())
}
