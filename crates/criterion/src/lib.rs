//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The crates.io registry is unreachable in the build environment,
//! so the workspace resolves `criterion` to this path crate.
//!
//! It is a plain wall-clock harness: per benchmark it warms up, then
//! takes `sample_size` samples (each a batch of iterations sized so a
//! sample lasts ≥ ~2ms) and reports min / median / mean. Statistical
//! machinery (outlier classification, HTML reports, comparisons against
//! saved baselines) is out of scope; the numbers are honest wall-clock
//! medians, which is what the experiment tables quote.
//!
//! Covered: [`Criterion::bench_function`], `sample_size`,
//! `measurement_time`, [`black_box`], [`criterion_group!`] (both the
//! plain and `name/config/targets` forms) and [`criterion_main!`].
//! Binaries accept the arguments cargo-bench passes (`--bench`, a name
//! filter) and ignore the rest.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(900),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run benchmarks whose id contains `filter` only (cargo bench
    /// positional argument).
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Configure from command-line arguments as cargo bench invokes us.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown flags (e.g. --save-baseline) are accepted and
                    // ignored; skip a following value if there is one.
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Time one closure-driven benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow the batch until one sample takes >= ~2ms.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || b.iters >= (1 << 24) {
                break;
            }
            b.iters *= 4;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time.max(Duration::from_millis(10));
        for i in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            if Instant::now() > deadline && i >= 1 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<48} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_time(samples[0]),
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
            b.iters,
        );
        self
    }

    /// Finalize (upstream prints summaries here; we print per bench).
    pub fn final_summary(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Passed to the benchmark closure; times the iteration batch.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine for the calibrated number of iterations and record
    /// the elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group benchmark functions, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config.configure_from_args();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20));
        let mut ran = false;
        c.bench_function("smoke/add", |b| {
            ran = true;
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default().sample_size(2).with_filter("nope");
        let mut ran = false;
        c.bench_function("smoke/add", |b| {
            ran = true;
            b.iter(|| 1u64)
        });
        assert!(!ran);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with(" s"));
    }
}
