//! Pluggable storage: both snapshot codecs behind one [`Store`] trait with
//! format auto-detection, so engines and CLIs can swap backends (and later
//! PRs can add new ones) without touching load/save call sites.
//!
//! The two built-in backends are [`TsvStore`] (the line-oriented
//! canonical-bytes oracle) and [`BinaryStore`] (the compact sectioned
//! format of [`crate::snapshot::binary`]). [`Format::detect`] sniffs the
//! magic bytes, [`store_for`]/[`detect`] hand back a `&'static dyn Store`,
//! and the `*_instrumented` helpers record per-backend
//! `snapshot.{tsv,binary}.*` timings and byte counts into a metrics
//! [`Registry`].

use alicoco_obs::{Registry, Stopwatch};

use crate::graph::AliCoCo;
use crate::snapshot::{self, binary, tsv, LoadError, SaveError};
use crate::stats::Stats;

/// The snapshot formats the storage layer knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Line-oriented TSV — the canonical-bytes oracle.
    Tsv,
    /// Compact sectioned binary with zero-copy reads.
    Binary,
}

impl Format {
    /// Sniff the format from leading bytes: binary snapshots always start
    /// with the magic; anything else is treated as TSV (whose strict
    /// parser then reports real errors with line numbers).
    pub fn detect(bytes: &[u8]) -> Format {
        if bytes.starts_with(&binary::MAGIC) {
            Format::Binary
        } else {
            Format::Tsv
        }
    }

    /// Short lowercase name, used in metric names and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Format::Tsv => "tsv",
            Format::Binary => "binary",
        }
    }

    /// The other format — what `snapshot convert` converts *to*.
    pub fn other(self) -> Format {
        match self {
            Format::Tsv => Format::Binary,
            Format::Binary => Format::Tsv,
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One section (or TSV record group) of an opened snapshot.
#[derive(Clone, Debug)]
pub struct SectionInfo {
    /// Human-readable section name.
    pub name: String,
    /// Payload bytes.
    pub bytes: u64,
    /// Record count (0 for blob sections like the string arena).
    pub records: u64,
}

/// What [`Store::open`] reports without materializing a graph.
#[derive(Clone, Debug)]
pub struct SnapshotInfo {
    /// Which codec produced the snapshot.
    pub format: Format,
    /// Total snapshot size in bytes.
    pub total_bytes: u64,
    /// Per-section breakdown.
    pub sections: Vec<SectionInfo>,
}

/// A snapshot backend. All methods work on in-memory byte buffers — the
/// caller owns file IO, which keeps backends trivially testable and lets
/// the binary reader stay zero-copy over whatever buffer (read, mmap)
/// the caller produced.
pub trait Store {
    /// The format this backend reads and writes.
    fn format(&self) -> Format;

    /// Serialize a net. Deterministic: equal nets produce equal bytes.
    fn save(&self, kg: &AliCoCo, out: &mut Vec<u8>) -> Result<(), SaveError>;

    /// Deserialize a net, validating everything; malformed input of any
    /// shape is a typed [`LoadError`], never a panic.
    fn load(&self, bytes: &[u8]) -> Result<AliCoCo, LoadError>;

    /// Inspect a snapshot's structure without building the graph.
    fn open(&self, bytes: &[u8]) -> Result<SnapshotInfo, LoadError>;

    /// Table-2 statistics of the stored net. Backends may override with a
    /// cheaper path; the default materializes via [`Store::load`].
    fn stats(&self, bytes: &[u8]) -> Result<Stats, LoadError> {
        Ok(Stats::compute(&self.load(bytes)?))
    }
}

/// The TSV backend.
pub struct TsvStore;

impl Store for TsvStore {
    fn format(&self) -> Format {
        Format::Tsv
    }

    fn save(&self, kg: &AliCoCo, out: &mut Vec<u8>) -> Result<(), SaveError> {
        snapshot::save(kg, out)
    }

    fn load(&self, bytes: &[u8]) -> Result<AliCoCo, LoadError> {
        let mut r = bytes;
        snapshot::load(&mut r)
    }

    fn open(&self, bytes: &[u8]) -> Result<SnapshotInfo, LoadError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| LoadError::Parse(0, "snapshot is not valid UTF-8".to_string()))?;
        // Group lines into pseudo-sections by record type, in canonical
        // stream order, so TSV and binary inspect output line up.
        let mut bytes_by_kind = vec![0u64; tsv::RECORD_KINDS.len()];
        let mut records_by_kind = vec![0u64; tsv::RECORD_KINDS.len()];
        for (ln, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let tag = line.split('\t').next().unwrap_or("");
            let slot = tsv::RECORD_KINDS
                .iter()
                .position(|&k| k == tag)
                .ok_or_else(|| LoadError::Parse(ln, format!("unknown record type {tag:?}")))?;
            if let (Some(b), Some(r)) = (bytes_by_kind.get_mut(slot), records_by_kind.get_mut(slot))
            {
                *b += line.len() as u64 + 1;
                *r += 1;
            }
        }
        let sections = tsv::RECORD_KINDS
            .iter()
            .zip(bytes_by_kind.iter().zip(records_by_kind.iter()))
            .map(|(&name, (&bytes, &records))| SectionInfo {
                name: name.to_string(),
                bytes,
                records,
            })
            .collect();
        Ok(SnapshotInfo {
            format: Format::Tsv,
            total_bytes: bytes.len() as u64,
            sections,
        })
    }
}

/// The binary backend.
pub struct BinaryStore;

impl Store for BinaryStore {
    fn format(&self) -> Format {
        Format::Binary
    }

    fn save(&self, kg: &AliCoCo, out: &mut Vec<u8>) -> Result<(), SaveError> {
        binary::save(kg, out)
    }

    fn load(&self, bytes: &[u8]) -> Result<AliCoCo, LoadError> {
        binary::load(bytes)
    }

    fn open(&self, bytes: &[u8]) -> Result<SnapshotInfo, LoadError> {
        let view = binary::SnapshotView::open(bytes)?;
        let sections = view
            .section_info()?
            .into_iter()
            .map(|(name, bytes, records)| SectionInfo {
                name: name.to_string(),
                bytes,
                records,
            })
            .collect();
        Ok(SnapshotInfo {
            format: Format::Binary,
            total_bytes: bytes.len() as u64,
            sections,
        })
    }
}

/// The backend for a format.
pub fn store_for(format: Format) -> &'static dyn Store {
    match format {
        Format::Tsv => &TsvStore,
        Format::Binary => &BinaryStore,
    }
}

/// The backend for a byte buffer, by magic sniffing.
pub fn detect(bytes: &[u8]) -> &'static dyn Store {
    store_for(Format::detect(bytes))
}

/// [`Store::save`] plus per-backend metrics: `snapshot.<fmt>.save_ns` and
/// `snapshot.<fmt>.saved_bytes`.
pub fn save_instrumented(
    store: &dyn Store,
    kg: &AliCoCo,
    out: &mut Vec<u8>,
    metrics: &Registry,
) -> Result<(), SaveError> {
    let watch = Stopwatch::start();
    let before = out.len();
    store.save(kg, out)?;
    let fmt = store.format().name();
    metrics
        .histogram(&format!("snapshot.{fmt}.save_ns"))
        .record_duration(watch.elapsed());
    metrics
        .counter(&format!("snapshot.{fmt}.saved_bytes"))
        .add((out.len() - before) as u64);
    Ok(())
}

/// [`Store::load`] plus per-backend metrics: `snapshot.<fmt>.load_ns` and
/// `snapshot.<fmt>.loaded_bytes`.
pub fn load_instrumented(
    store: &dyn Store,
    bytes: &[u8],
    metrics: &Registry,
) -> Result<AliCoCo, LoadError> {
    let watch = Stopwatch::start();
    let kg = store.load(bytes)?;
    let fmt = store.format().name();
    metrics
        .histogram(&format!("snapshot.{fmt}.load_ns"))
        .record_duration(watch.elapsed());
    metrics
        .counter(&format!("snapshot.{fmt}.loaded_bytes"))
        .add(bytes.len() as u64);
    Ok(kg)
}

/// [`Store::open`] plus metrics: `snapshot.<fmt>.open_ns`.
pub fn open_instrumented(
    store: &dyn Store,
    bytes: &[u8],
    metrics: &Registry,
) -> Result<SnapshotInfo, LoadError> {
    let watch = Stopwatch::start();
    let info = store.open(bytes)?;
    metrics
        .histogram(&format!("snapshot.{}.open_ns", store.format().name()))
        .record_duration(watch.elapsed());
    Ok(info)
}

/// Failure of [`load_file`]: either the filesystem or the codec.
#[derive(Debug)]
pub enum FileLoadError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The bytes did not decode.
    Load(LoadError),
}

impl std::fmt::Display for FileLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileLoadError::Io(e) => write!(f, "read: {e}"),
            FileLoadError::Load(e) => write!(f, "load: {e}"),
        }
    }
}

impl std::error::Error for FileLoadError {}

impl From<LoadError> for FileLoadError {
    fn from(e: LoadError) -> Self {
        FileLoadError::Load(e)
    }
}

/// Read `path`, sniff the codec from its magic bytes, and load the net,
/// recording per-backend `snapshot.<fmt>.*` metrics. The one-stop entry
/// point for anything that serves a snapshot from disk — the CLI and
/// `alicoco-serve` both load through here, so format support stays in
/// one place.
pub fn load_file(path: &std::path::Path, metrics: &Registry) -> Result<AliCoCo, FileLoadError> {
    let bytes = std::fs::read(path).map_err(FileLoadError::Io)?;
    Ok(load_instrumented(detect(&bytes), &bytes, metrics)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::test_support::build_sample;

    fn both() -> [&'static dyn Store; 2] {
        [&TsvStore, &BinaryStore]
    }

    #[test]
    fn load_file_sniffs_both_formats_and_types_its_errors() {
        let dir = std::env::temp_dir().join(format!("alicoco-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let kg = build_sample();
        for store in both() {
            let mut bytes = Vec::new();
            store.save(&kg, &mut bytes).unwrap();
            let path = dir.join(format!("net.{}", store.format().name()));
            std::fs::write(&path, &bytes).unwrap();
            let reg = Registry::new();
            let loaded = load_file(&path, &reg).unwrap();
            assert_eq!(loaded, kg);
            assert_eq!(
                reg.counter(&format!("snapshot.{}.loaded_bytes", store.format().name()))
                    .get(),
                bytes.len() as u64
            );
        }
        let missing = load_file(&dir.join("absent"), &Registry::new());
        assert!(matches!(missing, Err(FileLoadError::Io(_))));
        let garbled = dir.join("garbled");
        std::fs::write(&garbled, b"ALCC\x00garbage").ok();
        std::fs::write(&garbled, {
            let mut b = Vec::new();
            BinaryStore.save(&kg, &mut b).unwrap();
            b.truncate(b.len() / 2);
            b
        })
        .unwrap();
        assert!(matches!(
            load_file(&garbled, &Registry::new()),
            Err(FileLoadError::Load(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detection_routes_to_the_right_backend() {
        let kg = build_sample();
        for store in both() {
            let mut bytes = Vec::new();
            store.save(&kg, &mut bytes).unwrap();
            assert_eq!(Format::detect(&bytes), store.format());
            assert_eq!(detect(&bytes).format(), store.format());
        }
        assert_eq!(Format::detect(b""), Format::Tsv);
        assert_eq!(Format::Tsv.other(), Format::Binary);
        assert_eq!(Format::Binary.other(), Format::Tsv);
    }

    #[test]
    fn backends_agree_through_stats() {
        let kg = build_sample();
        let expect = Stats::compute(&kg);
        for store in both() {
            let mut bytes = Vec::new();
            store.save(&kg, &mut bytes).unwrap();
            assert_eq!(store.stats(&bytes).unwrap(), expect, "{}", store.format());
        }
    }

    #[test]
    fn backends_agree_on_the_loaded_graph() {
        let kg = build_sample();
        let mut tsv_bytes = Vec::new();
        TsvStore.save(&kg, &mut tsv_bytes).unwrap();
        let mut bin_bytes = Vec::new();
        BinaryStore.save(&kg, &mut bin_bytes).unwrap();
        let from_tsv = TsvStore.load(&tsv_bytes).unwrap();
        let from_bin = BinaryStore.load(&bin_bytes).unwrap();
        assert_eq!(from_tsv, from_bin);
        assert_eq!(from_bin, kg);
    }

    #[test]
    fn open_reports_sections_without_loading() {
        let kg = build_sample();
        for store in both() {
            let mut bytes = Vec::new();
            store.save(&kg, &mut bytes).unwrap();
            let info = store.open(&bytes).unwrap();
            assert_eq!(info.format, store.format());
            assert_eq!(info.total_bytes, bytes.len() as u64);
            assert!(!info.sections.is_empty());
            let records: u64 = info.sections.iter().map(|s| s.records).sum();
            assert!(records > 0, "{}", store.format());
        }
        // TSV open groups by record kind and counts each line once.
        let mut bytes = Vec::new();
        TsvStore.save(&kg, &mut bytes).unwrap();
        let info = TsvStore.open(&bytes).unwrap();
        let lines = bytes.iter().filter(|&&b| b == b'\n').count() as u64;
        assert_eq!(info.sections.iter().map(|s| s.records).sum::<u64>(), lines);
        assert_eq!(
            info.sections.iter().map(|s| s.bytes).sum::<u64>(),
            bytes.len() as u64
        );
    }

    #[test]
    fn instrumented_helpers_record_per_backend_metrics() {
        let kg = build_sample();
        let reg = Registry::new();
        for store in both() {
            let mut bytes = Vec::new();
            save_instrumented(store, &kg, &mut bytes, &reg).unwrap();
            let loaded = load_instrumented(store, &bytes, &reg).unwrap();
            assert_eq!(loaded, kg);
            open_instrumented(store, &bytes, &reg).unwrap();
            let fmt = store.format().name();
            assert_eq!(reg.histogram(&format!("snapshot.{fmt}.save_ns")).count(), 1);
            assert_eq!(reg.histogram(&format!("snapshot.{fmt}.load_ns")).count(), 1);
            assert_eq!(reg.histogram(&format!("snapshot.{fmt}.open_ns")).count(), 1);
            assert_eq!(
                reg.counter(&format!("snapshot.{fmt}.saved_bytes")).get(),
                bytes.len() as u64
            );
            assert_eq!(
                reg.counter(&format!("snapshot.{fmt}.loaded_bytes")).get(),
                bytes.len() as u64
            );
        }
    }
}
