//! User-needs coverage evaluation (§7.1).
//!
//! The paper samples search queries, rewrites them into coherent word
//! sequences, and measures what fraction of the words are covered by
//! AliCoCo's vocabulary — reporting ~75% for AliCoCo against ~30% for the
//! former CPV-style ontology. This module implements that evaluator over
//! any vocabulary source.

use alicoco_nn::util::FxHashSet;

use crate::graph::AliCoCo;

/// A queryable vocabulary of surface forms.
pub trait VocabularySource {
    /// Does the vocabulary cover this surface form?
    fn covers(&self, surface: &str) -> bool;
}

/// Full AliCoCo vocabulary: primitive concepts + e-commerce concepts.
pub struct FullVocabulary<'a> {
    kg: &'a AliCoCo,
}

impl<'a> FullVocabulary<'a> {
    /// Create a new instance.
    pub fn new(kg: &'a AliCoCo) -> Self {
        FullVocabulary { kg }
    }
}

impl VocabularySource for FullVocabulary<'_> {
    fn covers(&self, surface: &str) -> bool {
        !self.kg.primitives_by_name(surface).is_empty()
            || self.kg.concept_by_name(surface).is_some()
    }
}

/// The "former ontology" baseline: CPV only — primitives whose domain is one
/// of the given classes (typically Category / Brand / Color and other
/// property-like domains), no e-commerce concepts.
pub struct CpvVocabulary<'a> {
    kg: &'a AliCoCo,
    allowed_domains: FxHashSet<crate::ids::ClassId>,
}

impl<'a> CpvVocabulary<'a> {
    /// `domains` are first-level domain names, e.g.
    /// `["Category", "Brand", "Color"]`.
    pub fn new(kg: &'a AliCoCo, domains: &[&str]) -> Self {
        let allowed_domains = domains.iter().filter_map(|d| kg.class_by_name(d)).collect();
        CpvVocabulary {
            kg,
            allowed_domains,
        }
    }
}

impl VocabularySource for CpvVocabulary<'_> {
    fn covers(&self, surface: &str) -> bool {
        self.kg.primitives_by_name(surface).iter().any(|&p| {
            let domain = self.kg.class_domain(self.kg.primitive(p).class);
            self.allowed_domains.contains(&domain)
        })
    }
}

/// Coverage result for one evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Coverage {
    /// Fraction of query *words* covered.
    pub word_coverage: f64,
    /// Fraction of queries with every word covered.
    pub full_query_coverage: f64,
    /// Queries.
    pub queries: usize,
}

/// Stop words skipped during coverage (query rewriting in the paper produces
/// coherent sequences; function words don't count against the ontology).
const STOP: &[&str] = &[
    "for", "in", "the", "a", "an", "and", "of", "with", "to", "gifts",
];

/// Measure coverage of token-sequence queries against a vocabulary.
///
/// Multi-word spans are greedily matched longest-first, so "trench coat" is
/// covered by a single primitive even though neither word alone is.
pub fn evaluate<V: VocabularySource>(vocab: &V, queries: &[Vec<String>]) -> Coverage {
    if queries.is_empty() {
        return Coverage::default();
    }
    let mut covered_words = 0usize;
    let mut total_words = 0usize;
    let mut full = 0usize;
    for q in queries {
        let mut this_covered = 0usize;
        let mut this_total = 0usize;
        let mut i = 0;
        while let Some(word) = q.get(i) {
            if STOP.contains(&word.as_str()) {
                i += 1;
                continue;
            }
            // Longest-first span matching, up to 3 tokens.
            let mut matched = 0;
            for len in (1..=3.min(q.len() - i)).rev() {
                let Some(window) = q.get(i..i + len) else {
                    continue;
                };
                let span = window.join(" ");
                if vocab.covers(&span) {
                    matched = len;
                    break;
                }
            }
            if matched > 0 {
                this_covered += matched;
                this_total += matched;
                i += matched;
            } else {
                this_total += 1;
                i += 1;
            }
        }
        covered_words += this_covered;
        total_words += this_total;
        if this_total > 0 && this_covered == this_total {
            full += 1;
        }
    }
    Coverage {
        word_coverage: if total_words == 0 {
            0.0
        } else {
            covered_words as f64 / total_words as f64
        },
        full_query_coverage: full as f64 / queries.len() as f64,
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kg_with_vocab() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let cat = kg.add_class("Category", Some(root));
        let event = kg.add_class("Event", Some(root));
        let loc = kg.add_class("Location", Some(root));
        kg.add_primitive("grill", cat);
        kg.add_primitive("trench coat", cat);
        kg.add_primitive("barbecue", event);
        kg.add_primitive("outdoor", loc);
        kg.add_concept("outdoor barbecue");
        kg
    }

    fn q(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn full_vocabulary_covers_multiword_and_concepts() {
        let kg = kg_with_vocab();
        let vocab = FullVocabulary::new(&kg);
        let cov = evaluate(
            &vocab,
            &[q(&["trench", "coat"]), q(&["outdoor", "barbecue"])],
        );
        assert_eq!(cov.word_coverage, 1.0);
        assert_eq!(cov.full_query_coverage, 1.0);
    }

    #[test]
    fn cpv_vocabulary_misses_events() {
        // The former ontology knows categories but not events/locations —
        // exactly the gap §7.1 quantifies.
        let kg = kg_with_vocab();
        let cpv = CpvVocabulary::new(&kg, &["Category"]);
        let cov = evaluate(&cpv, &[q(&["grill"]), q(&["outdoor", "barbecue"])]);
        assert!(cov.word_coverage < 0.5);
        assert_eq!(cov.full_query_coverage, 0.5);
        let full = FullVocabulary::new(&kg);
        let cov_full = evaluate(&full, &[q(&["grill"]), q(&["outdoor", "barbecue"])]);
        assert!(cov_full.word_coverage > cov.word_coverage);
    }

    #[test]
    fn stop_words_do_not_count() {
        let kg = kg_with_vocab();
        let vocab = FullVocabulary::new(&kg);
        let cov = evaluate(&vocab, &[q(&["grill", "for", "barbecue"])]);
        assert_eq!(cov.word_coverage, 1.0);
    }

    #[test]
    fn unknown_words_lower_coverage() {
        let kg = kg_with_vocab();
        let vocab = FullVocabulary::new(&kg);
        let cov = evaluate(&vocab, &[q(&["grill", "xyzzy"])]);
        assert!((cov.word_coverage - 0.5).abs() < 1e-9);
        assert_eq!(cov.full_query_coverage, 0.0);
    }

    #[test]
    fn empty_inputs() {
        let kg = kg_with_vocab();
        let vocab = FullVocabulary::new(&kg);
        assert_eq!(evaluate(&vocab, &[]), Coverage::default());
    }
}
