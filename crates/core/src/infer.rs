//! Implied-relation inference (future-work item 1 of §10).
//!
//! The paper's example: "boy's T-shirts" implies `Time: Summer` even though
//! "summer" never appears in the concept. We mine such implications as
//! association rules over the concept → primitive links: if concepts
//! interpreted by primitive `A` are also linked to primitive `B` with high
//! confidence and support, propose the implication `A ⇒ B`.

use alicoco_nn::util::FxHashMap;

use crate::graph::AliCoCo;
use crate::ids::PrimitiveId;

/// A mined implication between primitive concepts.
#[derive(Clone, Debug, PartialEq)]
pub struct Implication {
    /// Antecedent.
    pub antecedent: PrimitiveId,
    /// Consequent.
    pub consequent: PrimitiveId,
    /// Number of concepts containing both.
    pub support: usize,
    /// `P(consequent | antecedent)` over concepts.
    pub confidence: f64,
    /// Lift over the consequent's base rate.
    pub lift: f64,
}

/// Configuration for rule mining.
#[derive(Clone, Copy, Debug)]
pub struct InferConfig {
    /// Min support.
    pub min_support: usize,
    /// Min confidence.
    pub min_confidence: f64,
    /// Min lift.
    pub min_lift: f64,
}

impl Default for InferConfig {
    fn default() -> Self {
        InferConfig {
            min_support: 3,
            min_confidence: 0.6,
            min_lift: 1.5,
        }
    }
}

/// Mine implications from the concept → primitive bipartite structure.
///
/// Rules between primitives of the *same* class are skipped (they are
/// synonym/sibling noise, not implications).
pub fn mine_implications(kg: &AliCoCo, cfg: &InferConfig) -> Vec<Implication> {
    let n_concepts = kg.num_concepts();
    if n_concepts == 0 {
        return Vec::new();
    }
    let mut single: FxHashMap<PrimitiveId, usize> = FxHashMap::default();
    let mut pair: FxHashMap<(PrimitiveId, PrimitiveId), usize> = FxHashMap::default();
    for c in kg.concept_ids() {
        let prims = &kg.concept(c).primitives;
        for &p in prims {
            *single.entry(p).or_insert(0) += 1;
        }
        for (i, &a) in prims.iter().enumerate() {
            for &b in prims.iter().skip(i + 1) {
                *pair.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
    }
    let mut out = Vec::new();
    for (&(a, b), &both) in &pair {
        if both < cfg.min_support {
            continue;
        }
        for (ante, cons) in [(a, b), (b, a)] {
            if kg.primitive(ante).class == kg.primitive(cons).class {
                continue;
            }
            // Both counts are populated from the same concept scan as
            // `pair`, but look them up fallibly all the same.
            let (Some(&ante_count), Some(&cons_count)) = (single.get(&ante), single.get(&cons))
            else {
                continue;
            };
            let confidence = both as f64 / ante_count as f64;
            let base = cons_count as f64 / n_concepts as f64;
            let lift = if base == 0.0 { 0.0 } else { confidence / base };
            if confidence >= cfg.min_confidence && lift >= cfg.min_lift {
                out.push(Implication {
                    antecedent: ante,
                    consequent: cons,
                    support: both,
                    confidence,
                    lift,
                });
            }
        }
    }
    out.sort_by(|x, y| {
        crate::rank::score_desc(&x.confidence, &y.confidence)
            .then(y.support.cmp(&x.support))
            .then(x.antecedent.cmp(&y.antecedent))
            .then(x.consequent.cmp(&y.consequent))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a KG where concepts mentioning "swimsuit" almost always also
    /// link to "summer", but "grill" links to varied times.
    fn kg_with_pattern() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let cat = kg.add_class("Category", Some(root));
        let time = kg.add_class("Time", Some(root));
        let swimsuit = kg.add_primitive("swimsuit", cat);
        let grill = kg.add_primitive("grill", cat);
        let summer = kg.add_primitive("summer", time);
        let winter = kg.add_primitive("winter", time);
        for i in 0..8 {
            let c = kg.add_concept(&format!("swim concept {i}"));
            kg.link_concept_primitive(c, swimsuit);
            kg.link_concept_primitive(c, summer);
        }
        for i in 0..8 {
            let c = kg.add_concept(&format!("grill concept {i}"));
            kg.link_concept_primitive(c, grill);
            kg.link_concept_primitive(c, if i % 2 == 0 { summer } else { winter });
        }
        // Unrelated concepts dilute the base rate of "summer" so lift is
        // informative.
        let scarf = kg.add_primitive("scarf", cat);
        for i in 0..16 {
            let c = kg.add_concept(&format!("scarf concept {i}"));
            kg.link_concept_primitive(c, scarf);
            if i % 4 == 0 {
                kg.link_concept_primitive(c, winter);
            }
        }
        kg
    }

    #[test]
    fn mines_swimsuit_implies_summer() {
        let kg = kg_with_pattern();
        let rules = mine_implications(&kg, &InferConfig::default());
        let swimsuit = kg.primitives_by_name("swimsuit")[0];
        let summer = kg.primitives_by_name("summer")[0];
        let hit = rules
            .iter()
            .find(|r| r.antecedent == swimsuit && r.consequent == summer)
            .expect("swimsuit => summer not mined");
        assert_eq!(hit.support, 8);
        assert!((hit.confidence - 1.0).abs() < 1e-9);
        assert!(hit.lift > 1.2);
    }

    #[test]
    fn weak_correlations_are_not_mined() {
        let kg = kg_with_pattern();
        let rules = mine_implications(&kg, &InferConfig::default());
        let grill = kg.primitives_by_name("grill")[0];
        // grill co-occurs with summer only half the time.
        assert!(
            !rules.iter().any(|r| r.antecedent == grill),
            "grill should not imply any time"
        );
    }

    #[test]
    fn same_class_rules_skipped() {
        let kg = kg_with_pattern();
        let rules = mine_implications(&kg, &InferConfig::default());
        for r in &rules {
            assert_ne!(
                kg.primitive(r.antecedent).class,
                kg.primitive(r.consequent).class
            );
        }
    }

    #[test]
    fn empty_graph_yields_nothing() {
        assert!(mine_implications(&AliCoCo::new(), &InferConfig::default()).is_empty());
    }

    #[test]
    fn support_threshold_filters() {
        let kg = kg_with_pattern();
        let rules = mine_implications(
            &kg,
            &InferConfig {
                min_support: 100,
                ..Default::default()
            },
        );
        assert!(rules.is_empty());
    }
}
