//! Read-side query helpers over a built concept net: inverted lookups,
//! degree statistics, path explanations, and subgraph extraction — the
//! serving-layer API downstream applications compose.

use alicoco_nn::util::{FxHashMap, FxHashSet};

use crate::graph::AliCoCo;
use crate::ids::{ClassId, ConceptId, ItemId, PrimitiveId};

/// Inverted indices built once over a net for fast serving-side queries.
///
/// Besides the id-level lookups (`concepts_by_primitive`, …), the index
/// carries *token-level* postings so keyword retrieval never scans a
/// layer: [`concepts_by_token`](Self::concepts_by_token) maps every
/// concept-surface token **and** every interpreting-primitive surface to
/// the concepts it evidences (which is exactly the set of concepts a
/// query word can give a non-zero retrieval score to, preserving
/// order-free matching), and [`items_by_token`](Self::items_by_token)
/// maps title tokens to items.
pub struct QueryIndex<'kg> {
    kg: &'kg AliCoCo,
    concepts_by_primitive: FxHashMap<PrimitiveId, Vec<ConceptId>>,
    items_by_primitive: FxHashMap<PrimitiveId, Vec<ItemId>>,
    primitives_by_domain: FxHashMap<ClassId, Vec<PrimitiveId>>,
    concepts_by_token: FxHashMap<String, Vec<ConceptId>>,
    items_by_token: FxHashMap<String, Vec<ItemId>>,
}

impl<'kg> QueryIndex<'kg> {
    /// Build all inverted indices (one pass over each layer).
    pub fn build(kg: &'kg AliCoCo) -> Self {
        let mut concepts_by_token: FxHashMap<String, Vec<ConceptId>> = FxHashMap::default();
        let mut token_set: FxHashSet<&str> = FxHashSet::default();
        for c in kg.concept_ids() {
            // One posting entry per distinct token: surface words plus the
            // full surface of every interpreting primitive (a primitive
            // match is what makes retrieval order-free, §8.1).
            token_set.clear();
            let node = kg.concept(c);
            token_set.extend(node.name.split(' '));
            token_set.extend(
                node.primitives
                    .iter()
                    .map(|&p| kg.primitive(p).name.as_str()),
            );
            for tok in token_set.drain() {
                concepts_by_token
                    .entry(tok.to_string())
                    .or_default()
                    .push(c);
            }
        }
        let mut items_by_token: FxHashMap<String, Vec<ItemId>> = FxHashMap::default();
        for i in kg.item_ids() {
            token_set.clear();
            token_set.extend(kg.item(i).title.iter().map(String::as_str));
            for tok in token_set.drain() {
                items_by_token.entry(tok.to_string()).or_default().push(i);
            }
        }
        Self::with_postings(kg, concepts_by_token, items_by_token)
    }

    /// Build the index from precomputed token postings — the fast-start
    /// path for binary snapshots, which persist exactly the postings
    /// [`build`](Self::build) would tokenize. The id-level inverted
    /// indices are cheap single scans over edge lists and are always
    /// rebuilt here; only the string-heavy tokenization is skipped.
    pub fn from_postings(
        kg: &'kg AliCoCo,
        concept_postings: impl IntoIterator<Item = (String, Vec<ConceptId>)>,
        item_postings: impl IntoIterator<Item = (String, Vec<ItemId>)>,
    ) -> Self {
        Self::with_postings(
            kg,
            concept_postings.into_iter().collect(),
            item_postings.into_iter().collect(),
        )
    }

    fn with_postings(
        kg: &'kg AliCoCo,
        concepts_by_token: FxHashMap<String, Vec<ConceptId>>,
        items_by_token: FxHashMap<String, Vec<ItemId>>,
    ) -> Self {
        let mut concepts_by_primitive: FxHashMap<PrimitiveId, Vec<ConceptId>> =
            FxHashMap::default();
        for c in kg.concept_ids() {
            for &p in &kg.concept(c).primitives {
                concepts_by_primitive.entry(p).or_default().push(c);
            }
        }
        let mut items_by_primitive: FxHashMap<PrimitiveId, Vec<ItemId>> = FxHashMap::default();
        for i in kg.item_ids() {
            for &p in &kg.item(i).primitives {
                items_by_primitive.entry(p).or_default().push(i);
            }
        }
        let mut primitives_by_domain: FxHashMap<ClassId, Vec<PrimitiveId>> = FxHashMap::default();
        for p in kg.primitive_ids() {
            let d = kg.class_domain(kg.primitive(p).class);
            primitives_by_domain.entry(d).or_default().push(p);
        }
        QueryIndex {
            kg,
            concepts_by_primitive,
            items_by_primitive,
            primitives_by_domain,
            concepts_by_token,
            items_by_token,
        }
    }

    /// Concept postings in lexicographic token order — the deterministic
    /// view the binary snapshot codec serializes (AL005: hash-map postings
    /// must be sorted before they touch a wire format).
    pub fn sorted_concept_postings(&self) -> Vec<(&str, &[ConceptId])> {
        let mut v: Vec<(&str, &[ConceptId])> = self
            .concepts_by_token
            .iter()
            .map(|(t, ids)| (t.as_str(), ids.as_slice()))
            .collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Item postings in lexicographic token order (see
    /// [`sorted_concept_postings`](Self::sorted_concept_postings)).
    pub fn sorted_item_postings(&self) -> Vec<(&str, &[ItemId])> {
        let mut v: Vec<(&str, &[ItemId])> = self
            .items_by_token
            .iter()
            .map(|(t, ids)| (t.as_str(), ids.as_slice()))
            .collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Concepts interpreted by a primitive ("which needs involve
    /// *barbecue*?").
    pub fn concepts_by_primitive(&self, p: PrimitiveId) -> &[ConceptId] {
        self.concepts_by_primitive
            .get(&p)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Items carrying a primitive property.
    pub fn items_by_primitive(&self, p: PrimitiveId) -> &[ItemId] {
        self.items_by_primitive
            .get(&p)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All primitives under a first-level domain class.
    pub fn primitives_in_domain(&self, domain: ClassId) -> &[PrimitiveId] {
        self.primitives_by_domain
            .get(&domain)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Concepts a query token can evidence: every concept whose surface
    /// contains the token as a word, or that is interpreted by a primitive
    /// whose full surface equals the token. Ascending id order, no dups.
    pub fn concepts_by_token(&self, token: &str) -> &[ConceptId] {
        self.concepts_by_token
            .get(token)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Items whose title contains the token. Ascending id order, no dups.
    pub fn items_by_token(&self, token: &str) -> &[ItemId] {
        self.items_by_token
            .get(token)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Distinct candidate concepts for a set of query words (the union of
    /// the words' postings). Exactly the concepts a token-overlap scorer
    /// can give a positive score — scoring only these is equivalent to a
    /// full concept-layer scan.
    pub fn concept_candidates<'w>(
        &self,
        words: impl IntoIterator<Item = &'w str>,
    ) -> Vec<ConceptId> {
        self.concept_candidates_counted(words).0
    }

    /// [`concept_candidates`](Self::concept_candidates) plus the number of
    /// posting entries touched to build the union — the retrieval-side
    /// work measure the serving metrics report (deduped candidates alone
    /// hide how much posting traffic a hot token causes).
    pub fn concept_candidates_counted<'w>(
        &self,
        words: impl IntoIterator<Item = &'w str>,
    ) -> (Vec<ConceptId>, usize) {
        let mut seen: FxHashSet<ConceptId> = FxHashSet::default();
        let mut out = Vec::new();
        let mut postings = 0usize;
        for w in words {
            let hits = self.concepts_by_token(w);
            postings += hits.len();
            for &c in hits {
                if seen.insert(c) {
                    out.push(c);
                }
            }
        }
        (out, postings)
    }

    /// The net this index serves.
    pub fn kg(&self) -> &'kg AliCoCo {
        self.kg
    }

    /// Explain why an item is suggested for a concept: the direct edge
    /// weight plus any primitives they share.
    pub fn explain_suggestion(&self, concept: ConceptId, item: ItemId) -> Explanation {
        let direct = self
            .kg
            .concept(concept)
            .items
            .iter()
            .find(|&&(i, _)| i == item)
            .map(|&(_, w)| w);
        let cp: FxHashSet<PrimitiveId> = self
            .kg
            .concept(concept)
            .primitives
            .iter()
            .copied()
            .collect();
        let shared: Vec<PrimitiveId> = self
            .kg
            .item(item)
            .primitives
            .iter()
            .copied()
            .filter(|p| cp.contains(p))
            .collect();
        Explanation {
            direct_weight: direct,
            shared_primitives: shared,
        }
    }
}

/// Why an item relates to a concept.
#[derive(Clone, Debug, PartialEq)]
pub struct Explanation {
    /// Weight of the direct suggestion edge, if present.
    pub direct_weight: Option<f32>,
    /// Primitive concepts on both the concept's interpretation and the
    /// item's properties.
    pub shared_primitives: Vec<PrimitiveId>,
}

/// Degree statistics of a layer's out-edges.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Min.
    pub min: usize,
    /// Max.
    pub max: usize,
    /// Mean.
    pub mean: f64,
    /// Nodes with zero out-edges.
    pub isolated: usize,
}

fn degree_stats(degrees: impl Iterator<Item = usize>) -> DegreeStats {
    let mut n = 0usize;
    let mut sum = 0usize;
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut isolated = 0usize;
    for d in degrees {
        n += 1;
        sum += d;
        min = min.min(d);
        max = max.max(d);
        if d == 0 {
            isolated += 1;
        }
    }
    if n == 0 {
        return DegreeStats::default();
    }
    DegreeStats {
        min,
        max,
        mean: sum as f64 / n as f64,
        isolated,
    }
}

/// Degree statistics of concept→item edges.
pub fn concept_item_degrees(kg: &AliCoCo) -> DegreeStats {
    degree_stats(kg.concept_ids().map(|c| kg.concept(c).items.len()))
}

/// Degree statistics of item→primitive edges.
pub fn item_primitive_degrees(kg: &AliCoCo) -> DegreeStats {
    degree_stats(kg.item_ids().map(|i| kg.item(i).primitives.len()))
}

/// Extract the neighbourhood subgraph of a concept (its primitives, items,
/// hypernyms, and the item titles) as a new standalone net — useful for
/// debugging one concept card or shipping a card's data to a client.
pub fn concept_subgraph(kg: &AliCoCo, concept: ConceptId) -> AliCoCo {
    let mut out = AliCoCo::new();
    let src = kg.concept(concept);
    // Classes along each primitive's ancestor chain.
    let mut class_map: FxHashMap<ClassId, ClassId> = FxHashMap::default();
    let mut add_class_chain = |kg: &AliCoCo, out: &mut AliCoCo, class: ClassId| -> ClassId {
        // Insert ancestors root-first, then `class` itself — mapping the
        // final link outside the loop keeps the return value total without
        // an "empty chain" panic path.
        let mut chain = kg.class_ancestors(class);
        chain.reverse();
        let mut parent: Option<ClassId> = None;
        for c in chain {
            let id = match class_map.get(&c) {
                Some(&id) => id,
                None => {
                    let id = out.add_class(&kg.class(c).name, parent);
                    class_map.insert(c, id);
                    id
                }
            };
            parent = Some(id);
        }
        match class_map.get(&class) {
            Some(&id) => id,
            None => {
                let id = out.add_class(&kg.class(class).name, parent);
                class_map.insert(class, id);
                id
            }
        }
    };
    let new_concept = out.add_concept(&src.name);
    for &p in &src.primitives {
        let prim = kg.primitive(p);
        let class = add_class_chain(kg, &mut out, prim.class);
        let np = out.add_primitive(&prim.name, class);
        out.link_concept_primitive(new_concept, np);
    }
    for &(item, w) in &src.items {
        let ni = out.add_item(&kg.item(item).title);
        out.link_concept_item(new_concept, ni, w);
    }
    for &h in &src.hypernyms {
        let nh = out.add_concept(&kg.concept(h).name);
        out.add_concept_is_a(new_concept, nh);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (AliCoCo, ConceptId, ItemId, PrimitiveId) {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let event = kg.add_class("Event", Some(root));
        let loc = kg.add_class("Location", Some(root));
        let bbq = kg.add_primitive("barbecue", event);
        let outdoor = kg.add_primitive("outdoor", loc);
        let c = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c, bbq);
        kg.link_concept_primitive(c, outdoor);
        let hyper = kg.add_concept("barbecue");
        kg.add_concept_is_a(c, hyper);
        let grill = kg.add_item(&["grill".into()]);
        kg.link_concept_item(c, grill, 0.9);
        kg.link_item_primitive(grill, bbq);
        (kg, c, grill, bbq)
    }

    #[test]
    fn inverted_indices_answer_reverse_lookups() {
        let (kg, c, grill, bbq) = sample();
        let q = QueryIndex::build(&kg);
        assert_eq!(q.concepts_by_primitive(bbq), &[c]);
        assert_eq!(q.items_by_primitive(bbq), &[grill]);
        let event = kg.class_by_name("Event").unwrap();
        assert_eq!(q.primitives_in_domain(event), &[bbq]);
        let missing = PrimitiveId::from_index(999);
        assert!(q.concepts_by_primitive(missing).is_empty());
    }

    #[test]
    fn token_postings_cover_surfaces_and_primitive_names() {
        let (kg, c, grill, _) = sample();
        let q = QueryIndex::build(&kg);
        let hyper = kg.concept_by_name("barbecue").unwrap();
        // "barbecue" evidences both the compound concept (surface token +
        // interpreting primitive) and its hypernym — each exactly once.
        assert_eq!(q.concepts_by_token("barbecue"), &[c, hyper]);
        assert_eq!(q.concepts_by_token("outdoor"), &[c]);
        assert!(q.concepts_by_token("nonexistent").is_empty());
        assert_eq!(q.items_by_token("grill"), &[grill]);
        assert!(q.items_by_token("barbecue").is_empty());
    }

    #[test]
    fn concept_candidates_union_is_deduped() {
        let (kg, c, _, _) = sample();
        let q = QueryIndex::build(&kg);
        let hyper = kg.concept_by_name("barbecue").unwrap();
        let mut cands = q.concept_candidates(["barbecue", "outdoor", "missing"]);
        cands.sort();
        assert_eq!(cands, vec![c, hyper]);
    }

    #[test]
    fn explanation_combines_direct_and_shared_evidence() {
        let (kg, c, grill, bbq) = sample();
        let q = QueryIndex::build(&kg);
        let e = q.explain_suggestion(c, grill);
        assert_eq!(e.direct_weight, Some(0.9));
        assert_eq!(e.shared_primitives, vec![bbq]);
    }

    #[test]
    fn degree_stats_account_isolated_nodes() {
        let (mut kg, _, _, _) = sample();
        kg.add_concept("lonely concept");
        let d = concept_item_degrees(&kg);
        assert_eq!(d.max, 1);
        assert_eq!(d.min, 0);
        assert_eq!(d.isolated, 2); // "barbecue" hypernym + "lonely concept"
        let i = item_primitive_degrees(&kg);
        assert_eq!(i.mean, 1.0);
    }

    #[test]
    fn degree_stats_empty_graph() {
        let kg = AliCoCo::new();
        assert_eq!(concept_item_degrees(&kg), DegreeStats::default());
    }

    #[test]
    fn from_postings_matches_a_fresh_build() {
        let (kg, _, _, bbq) = sample();
        let built = QueryIndex::build(&kg);
        let concept_postings: Vec<(String, Vec<ConceptId>)> = built
            .sorted_concept_postings()
            .into_iter()
            .map(|(t, ids)| (t.to_string(), ids.to_vec()))
            .collect();
        let item_postings: Vec<(String, Vec<ItemId>)> = built
            .sorted_item_postings()
            .into_iter()
            .map(|(t, ids)| (t.to_string(), ids.to_vec()))
            .collect();
        let restored = QueryIndex::from_postings(&kg, concept_postings, item_postings);
        assert_eq!(
            built.sorted_concept_postings(),
            restored.sorted_concept_postings()
        );
        assert_eq!(
            built.sorted_item_postings(),
            restored.sorted_item_postings()
        );
        // Id-level indices are rebuilt, not restored — check one.
        assert_eq!(
            built.concepts_by_primitive(bbq),
            restored.concepts_by_primitive(bbq)
        );
        assert_eq!(
            built.items_by_primitive(bbq),
            restored.items_by_primitive(bbq)
        );
    }

    #[test]
    fn sorted_postings_are_lexicographic_and_ascending() {
        let (kg, _, _, _) = sample();
        let q = QueryIndex::build(&kg);
        let postings = q.sorted_concept_postings();
        assert!(postings.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(postings
            .iter()
            .all(|(_, ids)| ids.windows(2).all(|w| w[0] < w[1])));
    }

    #[test]
    fn subgraph_contains_the_concept_neighbourhood() {
        let (kg, c, _, _) = sample();
        let sub = concept_subgraph(&kg, c);
        assert_eq!(sub.num_concepts(), 2); // concept + hypernym
        assert_eq!(sub.num_primitives(), 2);
        assert_eq!(sub.num_items(), 1);
        let nc = sub.concept_by_name("outdoor barbecue").unwrap();
        assert_eq!(sub.concept(nc).primitives.len(), 2);
        assert_eq!(sub.concept(nc).items.len(), 1);
        assert_eq!(sub.concept(nc).hypernyms.len(), 1);
        // Classes were carried over with their hierarchy.
        let event = sub.class_by_name("Event").unwrap();
        assert!(sub.class(event).parent.is_some());
        // And the subgraph snapshots cleanly.
        let mut buf = Vec::new();
        crate::snapshot::save(&sub, &mut buf).unwrap();
        assert!(crate::snapshot::load(&mut buf.as_slice()).is_ok());
    }
}
