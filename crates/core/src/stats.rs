//! Statistics of an assembled AliCoCo instance, mirroring Table 2 of the
//! paper (overall counts, per-domain primitive counts, relation counts and
//! per-node averages).

use std::fmt;

use alicoco_nn::util::FxHashMap;

use crate::graph::AliCoCo;

/// The Table 2 analogue for a built concept net.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    /// Number of classes.
    pub num_classes: usize,
    /// Number of primitives.
    pub num_primitives: usize,
    /// Number of concepts.
    pub num_concepts: usize,
    /// Number of items.
    pub num_items: usize,
    /// Primitive counts per first-level domain, sorted by domain name.
    pub per_domain: Vec<(String, usize)>,
    /// Is a primitive.
    pub is_a_primitive: usize,
    /// Is a concept.
    pub is_a_concept: usize,
    /// Item primitive links.
    pub item_primitive_links: usize,
    /// Item concept links.
    pub item_concept_links: usize,
    /// Concept primitive links.
    pub concept_primitive_links: usize,
    /// Schema relations.
    pub schema_relations: usize,
    /// Instance relations.
    pub instance_relations: usize,
    /// Fraction of items linked to at least one concept or primitive.
    pub item_linkage: f64,
    /// Avg primitives per item.
    pub avg_primitives_per_item: f64,
    /// Avg concepts per item.
    pub avg_concepts_per_item: f64,
    /// Avg items per concept.
    pub avg_items_per_concept: f64,
}

impl Stats {
    /// Compute statistics over a graph.
    pub fn compute(kg: &AliCoCo) -> Stats {
        let mut per_domain: FxHashMap<String, usize> = FxHashMap::default();
        for p in kg.primitive_ids() {
            let class = kg.primitive(p).class;
            let domain = kg.class_domain(class);
            *per_domain.entry(kg.class(domain).name.clone()).or_insert(0) += 1;
        }
        let mut per_domain: Vec<(String, usize)> = per_domain.into_iter().collect();
        per_domain.sort();

        let num_items = kg.num_items();
        let linked = kg
            .item_ids()
            .filter(|&i| {
                let it = kg.item(i);
                !it.primitives.is_empty() || !it.concepts.is_empty()
            })
            .count();
        let item_primitive_links = kg.num_item_primitive_links();
        let item_concept_links = kg.num_concept_item_links();
        Stats {
            num_classes: kg.num_classes(),
            num_primitives: kg.num_primitives(),
            num_concepts: kg.num_concepts(),
            num_items,
            per_domain,
            is_a_primitive: kg.num_primitive_is_a(),
            is_a_concept: kg.num_concept_is_a(),
            item_primitive_links,
            item_concept_links,
            concept_primitive_links: kg.num_concept_primitive_links(),
            schema_relations: kg.schema().len(),
            instance_relations: kg.primitive_relations().len(),
            item_linkage: if num_items == 0 {
                0.0
            } else {
                linked as f64 / num_items as f64
            },
            avg_primitives_per_item: if num_items == 0 {
                0.0
            } else {
                item_primitive_links as f64 / num_items as f64
            },
            avg_concepts_per_item: if num_items == 0 {
                0.0
            } else {
                item_concept_links as f64 / num_items as f64
            },
            avg_items_per_concept: if kg.num_concepts() == 0 {
                0.0
            } else {
                item_concept_links as f64 / kg.num_concepts() as f64
            },
        }
    }

    /// Total relation count across all edge kinds.
    pub fn total_relations(&self) -> usize {
        self.is_a_primitive
            + self.is_a_concept
            + self.item_primitive_links
            + self.item_concept_links
            + self.concept_primitive_links
            + self.instance_relations
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Overall")?;
        writeln!(
            f,
            "  # Taxonomy classes            {:>12}",
            self.num_classes
        )?;
        writeln!(
            f,
            "  # Primitive concepts          {:>12}",
            self.num_primitives
        )?;
        writeln!(
            f,
            "  # E-commerce concepts         {:>12}",
            self.num_concepts
        )?;
        writeln!(f, "  # Items                       {:>12}", self.num_items)?;
        writeln!(
            f,
            "  # Relations                   {:>12}",
            self.total_relations()
        )?;
        writeln!(f, "Primitive concepts per domain")?;
        for (name, count) in &self.per_domain {
            writeln!(f, "  # {:<28}{:>12}", name, count)?;
        }
        writeln!(f, "Relations")?;
        writeln!(
            f,
            "  # IsA in primitive concepts   {:>12}",
            self.is_a_primitive
        )?;
        writeln!(
            f,
            "  # IsA in e-commerce concepts  {:>12}",
            self.is_a_concept
        )?;
        writeln!(
            f,
            "  # Item - Primitive concepts   {:>12}",
            self.item_primitive_links
        )?;
        writeln!(
            f,
            "  # Item - E-commerce concepts  {:>12}",
            self.item_concept_links
        )?;
        writeln!(
            f,
            "  # E-commerce - Primitive cpts {:>12}",
            self.concept_primitive_links
        )?;
        writeln!(
            f,
            "  # Schema relations            {:>12}",
            self.schema_relations
        )?;
        writeln!(
            f,
            "  # Instance relations          {:>12}",
            self.instance_relations
        )?;
        writeln!(f, "Averages")?;
        writeln!(
            f,
            "  items linked to the net       {:>11.1}%",
            self.item_linkage * 100.0
        )?;
        writeln!(
            f,
            "  primitives per item           {:>12.2}",
            self.avg_primitives_per_item
        )?;
        writeln!(
            f,
            "  concepts per item             {:>12.2}",
            self.avg_concepts_per_item
        )?;
        writeln!(
            f,
            "  items per concept             {:>12.2}",
            self.avg_items_per_concept
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_graph() {
        let s = Stats::compute(&AliCoCo::new());
        assert_eq!(s.num_classes, 0);
        assert_eq!(s.total_relations(), 0);
        assert_eq!(s.item_linkage, 0.0);
    }

    #[test]
    fn stats_count_everything() {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let cat = kg.add_class("Category", Some(root));
        let event = kg.add_class("Event", Some(root));
        let p1 = kg.add_primitive("grill", cat);
        let p2 = kg.add_primitive("cookware", cat);
        let p3 = kg.add_primitive("barbecue", event);
        kg.add_primitive_is_a(p1, p2);
        let c = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c, p3);
        let i = kg.add_item(&["grill".to_string()]);
        kg.link_item_primitive(i, p1);
        kg.link_concept_item(c, i, 1.0);
        let s = Stats::compute(&kg);
        assert_eq!(s.num_primitives, 3);
        assert_eq!(
            s.per_domain,
            vec![("Category".to_string(), 2), ("Event".to_string(), 1)]
        );
        assert_eq!(s.is_a_primitive, 1);
        assert_eq!(s.item_primitive_links, 1);
        assert_eq!(s.item_concept_links, 1);
        assert_eq!(s.concept_primitive_links, 1);
        assert_eq!(s.total_relations(), 4);
        assert_eq!(s.item_linkage, 1.0);
        assert_eq!(s.avg_items_per_concept, 1.0);
    }

    #[test]
    fn display_renders_table() {
        let s = Stats::compute(&AliCoCo::new());
        let text = s.to_string();
        assert!(text.contains("Primitive concepts"));
        assert!(text.contains("IsA in e-commerce concepts"));
    }
}
