//! Typed node identifiers for the four layers of AliCoCo.
//!
//! Using newtypes (rather than bare `usize`) makes cross-layer confusion a
//! compile error: an `ItemId` can never index the primitive-concept arena.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Raw index (for stable serialization).
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Rebuild from a raw index (used by snapshot loading).
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow"))
            }
        }
    };
}

id_type!(
    /// A class in the taxonomy layer (§3).
    ClassId
);
id_type!(
    /// A primitive concept (§4).
    PrimitiveId
);
id_type!(
    /// An e-commerce concept (§5).
    ConceptId
);
id_type!(
    /// An item (§6).
    ItemId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = ClassId::from_index(42);
        assert_eq!(c.index(), 42);
        assert_eq!(c, ClassId::from_index(42));
        assert_ne!(c, ClassId::from_index(43));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ItemId::from_index(1) < ItemId::from_index(2));
    }
}
