//! The AliCoCo concept net: four node layers and their relations (§2).
//!
//! - **Taxonomy**: a class hierarchy whose first level is the 20 domains,
//!   plus a relation schema between classes ("suitable_when" between
//!   `Category->Pants` and `Time->Season`).
//! - **Primitive concepts**: typed short phrases. Several primitives may
//!   share a surface form with different classes — this is how AliCoCo
//!   disambiguates raw text.
//! - **E-commerce concepts**: user-needs phrases, linked to the primitive
//!   concepts that interpret them and to suggested items.
//! - **Items**: linked to primitive concepts (properties) and e-commerce
//!   concepts (scenario needs), the latter with a probability weight
//!   (future-work item 2 of §10).

use alicoco_nn::util::FxHashMap;

use crate::ids::{ClassId, ConceptId, ItemId, PrimitiveId};

/// A taxonomy class.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassNode {
    /// Class name (unique in the taxonomy).
    pub name: String,
    /// Parent.
    pub parent: Option<ClassId>,
    /// Children.
    pub children: Vec<ClassId>,
}

/// A primitive concept: a typed vocabulary entry.
#[derive(Clone, Debug, PartialEq)]
pub struct PrimitiveNode {
    /// Surface form of the primitive.
    pub name: String,
    /// Class.
    pub class: ClassId,
    /// Direct hypernyms *within* the primitive layer (isA, §4.2).
    pub hypernyms: Vec<PrimitiveId>,
    /// Hyponyms.
    pub hyponyms: Vec<PrimitiveId>,
}

/// An e-commerce concept: a conceptualized user need.
#[derive(Clone, Debug, PartialEq)]
pub struct ConceptNode {
    /// Surface form, tokens joined by spaces.
    pub name: String,
    /// Interpreting primitive concepts (§5.3).
    pub primitives: Vec<PrimitiveId>,
    /// isA edges between e-commerce concepts.
    pub hypernyms: Vec<ConceptId>,
    /// Associated items with probability weights (§6; weights are
    /// future-work item 2 of §10).
    pub items: Vec<(ItemId, f32)>,
}

/// An item node.
#[derive(Clone, Debug, PartialEq)]
pub struct ItemNode {
    /// Title tokens.
    pub title: Vec<String>,
    /// Property links into the primitive layer.
    pub primitives: Vec<PrimitiveId>,
    /// Reverse links to concepts that suggest this item.
    pub concepts: Vec<ConceptId>,
}

/// A schema relation between two classes ("suitable_when" etc., §2).
#[derive(Clone, Debug, PartialEq)]
pub struct SchemaRelation {
    /// Relation name (e.g. "suitable_when").
    pub name: String,
    /// Source class.
    pub from: ClassId,
    /// Target class.
    pub to: ClassId,
}

/// An instance-level relation between two primitive concepts, conforming to
/// a schema relation ("cotton-padded trousers" suitable_when "winter").
#[derive(Clone, Debug, PartialEq)]
pub struct PrimitiveRelation {
    /// Relation name, conforming to a schema relation.
    pub name: String,
    /// Source primitive.
    pub from: PrimitiveId,
    /// Target primitive.
    pub to: PrimitiveId,
}

/// The assembled concept net.
///
/// Equality compares the full structure — node arenas, edge lists (in
/// order), relations, and the derived name indices — which is what the
/// snapshot round-trip tests mean by "the same net".
#[derive(Debug, Default, PartialEq)]
pub struct AliCoCo {
    classes: Vec<ClassNode>,
    primitives: Vec<PrimitiveNode>,
    concepts: Vec<ConceptNode>,
    items: Vec<ItemNode>,
    class_by_name: FxHashMap<String, ClassId>,
    /// Surface form -> all primitive senses (disambiguation).
    primitives_by_name: FxHashMap<String, Vec<PrimitiveId>>,
    concept_by_name: FxHashMap<String, ConceptId>,
    schema: Vec<SchemaRelation>,
    primitive_relations: Vec<PrimitiveRelation>,
}

impl AliCoCo {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assemble a net directly from decoded node arenas — the bulk path the
    /// binary snapshot codec uses instead of replaying `add_*` calls one
    /// record at a time. Incoming nodes carry only their *forward* state
    /// (parents, hypernyms, out-edges); all derived state — class children,
    /// primitive hyponyms, item→concept reverse links, and the three name
    /// indices — is rebuilt here in the same order the incremental builders
    /// produce it, so a net built this way compares equal to one built
    /// record by record. Callers must have range-checked every id.
    pub(crate) fn from_parts(
        mut classes: Vec<ClassNode>,
        mut primitives: Vec<PrimitiveNode>,
        concepts: Vec<ConceptNode>,
        mut items: Vec<ItemNode>,
        schema: Vec<SchemaRelation>,
        primitive_relations: Vec<PrimitiveRelation>,
    ) -> Self {
        let parents: Vec<Option<ClassId>> = classes.iter().map(|c| c.parent).collect();
        for (i, parent) in parents.iter().enumerate() {
            if let Some(p) = *parent {
                classes[p.index()].children.push(ClassId::from_index(i));
            }
        }
        let mut class_by_name =
            FxHashMap::with_capacity_and_hasher(classes.len(), Default::default());
        for (i, c) in classes.iter().enumerate() {
            class_by_name.insert(c.name.clone(), ClassId::from_index(i));
        }
        let mut primitives_by_name: FxHashMap<String, Vec<PrimitiveId>> =
            FxHashMap::with_capacity_and_hasher(primitives.len(), Default::default());
        for (i, p) in primitives.iter().enumerate() {
            primitives_by_name
                .entry(p.name.clone())
                .or_default()
                .push(PrimitiveId::from_index(i));
        }
        let hyper_edges: Vec<(PrimitiveId, PrimitiveId)> = primitives
            .iter()
            .enumerate()
            .flat_map(|(i, p)| {
                p.hypernyms
                    .iter()
                    .map(move |&h| (h, PrimitiveId::from_index(i)))
            })
            .collect();
        for (hyper, hypo) in hyper_edges {
            primitives[hyper.index()].hyponyms.push(hypo);
        }
        let mut concept_by_name =
            FxHashMap::with_capacity_and_hasher(concepts.len(), Default::default());
        for (i, c) in concepts.iter().enumerate() {
            concept_by_name.insert(c.name.clone(), ConceptId::from_index(i));
        }
        let item_edges: Vec<(ItemId, ConceptId)> = concepts
            .iter()
            .enumerate()
            .flat_map(|(i, c)| {
                c.items
                    .iter()
                    .map(move |&(item, _)| (item, ConceptId::from_index(i)))
            })
            .collect();
        for (item, concept) in item_edges {
            items[item.index()].concepts.push(concept);
        }
        Self {
            classes,
            primitives,
            concepts,
            items,
            class_by_name,
            primitives_by_name,
            concept_by_name,
            schema,
            primitive_relations,
        }
    }

    // ---- taxonomy --------------------------------------------------------

    /// Add a class. Names must be unique within the taxonomy.
    ///
    /// # Panics
    /// Panics if the name already exists or the parent id is invalid.
    pub fn add_class(&mut self, name: &str, parent: Option<ClassId>) -> ClassId {
        assert!(
            !self.class_by_name.contains_key(name),
            "duplicate class name {name:?}"
        );
        if let Some(p) = parent {
            assert!(p.index() < self.classes.len(), "invalid parent class");
        }
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(ClassNode {
            name: name.to_string(),
            parent,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.classes[p.index()].children.push(id);
        }
        self.class_by_name.insert(name.to_string(), id);
        id
    }

    /// Class.
    pub fn class(&self, id: ClassId) -> &ClassNode {
        &self.classes[id.index()]
    }

    /// Class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Ancestor chain of a class (parent first).
    pub fn class_ancestors(&self, id: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut cur = self.classes[id.index()].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.classes[p.index()].parent;
        }
        out
    }

    /// The first-level domain of a class (its ancestor directly under the
    /// root), or itself if it is first-level.
    pub fn class_domain(&self, id: ClassId) -> ClassId {
        let mut cur = id;
        while let Some(p) = self.classes[cur.index()].parent {
            if self.classes[p.index()].parent.is_none() {
                return cur;
            }
            cur = p;
        }
        cur
    }

    /// Declare a schema relation between two classes.
    pub fn add_schema_relation(&mut self, name: &str, from: ClassId, to: ClassId) {
        self.schema.push(SchemaRelation {
            name: name.to_string(),
            from,
            to,
        });
    }

    /// Schema.
    pub fn schema(&self) -> &[SchemaRelation] {
        &self.schema
    }

    // ---- primitive concepts ----------------------------------------------

    /// Add a primitive concept. The same surface may be added under several
    /// classes (distinct senses get distinct ids); re-adding an existing
    /// `(name, class)` pair returns the existing id.
    pub fn add_primitive(&mut self, name: &str, class: ClassId) -> PrimitiveId {
        assert!(class.index() < self.classes.len(), "invalid class id");
        if let Some(ids) = self.primitives_by_name.get(name) {
            if let Some(&existing) = ids
                .iter()
                .find(|&&p| self.primitives[p.index()].class == class)
            {
                return existing;
            }
        }
        let id = PrimitiveId::from_index(self.primitives.len());
        self.primitives.push(PrimitiveNode {
            name: name.to_string(),
            class,
            hypernyms: Vec::new(),
            hyponyms: Vec::new(),
        });
        self.primitives_by_name
            .entry(name.to_string())
            .or_default()
            .push(id);
        id
    }

    /// Primitive.
    pub fn primitive(&self, id: PrimitiveId) -> &PrimitiveNode {
        &self.primitives[id.index()]
    }

    /// All senses of a surface form (the disambiguation entry point).
    pub fn primitives_by_name(&self, name: &str) -> &[PrimitiveId] {
        self.primitives_by_name
            .get(name)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The sense of `name` belonging to a given first-level domain, if any.
    pub fn primitive_in_domain(&self, name: &str, domain: ClassId) -> Option<PrimitiveId> {
        self.primitives_by_name(name)
            .iter()
            .copied()
            .find(|&p| self.class_domain(self.primitives[p.index()].class) == domain)
    }

    /// Number of primitives.
    pub fn num_primitives(&self) -> usize {
        self.primitives.len()
    }

    /// Record `hyponym isA hypernym` between primitives.
    ///
    /// # Panics
    /// Panics on self-loops.
    pub fn add_primitive_is_a(&mut self, hyponym: PrimitiveId, hypernym: PrimitiveId) {
        assert_ne!(hyponym, hypernym, "isA self-loop");
        if !self.primitives[hyponym.index()]
            .hypernyms
            .contains(&hypernym)
        {
            self.primitives[hyponym.index()].hypernyms.push(hypernym);
            self.primitives[hypernym.index()].hyponyms.push(hyponym);
        }
    }

    /// Record `hyponym isA hypernym` between primitives unless the edge
    /// would close a cycle (or is a self-loop); returns whether the edge
    /// is in the graph afterwards. Mining pipelines use this admission
    /// check so noisy pattern/model extractions cannot corrupt the DAG.
    pub fn try_add_primitive_is_a(&mut self, hyponym: PrimitiveId, hypernym: PrimitiveId) -> bool {
        if hyponym == hypernym || self.primitive_ancestors(hypernym).contains(&hyponym) {
            return false;
        }
        self.add_primitive_is_a(hyponym, hypernym);
        true
    }

    /// Transitive hypernym closure of a primitive (BFS order, no dups).
    pub fn primitive_ancestors(&self, id: PrimitiveId) -> Vec<PrimitiveId> {
        let mut seen = alicoco_nn::util::FxHashSet::default();
        let mut queue: Vec<PrimitiveId> = self.primitives[id.index()].hypernyms.clone();
        let mut out = Vec::new();
        while let Some(p) = queue.pop() {
            if seen.insert(p) {
                out.push(p);
                queue.extend(self.primitives[p.index()].hypernyms.iter().copied());
            }
        }
        out
    }

    /// Count of isA edges in the primitive layer.
    pub fn num_primitive_is_a(&self) -> usize {
        self.primitives.iter().map(|p| p.hypernyms.len()).sum()
    }

    /// Record an instance-level relation ("suitable_when").
    pub fn add_primitive_relation(&mut self, name: &str, from: PrimitiveId, to: PrimitiveId) {
        self.primitive_relations.push(PrimitiveRelation {
            name: name.to_string(),
            from,
            to,
        });
    }

    /// Primitive relations.
    pub fn primitive_relations(&self) -> &[PrimitiveRelation] {
        &self.primitive_relations
    }

    // ---- e-commerce concepts ----------------------------------------------

    /// Add an e-commerce concept (idempotent by surface form).
    pub fn add_concept(&mut self, name: &str) -> ConceptId {
        if let Some(&id) = self.concept_by_name.get(name) {
            return id;
        }
        let id = ConceptId::from_index(self.concepts.len());
        self.concepts.push(ConceptNode {
            name: name.to_string(),
            primitives: Vec::new(),
            hypernyms: Vec::new(),
            items: Vec::new(),
        });
        self.concept_by_name.insert(name.to_string(), id);
        id
    }

    /// Concept.
    pub fn concept(&self, id: ConceptId) -> &ConceptNode {
        &self.concepts[id.index()]
    }

    /// Concept by name.
    pub fn concept_by_name(&self, name: &str) -> Option<ConceptId> {
        self.concept_by_name.get(name).copied()
    }

    /// Number of concepts.
    pub fn num_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// Link a concept to an interpreting primitive (§5.3).
    pub fn link_concept_primitive(&mut self, concept: ConceptId, primitive: PrimitiveId) {
        let c = &mut self.concepts[concept.index()];
        if !c.primitives.contains(&primitive) {
            c.primitives.push(primitive);
        }
    }

    /// Record `hyponym isA hypernym` between e-commerce concepts.
    pub fn add_concept_is_a(&mut self, hyponym: ConceptId, hypernym: ConceptId) {
        assert_ne!(hyponym, hypernym, "isA self-loop");
        if !self.concepts[hyponym.index()].hypernyms.contains(&hypernym) {
            self.concepts[hyponym.index()].hypernyms.push(hypernym);
        }
    }

    /// Record `hyponym isA hypernym` between concepts unless the edge
    /// would close a cycle (or is a self-loop); returns whether the edge
    /// is in the graph afterwards. Construction pipelines use this
    /// admission check to keep the mined hierarchy a DAG.
    pub fn try_add_concept_is_a(&mut self, hyponym: ConceptId, hypernym: ConceptId) -> bool {
        if hyponym == hypernym || self.concept_ancestors(hypernym).contains(&hyponym) {
            return false;
        }
        self.add_concept_is_a(hyponym, hypernym);
        true
    }

    /// Transitive hypernym closure of a concept (BFS order, no dups).
    pub fn concept_ancestors(&self, id: ConceptId) -> Vec<ConceptId> {
        let mut seen = alicoco_nn::util::FxHashSet::default();
        let mut queue: Vec<ConceptId> = self.concepts[id.index()].hypernyms.clone();
        let mut out = Vec::new();
        while let Some(c) = queue.pop() {
            if seen.insert(c) {
                out.push(c);
                queue.extend(self.concepts[c.index()].hypernyms.iter().copied());
            }
        }
        out
    }

    /// Number of concept is a.
    pub fn num_concept_is_a(&self) -> usize {
        self.concepts.iter().map(|c| c.hypernyms.len()).sum()
    }

    // ---- items -------------------------------------------------------------

    /// Add item.
    pub fn add_item(&mut self, title: &[String]) -> ItemId {
        let id = ItemId::from_index(self.items.len());
        self.items.push(ItemNode {
            title: title.to_vec(),
            primitives: Vec::new(),
            concepts: Vec::new(),
        });
        id
    }

    /// Item.
    pub fn item(&self, id: ItemId) -> &ItemNode {
        &self.items[id.index()]
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Link an item to a primitive-concept property.
    pub fn link_item_primitive(&mut self, item: ItemId, primitive: PrimitiveId) {
        let it = &mut self.items[item.index()];
        if !it.primitives.contains(&primitive) {
            it.primitives.push(primitive);
        }
    }

    /// Associate an item with an e-commerce concept, with a confidence
    /// weight in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if the weight is not a probability.
    pub fn link_concept_item(&mut self, concept: ConceptId, item: ItemId, weight: f32) {
        assert!(
            (0.0..=1.0).contains(&weight),
            "weight must be a probability"
        );
        let c = &mut self.concepts[concept.index()];
        if let Some(e) = c.items.iter_mut().find(|(i, _)| *i == item) {
            e.1 = weight;
        } else {
            c.items.push((item, weight));
            self.items[item.index()].concepts.push(concept);
        }
    }

    /// Items suggested for a concept, highest weight first.
    pub fn items_for_concept(&self, concept: ConceptId) -> Vec<(ItemId, f32)> {
        let mut v = self.concepts[concept.index()].items.clone();
        v.sort_by(crate::rank::by_score_then_id);
        v
    }

    /// Concepts that suggest an item.
    pub fn concepts_for_item(&self, item: ItemId) -> &[ConceptId] {
        &self.items[item.index()].concepts
    }

    /// Total concept–item edges.
    pub fn num_concept_item_links(&self) -> usize {
        self.concepts.iter().map(|c| c.items.len()).sum()
    }

    /// Total item–primitive edges.
    pub fn num_item_primitive_links(&self) -> usize {
        self.items.iter().map(|i| i.primitives.len()).sum()
    }

    /// Total concept–primitive edges.
    pub fn num_concept_primitive_links(&self) -> usize {
        self.concepts.iter().map(|c| c.primitives.len()).sum()
    }

    // ---- iteration ---------------------------------------------------------

    /// Class identifiers.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len()).map(ClassId::from_index)
    }

    /// Primitive identifiers.
    pub fn primitive_ids(&self) -> impl Iterator<Item = PrimitiveId> {
        (0..self.primitives.len()).map(PrimitiveId::from_index)
    }

    /// Concept identifiers.
    pub fn concept_ids(&self) -> impl Iterator<Item = ConceptId> {
        (0..self.concepts.len()).map(ConceptId::from_index)
    }

    /// Item identifiers.
    pub fn item_ids(&self) -> impl Iterator<Item = ItemId> {
        (0..self.items.len()).map(ItemId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kg() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let category = kg.add_class("Category", Some(root));
        let time = kg.add_class("Time", Some(root));
        let clothing = kg.add_class("Clothing", Some(category));
        let pants = kg.add_class("Pants", Some(clothing));
        let season = kg.add_class("Season", Some(time));
        kg.add_schema_relation("suitable_when", pants, season);
        kg
    }

    #[test]
    fn class_hierarchy_and_domains() {
        let kg = tiny_kg();
        let pants = kg.class_by_name("Pants").unwrap();
        let category = kg.class_by_name("Category").unwrap();
        let anc = kg.class_ancestors(pants);
        assert!(anc.contains(&category));
        assert_eq!(kg.class_domain(pants), category);
        assert_eq!(kg.class_domain(category), category);
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn duplicate_class_rejected() {
        let mut kg = tiny_kg();
        kg.add_class("Pants", None);
    }

    #[test]
    fn primitive_disambiguation() {
        // "barbecue" as Event and as IP get different ids, same surface.
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let event = kg.add_class("Event", Some(root));
        let ip = kg.add_class("IP", Some(root));
        let p1 = kg.add_primitive("barbecue", event);
        let p2 = kg.add_primitive("barbecue", ip);
        assert_ne!(p1, p2);
        assert_eq!(kg.primitives_by_name("barbecue").len(), 2);
        // Idempotent per (name, class).
        assert_eq!(kg.add_primitive("barbecue", event), p1);
        assert_eq!(kg.primitive_in_domain("barbecue", event), Some(p1));
        assert_eq!(kg.primitive_in_domain("barbecue", ip), Some(p2));
    }

    #[test]
    fn primitive_is_a_closure() {
        let mut kg = tiny_kg();
        let cat = kg.class_by_name("Category").unwrap();
        let a = kg.add_primitive("cargo-pants", cat);
        let b = kg.add_primitive("pants", cat);
        let c = kg.add_primitive("bottoms", cat);
        kg.add_primitive_is_a(a, b);
        kg.add_primitive_is_a(b, c);
        let anc = kg.primitive_ancestors(a);
        assert!(anc.contains(&b) && anc.contains(&c));
        assert_eq!(kg.num_primitive_is_a(), 2);
        // Duplicate edges are ignored.
        kg.add_primitive_is_a(a, b);
        assert_eq!(kg.num_primitive_is_a(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn is_a_self_loop_rejected() {
        let mut kg = tiny_kg();
        let cat = kg.class_by_name("Category").unwrap();
        let a = kg.add_primitive("pants", cat);
        kg.add_primitive_is_a(a, a);
    }

    #[test]
    fn concept_item_links_roundtrip() {
        let mut kg = tiny_kg();
        let c = kg.add_concept("outdoor barbecue");
        let i1 = kg.add_item(&["grill".to_string()]);
        let i2 = kg.add_item(&["charcoal".to_string()]);
        kg.link_concept_item(c, i1, 0.9);
        kg.link_concept_item(c, i2, 0.7);
        let items = kg.items_for_concept(c);
        assert_eq!(items[0], (i1, 0.9));
        assert_eq!(items[1], (i2, 0.7));
        assert_eq!(kg.concepts_for_item(i1), &[c]);
        // Re-linking updates the weight without duplicating the edge.
        kg.link_concept_item(c, i1, 0.5);
        assert_eq!(kg.num_concept_item_links(), 2);
        assert_eq!(kg.items_for_concept(c)[0], (i2, 0.7));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn weight_must_be_probability() {
        let mut kg = tiny_kg();
        let c = kg.add_concept("x");
        let i = kg.add_item(&[]);
        kg.link_concept_item(c, i, 1.5);
    }

    #[test]
    fn concept_primitive_links() {
        let mut kg = tiny_kg();
        let cat = kg.class_by_name("Pants").unwrap();
        let p = kg.add_primitive("pants", cat);
        let c = kg.add_concept("warm pants for hiking");
        kg.link_concept_primitive(c, p);
        kg.link_concept_primitive(c, p);
        assert_eq!(kg.concept(c).primitives, vec![p]);
        assert_eq!(kg.num_concept_primitive_links(), 1);
    }

    #[test]
    fn concept_is_a() {
        let mut kg = tiny_kg();
        let a = kg.add_concept("british-style winter coat");
        let b = kg.add_concept("winter coat");
        kg.add_concept_is_a(a, b);
        assert_eq!(kg.concept(a).hypernyms, vec![b]);
        assert_eq!(kg.num_concept_is_a(), 1);
    }

    #[test]
    fn schema_relations_recorded() {
        let kg = tiny_kg();
        assert_eq!(kg.schema().len(), 1);
        assert_eq!(kg.schema()[0].name, "suitable_when");
    }

    #[test]
    fn add_concept_is_idempotent() {
        let mut kg = tiny_kg();
        let a = kg.add_concept("outdoor barbecue");
        let b = kg.add_concept("outdoor barbecue");
        assert_eq!(a, b);
        assert_eq!(kg.num_concepts(), 1);
    }
}
