//! Format-agnostic model ↔ record mapping.
//!
//! Every snapshot codec works in terms of the same flat [`Record`] stream:
//! [`stream`] walks a net in the canonical order (nodes by arena id, then
//! edges grouped by source, then relations — exactly the TSV line order),
//! and [`GraphBuilder`] reassembles a net from records while validating
//! every id reference, name, and weight, so malformed input of any format
//! becomes a typed [`LoadError`] instead of a panic inside the graph.

use crate::graph::AliCoCo;
use crate::ids::{ClassId, ConceptId, ItemId, PrimitiveId};
use crate::snapshot::LoadError;

/// One logical snapshot record. Numeric fields are raw `u32` arena indices
/// (the width ids are stored at), so records are meaningful before a graph
/// exists to type them against.
#[derive(Clone, Debug, PartialEq)]
pub enum Record<'a> {
    /// Taxonomy class (`C`): id, name, optional parent.
    Class {
        /// Arena index.
        id: u32,
        /// Class name.
        name: &'a str,
        /// Parent class index.
        parent: Option<u32>,
    },
    /// Primitive concept (`P`): id, surface, class.
    Primitive {
        /// Arena index.
        id: u32,
        /// Surface form.
        name: &'a str,
        /// Class index.
        class: u32,
    },
    /// E-commerce concept (`E`): id, surface.
    Concept {
        /// Arena index.
        id: u32,
        /// Surface form.
        name: &'a str,
    },
    /// Item (`I`): id plus title tokens joined by single spaces.
    Item {
        /// Arena index.
        id: u32,
        /// Space-joined title tokens.
        title: String,
    },
    /// Primitive isA edge (`pp`).
    PrimitiveIsA {
        /// Hyponym.
        hypo: u32,
        /// Hypernym.
        hyper: u32,
    },
    /// Concept isA edge (`ee`).
    ConceptIsA {
        /// Hyponym.
        hypo: u32,
        /// Hypernym.
        hyper: u32,
    },
    /// Concept → interpreting primitive edge (`ep`).
    ConceptPrimitive {
        /// Concept.
        concept: u32,
        /// Primitive.
        primitive: u32,
    },
    /// Concept → item suggestion edge (`ei`) with probability weight.
    ConceptItem {
        /// Concept.
        concept: u32,
        /// Item.
        item: u32,
        /// Suggestion probability in `[0, 1]`.
        weight: f32,
    },
    /// Item → primitive property edge (`ip`).
    ItemPrimitive {
        /// Item.
        item: u32,
        /// Primitive.
        primitive: u32,
    },
    /// Schema relation between classes (`S`).
    Schema {
        /// Relation name.
        name: &'a str,
        /// Source class.
        from: u32,
        /// Target class.
        to: u32,
    },
    /// Instance relation between primitives (`R`).
    Relation {
        /// Relation name.
        name: &'a str,
        /// Source primitive.
        from: u32,
        /// Target primitive.
        to: u32,
    },
}

/// The canonical record stream of a net: classes, primitives, concepts,
/// items, primitive isA edges, then per concept its isA / primitive / item
/// edges, item-primitive edges, schema relations, instance relations —
/// all in ascending arena order. Every codec serializes exactly this
/// stream, which is what makes cross-format re-saves byte-identical.
pub fn stream(kg: &AliCoCo) -> impl Iterator<Item = Record<'_>> + '_ {
    let classes = kg.class_ids().map(move |id| Record::Class {
        id: id.index() as u32,
        name: &kg.class(id).name,
        parent: kg.class(id).parent.map(|p| p.index() as u32),
    });
    let primitives = kg.primitive_ids().map(move |id| Record::Primitive {
        id: id.index() as u32,
        name: &kg.primitive(id).name,
        class: kg.primitive(id).class.index() as u32,
    });
    let concepts = kg.concept_ids().map(move |id| Record::Concept {
        id: id.index() as u32,
        name: &kg.concept(id).name,
    });
    let items = kg.item_ids().map(move |id| Record::Item {
        id: id.index() as u32,
        title: kg.item(id).title.join(" "),
    });
    let prim_is_a = kg.primitive_ids().flat_map(move |id| {
        kg.primitive(id)
            .hypernyms
            .iter()
            .map(move |h| Record::PrimitiveIsA {
                hypo: id.index() as u32,
                hyper: h.index() as u32,
            })
    });
    let concept_edges = kg.concept_ids().flat_map(move |id| {
        let c = kg.concept(id);
        let cid = id.index() as u32;
        let is_a = c.hypernyms.iter().map(move |h| Record::ConceptIsA {
            hypo: cid,
            hyper: h.index() as u32,
        });
        let prims = c.primitives.iter().map(move |p| Record::ConceptPrimitive {
            concept: cid,
            primitive: p.index() as u32,
        });
        let items = c
            .items
            .iter()
            .map(move |&(item, weight)| Record::ConceptItem {
                concept: cid,
                item: item.index() as u32,
                weight,
            });
        is_a.chain(prims).chain(items)
    });
    let item_edges = kg.item_ids().flat_map(move |id| {
        kg.item(id)
            .primitives
            .iter()
            .map(move |p| Record::ItemPrimitive {
                item: id.index() as u32,
                primitive: p.index() as u32,
            })
    });
    let schema = kg.schema().iter().map(|s| Record::Schema {
        name: &s.name,
        from: s.from.index() as u32,
        to: s.to.index() as u32,
    });
    let relations = kg.primitive_relations().iter().map(|r| Record::Relation {
        name: &r.name,
        from: r.from.index() as u32,
        to: r.to.index() as u32,
    });
    classes
        .chain(primitives)
        .chain(concepts)
        .chain(items)
        .chain(prim_is_a)
        .chain(concept_edges)
        .chain(item_edges)
        .chain(schema)
        .chain(relations)
}

/// Reassembles a net from a record stream, validating as it goes: node ids
/// must arrive in arena order, every referenced id must already exist,
/// names must be unique where the graph requires it, isA edges must not be
/// self-loops, and weights must be finite probabilities. Violations become
/// [`LoadError::Parse`] carrying the offending record's position.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    kg: AliCoCo,
}

impl GraphBuilder {
    /// Start with an empty net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one record; `pos` (the TSV line or binary record ordinal) is
    /// reported in errors.
    pub fn apply(&mut self, pos: usize, rec: &Record<'_>) -> Result<(), LoadError> {
        let err = |msg: &str| LoadError::Parse(pos, msg.to_string());
        let kg = &mut self.kg;
        match *rec {
            Record::Class { id, name, parent } => {
                if kg.class_by_name(name).is_some() {
                    return Err(err("duplicate class name"));
                }
                let parent = match parent {
                    Some(p) if (p as usize) < kg.num_classes() => {
                        Some(ClassId::from_index(p as usize))
                    }
                    Some(_) => return Err(err("class parent out of range")),
                    None => None,
                };
                if kg.add_class(name, parent).index() != id as usize {
                    return Err(err("class ids out of order"));
                }
            }
            Record::Primitive { id, name, class } => {
                if (class as usize) >= kg.num_classes() {
                    return Err(err("primitive class out of range"));
                }
                let got = kg.add_primitive(name, ClassId::from_index(class as usize));
                if got.index() != id as usize {
                    return Err(err("primitive ids out of order"));
                }
            }
            Record::Concept { id, name } => {
                if kg.add_concept(name).index() != id as usize {
                    return Err(err("concept ids out of order"));
                }
            }
            Record::Item { id, ref title } => {
                let tokens: Vec<String> = if title.is_empty() {
                    Vec::new()
                } else {
                    title.split(' ').map(String::from).collect()
                };
                if kg.add_item(&tokens).index() != id as usize {
                    return Err(err("item ids out of order"));
                }
            }
            Record::PrimitiveIsA { hypo, hyper } => {
                let n = kg.num_primitives();
                if (hypo as usize) >= n || (hyper as usize) >= n {
                    return Err(err("primitive isA endpoint out of range"));
                }
                if hypo == hyper {
                    return Err(err("primitive isA self-loop"));
                }
                kg.add_primitive_is_a(
                    PrimitiveId::from_index(hypo as usize),
                    PrimitiveId::from_index(hyper as usize),
                );
            }
            Record::ConceptIsA { hypo, hyper } => {
                let n = kg.num_concepts();
                if (hypo as usize) >= n || (hyper as usize) >= n {
                    return Err(err("concept isA endpoint out of range"));
                }
                if hypo == hyper {
                    return Err(err("concept isA self-loop"));
                }
                kg.add_concept_is_a(
                    ConceptId::from_index(hypo as usize),
                    ConceptId::from_index(hyper as usize),
                );
            }
            Record::ConceptPrimitive { concept, primitive } => {
                if (concept as usize) >= kg.num_concepts()
                    || (primitive as usize) >= kg.num_primitives()
                {
                    return Err(err("concept-primitive endpoint out of range"));
                }
                kg.link_concept_primitive(
                    ConceptId::from_index(concept as usize),
                    PrimitiveId::from_index(primitive as usize),
                );
            }
            Record::ConceptItem {
                concept,
                item,
                weight,
            } => {
                if (concept as usize) >= kg.num_concepts() || (item as usize) >= kg.num_items() {
                    return Err(err("concept-item endpoint out of range"));
                }
                if !weight.is_finite() || !(0.0..=1.0).contains(&weight) {
                    return Err(err("weight must be a probability"));
                }
                kg.link_concept_item(
                    ConceptId::from_index(concept as usize),
                    ItemId::from_index(item as usize),
                    weight,
                );
            }
            Record::ItemPrimitive { item, primitive } => {
                if (item as usize) >= kg.num_items() || (primitive as usize) >= kg.num_primitives()
                {
                    return Err(err("item-primitive endpoint out of range"));
                }
                kg.link_item_primitive(
                    ItemId::from_index(item as usize),
                    PrimitiveId::from_index(primitive as usize),
                );
            }
            Record::Schema { name, from, to } => {
                let n = kg.num_classes();
                if (from as usize) >= n || (to as usize) >= n {
                    return Err(err("schema relation class out of range"));
                }
                kg.add_schema_relation(
                    name,
                    ClassId::from_index(from as usize),
                    ClassId::from_index(to as usize),
                );
            }
            Record::Relation { name, from, to } => {
                let n = kg.num_primitives();
                if (from as usize) >= n || (to as usize) >= n {
                    return Err(err("primitive relation endpoint out of range"));
                }
                kg.add_primitive_relation(
                    name,
                    PrimitiveId::from_index(from as usize),
                    PrimitiveId::from_index(to as usize),
                );
            }
        }
        Ok(())
    }

    /// The assembled net.
    pub fn finish(self) -> AliCoCo {
        self.kg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::test_support::build_sample;

    #[test]
    fn stream_applied_through_builder_reproduces_the_net() {
        let kg = build_sample();
        let mut b = GraphBuilder::new();
        for (i, rec) in stream(&kg).enumerate() {
            b.apply(i, &rec).unwrap();
        }
        assert_eq!(b.finish(), kg);
    }

    #[test]
    fn stream_order_matches_tsv_line_order() {
        let kg = build_sample();
        let mut tsv = Vec::new();
        crate::snapshot::save(&kg, &mut tsv).unwrap();
        let lines = tsv.iter().filter(|&&b| b == b'\n').count();
        assert_eq!(stream(&kg).count(), lines, "one record per TSV line");
        // First records are the classes, in arena order.
        let first = stream(&kg).next().unwrap();
        assert!(matches!(first, Record::Class { id: 0, .. }));
    }

    #[test]
    fn builder_rejects_dangling_references() {
        let mut b = GraphBuilder::new();
        let e = b
            .apply(
                3,
                &Record::ConceptPrimitive {
                    concept: 0,
                    primitive: 0,
                },
            )
            .unwrap_err();
        assert!(matches!(e, LoadError::Parse(3, _)));
    }
}
