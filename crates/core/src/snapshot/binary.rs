//! The compact binary snapshot codec: a sectioned, checksummed container
//! whose reader borrows every string and record slice straight out of one
//! loaded byte buffer (mmap-style), so a cold process reaches "serving"
//! without re-parsing and re-allocating per record.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   magic "ALCC" · version u32 · section_count u32        (12 B)
//! table    per section: tag [u8;4] · offset u64 · len u64
//!          · FNV-1a-64 checksum u64                              (28 B each)
//! payload  the sections themselves, contiguous, in table order,
//!          last one ending exactly at EOF
//! ```
//!
//! Sections, in their fixed order:
//!
//! | tag    | content                                                      |
//! |--------|--------------------------------------------------------------|
//! | `STRA` | string arena: every name/title/token, UTF-8, deduplicated    |
//! | `CLAS` | count u32, then per class `off u32 · len u32 · parent u32`   |
//! | `PRIM` | count u32, then per primitive `off · len · class`            |
//! | `CONC` | count u32, then per concept `off · len`                      |
//! | `ITEM` | count u32, then per item `off · len` (space-joined title)    |
//! | `PPIA` | per primitive: varint degree, zigzag-varint id deltas        |
//! | `CCIA` | per concept: hypernym list, same coding                      |
//! | `CPRI` | per concept: interpreting-primitive list                     |
//! | `CITM` | per concept: varint degree, then per edge zigzag item delta  |
//! |        | followed by the f32 weight bits                              |
//! | `IPRI` | per item: property-primitive list                            |
//! | `SCHM` | count u32, then per relation `off · len · from u32 · to u32` |
//! | `PREL` | same, between primitives                                     |
//! | `PSTC` | concept token postings: varint token count, then per token   |
//! |        | (lexicographic) varint `off/len/degree`, first id absolute,  |
//! |        | then gaps ≥ 1                                                |
//! | `PSTI` | item token postings, same coding                             |
//!
//! `parent` uses `u32::MAX` as "none". String references are
//! `offset/len` pairs into the arena. Every section is integrity-checked
//! at [`SnapshotView::open`]; varint-coded sections are additionally
//! validated (id ranges, weight domain, buffer-capped degrees) as they
//! are decoded, so corrupt input of any shape yields a typed
//! [`LoadError`] instead of a panic or an unbounded allocation.

use std::io;

use alicoco_nn::util::FxHashMap;

use super::{check_name, LoadError, SaveError};
use crate::graph::{
    AliCoCo, ClassNode, ConceptNode, ItemNode, PrimitiveNode, PrimitiveRelation, SchemaRelation,
};
use crate::ids::{ClassId, ConceptId, ItemId, PrimitiveId};
use crate::query::QueryIndex;

/// First four bytes of every binary snapshot — what format auto-detection
/// keys on.
pub const MAGIC: [u8; 4] = *b"ALCC";
/// Format version the codec reads and writes.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 12;
const TABLE_ENTRY_LEN: usize = 28;

/// `(tag, human name)` of every section, in their one fixed file order.
const SECTIONS: &[(&[u8; 4], &str)] = &[
    (b"STRA", "string arena"),
    (b"CLAS", "classes"),
    (b"PRIM", "primitives"),
    (b"CONC", "concepts"),
    (b"ITEM", "items"),
    (b"PPIA", "primitive-isA"),
    (b"CCIA", "concept-isA"),
    (b"CPRI", "concept-primitive"),
    (b"CITM", "concept-item"),
    (b"IPRI", "item-primitive"),
    (b"SCHM", "schema relations"),
    (b"PREL", "primitive relations"),
    (b"PSTC", "concept postings"),
    (b"PSTI", "item postings"),
];

/// `(tag, human name)` of the optional ANN trailer sections, in order.
/// A snapshot carries either none of them (the bare 14-section layout,
/// bytes unchanged from before ANN existed) or all three. Their payloads
/// are opaque to this codec — the `alicoco-ann` crate defines and
/// validates the formats — but they get the same table/checksum/bounds
/// treatment as every other section, so truncation and bitflips are
/// detected at [`SnapshotView::open`] without core knowing the contents.
const ANN_SECTIONS: &[(&[u8; 4], &str)] = &[
    (b"AVOC", "ann vocab"),
    (b"ACON", "ann concepts"),
    (b"AITM", "ann items"),
];

/// The three opaque ANN payloads a snapshot can carry as trailer
/// sections: the query-embedding vocab and the two vector indexes.
#[derive(Clone, Copy, Debug)]
pub struct AnnPayload<'a> {
    /// `AVOC` — token → embedding table bytes.
    pub vocab: &'a [u8],
    /// `ACON` — concept vector index bytes.
    pub concepts: &'a [u8],
    /// `AITM` — item vector index bytes.
    pub items: &'a [u8],
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn corrupt(section: &'static str, msg: impl Into<String>) -> LoadError {
    LoadError::Corrupt(section, msg.into())
}

// ---- writer ----------------------------------------------------------------

/// Deduplicating string arena builder. Interning order is deterministic
/// (first use wins), which is part of what makes re-saves byte-identical.
#[derive(Default)]
struct Arena {
    bytes: Vec<u8>,
    seen: FxHashMap<String, (u32, u32)>,
}

impl Arena {
    fn intern(&mut self, s: &str) -> Result<(u32, u32), SaveError> {
        if let Some(&r) = self.seen.get(s) {
            return Ok(r);
        }
        let off = self.bytes.len();
        if off + s.len() > u32::MAX as usize {
            return Err(SaveError::Io(io::Error::other(
                "string arena exceeds 4 GiB",
            )));
        }
        self.bytes.extend_from_slice(s.as_bytes());
        let r = (off as u32, s.len() as u32);
        self.seen.insert(s.to_string(), r);
        Ok(r)
    }
}

fn count_u32(n: usize, what: &str) -> Result<u32, SaveError> {
    u32::try_from(n)
        .map_err(|_| SaveError::Io(io::Error::other(format!("{what} count exceeds u32"))))
}

fn push_str_ref(sec: &mut Vec<u8>, (off, len): (u32, u32)) {
    sec.extend_from_slice(&off.to_le_bytes());
    sec.extend_from_slice(&len.to_le_bytes());
}

fn encode_deltas(sec: &mut Vec<u8>, ids: &mut dyn ExactSizeIterator<Item = usize>) {
    write_varint(sec, ids.len() as u64);
    let mut prev = 0i64;
    for id in ids {
        let v = id as i64;
        write_varint(sec, zigzag(v - prev));
        prev = v;
    }
}

fn encode_postings(
    sec: &mut Vec<u8>,
    arena: &mut Arena,
    postings: &[(&str, Vec<usize>)],
) -> Result<(), SaveError> {
    write_varint(sec, postings.len() as u64);
    for (tok, ids) in postings {
        let (off, len) = arena.intern(tok)?;
        write_varint(sec, u64::from(off));
        write_varint(sec, u64::from(len));
        write_varint(sec, ids.len() as u64);
        let mut prev: Option<usize> = None;
        for &id in ids {
            match prev {
                None => write_varint(sec, id as u64),
                Some(p) => {
                    debug_assert!(id > p, "postings must be strictly ascending");
                    write_varint(sec, (id - p) as u64);
                }
            }
            prev = Some(id);
        }
    }
    Ok(())
}

/// Serialize a net (plus its derived [`QueryIndex`] token postings) into
/// `out` as one binary snapshot. Output is deterministic: the same net
/// always produces the same bytes.
pub fn save(kg: &AliCoCo, out: &mut Vec<u8>) -> Result<(), SaveError> {
    save_with_ann(kg, None, out)
}

/// [`save`], optionally appending the three ANN trailer sections.
/// `save_with_ann(kg, None, out)` is byte-identical to the pre-ANN
/// format, so bare snapshots round-trip unchanged.
pub fn save_with_ann(
    kg: &AliCoCo,
    ann: Option<AnnPayload<'_>>,
    out: &mut Vec<u8>,
) -> Result<(), SaveError> {
    let mut arena = Arena::default();
    let mut clas = Vec::new();
    clas.extend_from_slice(&count_u32(kg.num_classes(), "class")?.to_le_bytes());
    for id in kg.class_ids() {
        let c = kg.class(id);
        push_str_ref(&mut clas, arena.intern(check_name("class", &c.name)?)?);
        let parent = c.parent.map_or(u32::MAX, |p| p.index() as u32);
        clas.extend_from_slice(&parent.to_le_bytes());
    }
    let mut prim = Vec::new();
    prim.extend_from_slice(&count_u32(kg.num_primitives(), "primitive")?.to_le_bytes());
    for id in kg.primitive_ids() {
        let p = kg.primitive(id);
        push_str_ref(&mut prim, arena.intern(check_name("primitive", &p.name)?)?);
        prim.extend_from_slice(&(p.class.index() as u32).to_le_bytes());
    }
    let mut conc = Vec::new();
    conc.extend_from_slice(&count_u32(kg.num_concepts(), "concept")?.to_le_bytes());
    for id in kg.concept_ids() {
        push_str_ref(
            &mut conc,
            arena.intern(check_name("concept", &kg.concept(id).name)?)?,
        );
    }
    let mut item = Vec::new();
    item.extend_from_slice(&count_u32(kg.num_items(), "item")?.to_le_bytes());
    for id in kg.item_ids() {
        let joined = kg.item(id).title.join(" ");
        push_str_ref(&mut item, arena.intern(check_name("item title", &joined)?)?);
    }
    let mut ppia = Vec::new();
    for id in kg.primitive_ids() {
        let hypernyms = &kg.primitive(id).hypernyms;
        encode_deltas(&mut ppia, &mut hypernyms.iter().map(|h| h.index()));
    }
    let mut ccia = Vec::new();
    let mut cpri = Vec::new();
    let mut citm = Vec::new();
    for id in kg.concept_ids() {
        let c = kg.concept(id);
        encode_deltas(&mut ccia, &mut c.hypernyms.iter().map(|h| h.index()));
        encode_deltas(&mut cpri, &mut c.primitives.iter().map(|p| p.index()));
        write_varint(&mut citm, c.items.len() as u64);
        let mut prev = 0i64;
        for &(i, w) in &c.items {
            let v = i.index() as i64;
            write_varint(&mut citm, zigzag(v - prev));
            prev = v;
            citm.extend_from_slice(&w.to_le_bytes());
        }
    }
    let mut ipri = Vec::new();
    for id in kg.item_ids() {
        let primitives = &kg.item(id).primitives;
        encode_deltas(&mut ipri, &mut primitives.iter().map(|p| p.index()));
    }
    let mut schm = Vec::new();
    schm.extend_from_slice(&count_u32(kg.schema().len(), "schema relation")?.to_le_bytes());
    for s in kg.schema() {
        push_str_ref(
            &mut schm,
            arena.intern(check_name("schema relation", &s.name)?)?,
        );
        schm.extend_from_slice(&(s.from.index() as u32).to_le_bytes());
        schm.extend_from_slice(&(s.to.index() as u32).to_le_bytes());
    }
    let mut prel = Vec::new();
    prel.extend_from_slice(
        &count_u32(kg.primitive_relations().len(), "primitive relation")?.to_le_bytes(),
    );
    for r in kg.primitive_relations() {
        push_str_ref(
            &mut prel,
            arena.intern(check_name("primitive relation", &r.name)?)?,
        );
        prel.extend_from_slice(&(r.from.index() as u32).to_le_bytes());
        prel.extend_from_slice(&(r.to.index() as u32).to_le_bytes());
    }
    let index = QueryIndex::build(kg);
    let concept_postings: Vec<(&str, Vec<usize>)> = index
        .sorted_concept_postings()
        .into_iter()
        .map(|(t, ids)| (t, ids.iter().map(|c| c.index()).collect()))
        .collect();
    let item_postings: Vec<(&str, Vec<usize>)> = index
        .sorted_item_postings()
        .into_iter()
        .map(|(t, ids)| (t, ids.iter().map(|i| i.index()).collect()))
        .collect();
    let mut pstc = Vec::new();
    encode_postings(&mut pstc, &mut arena, &concept_postings)?;
    let mut psti = Vec::new();
    encode_postings(&mut psti, &mut arena, &item_postings)?;

    let sections: [Vec<u8>; 14] = [
        arena.bytes,
        clas,
        prim,
        conc,
        item,
        ppia,
        ccia,
        cpri,
        citm,
        ipri,
        schm,
        prel,
        pstc,
        psti,
    ];
    let mut table: Vec<(&[u8; 4], &[u8])> = SECTIONS
        .iter()
        .zip(&sections)
        .map(|((tag, _), payload)| (*tag, payload.as_slice()))
        .collect();
    if let Some(a) = ann {
        table.push((b"AVOC", a.vocab));
        table.push((b"ACON", a.concepts));
        table.push((b"AITM", a.items));
    }
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(table.len() as u32).to_le_bytes());
    let mut offset = (HEADER_LEN + table.len() * TABLE_ENTRY_LEN) as u64;
    for (tag, payload) in &table {
        out.extend_from_slice(*tag);
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    for (_, payload) in &table {
        out.extend_from_slice(payload);
    }
    Ok(())
}

// ---- reader ----------------------------------------------------------------

/// Total little-endian u32 read for post-validation accessors: entries were
/// bounds-checked at [`SnapshotView::open`], so the fallback is unreachable.
fn u32_at(bytes: &[u8], off: usize) -> u32 {
    bytes
        .get(off..off + 4)
        .and_then(|b| <[u8; 4]>::try_from(b).ok())
        .map(u32::from_le_bytes)
        .unwrap_or(0)
}

fn u64_at(bytes: &[u8], off: usize, section: &'static str) -> Result<u64, LoadError> {
    bytes
        .get(off..off + 8)
        .and_then(|b| <[u8; 8]>::try_from(b).ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| corrupt(section, "truncated integer"))
}

/// A fixed-stride node section: a u32 count followed by `count` equal-size
/// entries.
#[derive(Clone, Copy)]
struct FixedSection<'a> {
    entries: &'a [u8],
    stride: usize,
    count: usize,
}

impl<'a> FixedSection<'a> {
    fn parse(sec: &'a [u8], stride: usize, name: &'static str) -> Result<Self, LoadError> {
        let count = sec
            .get(..4)
            .and_then(|b| <[u8; 4]>::try_from(b).ok())
            .map(u32::from_le_bytes)
            .ok_or_else(|| corrupt(name, "section shorter than its count"))?
            as usize;
        let entries = sec.get(4..).unwrap_or(&[]);
        // The count is validated against the actual section length before
        // anything is allocated from it.
        if count.checked_mul(stride) != Some(entries.len()) {
            return Err(corrupt(name, "count does not match section length"));
        }
        Ok(Self {
            entries,
            stride,
            count,
        })
    }

    fn entry(&self, i: usize) -> &'a [u8] {
        self.entries
            .get(i * self.stride..(i + 1) * self.stride)
            .unwrap_or(&[])
    }
}

/// Sequential validating reader over one varint-coded section.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            section,
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn varint(&mut self) -> Result<u64, LoadError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| corrupt(self.section, "truncated varint"))?;
            self.pos += 1;
            if shift == 63 && (b & 0x7e) != 0 {
                return Err(corrupt(self.section, "varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(corrupt(self.section, "varint overflows u64"));
            }
        }
    }

    /// A varint degree, capped against the bytes actually left in the
    /// section (every encoded entry takes at least one byte), so a
    /// corrupted length can never drive an oversized allocation.
    fn degree(&mut self) -> Result<usize, LoadError> {
        let deg = self.varint()?;
        if deg > self.remaining() as u64 {
            return Err(corrupt(self.section, "degree exceeds section size"));
        }
        Ok(deg as usize)
    }

    /// One zigzag-delta-coded id list, every id checked against `n`.
    fn id_list(&mut self, n: usize) -> Result<Vec<u32>, LoadError> {
        let deg = self.degree()?;
        let mut out = Vec::with_capacity(deg);
        let mut prev = 0i64;
        for _ in 0..deg {
            let delta = unzigzag(self.varint()?);
            prev = prev
                .checked_add(delta)
                .ok_or_else(|| corrupt(self.section, "id delta overflows"))?;
            if prev < 0 || prev >= n as i64 {
                return Err(corrupt(self.section, "id out of range"));
            }
            out.push(prev as u32);
        }
        Ok(out)
    }

    /// One id list with an f32 weight per entry (the `CITM` coding);
    /// weights must be finite probabilities.
    fn weighted_list(&mut self, n: usize) -> Result<Vec<(u32, f32)>, LoadError> {
        let deg = self.degree()?;
        let mut out = Vec::with_capacity(deg);
        let mut prev = 0i64;
        for _ in 0..deg {
            let delta = unzigzag(self.varint()?);
            prev = prev
                .checked_add(delta)
                .ok_or_else(|| corrupt(self.section, "id delta overflows"))?;
            if prev < 0 || prev >= n as i64 {
                return Err(corrupt(self.section, "id out of range"));
            }
            let bytes = self
                .buf
                .get(self.pos..self.pos + 4)
                .and_then(|b| <[u8; 4]>::try_from(b).ok())
                .ok_or_else(|| corrupt(self.section, "truncated weight"))?;
            self.pos += 4;
            let w = f32::from_le_bytes(bytes);
            if !w.is_finite() || !(0.0..=1.0).contains(&w) {
                return Err(corrupt(self.section, "weight must be a probability"));
            }
            out.push((prev as u32, w));
        }
        Ok(out)
    }

    /// Skip one list, returning its degree (used for record counting).
    fn skip_list(&mut self, weighted: bool) -> Result<u64, LoadError> {
        let deg = self.degree()?;
        for _ in 0..deg {
            self.varint()?;
            if weighted {
                if self.remaining() < 4 {
                    return Err(corrupt(self.section, "truncated weight"));
                }
                self.pos += 4;
            }
        }
        Ok(deg as u64)
    }

    fn expect_end(&self) -> Result<(), LoadError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(self.section, "trailing bytes in section"));
        }
        Ok(())
    }
}

/// A zero-copy view over a binary snapshot buffer: all strings are `&str`
/// borrows into the file's string arena. [`open`](Self::open) verifies the
/// header, the section table (tags, contiguity, bounds), every section
/// checksum, arena UTF-8 validity, and every fixed-stride record, so the
/// accessors after it are total.
pub struct SnapshotView<'a> {
    arena: &'a str,
    classes: FixedSection<'a>,
    primitives: FixedSection<'a>,
    concepts: FixedSection<'a>,
    items: FixedSection<'a>,
    ppia: &'a [u8],
    ccia: &'a [u8],
    cpri: &'a [u8],
    citm: &'a [u8],
    ipri: &'a [u8],
    schema: FixedSection<'a>,
    relations: FixedSection<'a>,
    pstc: &'a [u8],
    psti: &'a [u8],
    /// The three opaque ANN trailer payloads, when the snapshot carries
    /// them (checksummed and bounds-checked like every other section).
    ann: Option<[&'a [u8]; 3]>,
}

impl<'a> SnapshotView<'a> {
    /// Open and integrity-check a snapshot buffer without materializing a
    /// graph.
    pub fn open(bytes: &'a [u8]) -> Result<Self, LoadError> {
        let header = bytes
            .get(..HEADER_LEN)
            .ok_or_else(|| corrupt("header", "file shorter than header"))?;
        if header.get(..4) != Some(&MAGIC[..]) {
            return Err(corrupt("header", "bad magic"));
        }
        let version = u32_at(header, 4);
        if version != VERSION {
            return Err(corrupt("header", format!("unsupported version {version}")));
        }
        let section_count = u32_at(header, 8) as usize;
        let with_ann = section_count == SECTIONS.len() + ANN_SECTIONS.len();
        if section_count != SECTIONS.len() && !with_ann {
            return Err(corrupt("header", "wrong section count"));
        }
        let expected_tags = SECTIONS
            .iter()
            .chain(if with_ann { ANN_SECTIONS } else { &[] })
            .copied();
        let mut payloads: Vec<&'a [u8]> = Vec::with_capacity(section_count);
        let mut expected = HEADER_LEN + section_count * TABLE_ENTRY_LEN;
        for (i, (tag, name)) in expected_tags.enumerate() {
            let base = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let entry = bytes
                .get(base..base + TABLE_ENTRY_LEN)
                .ok_or_else(|| corrupt("section table", "truncated table"))?;
            if entry.get(..4) != Some(&tag[..]) {
                return Err(corrupt("section table", format!("expected section {name}")));
            }
            let off = usize::try_from(u64_at(entry, 4, "section table")?)
                .map_err(|_| corrupt("section table", "offset overflow"))?;
            let len = usize::try_from(u64_at(entry, 12, "section table")?)
                .map_err(|_| corrupt("section table", "length overflow"))?;
            if off != expected {
                return Err(corrupt("section table", "sections must be contiguous"));
            }
            // The length is capped against the remaining buffer before any
            // use — an oversized-length attack fails here, allocation-free.
            let payload = off
                .checked_add(len)
                .and_then(|end| bytes.get(off..end))
                .ok_or_else(|| corrupt("section table", "section length exceeds file"))?;
            if fnv1a64(payload) != u64_at(entry, 20, "section table")? {
                return Err(corrupt(name_of(i), "checksum mismatch"));
            }
            payloads.push(payload);
            expected = off + len;
        }
        if expected != bytes.len() {
            return Err(corrupt(
                "section table",
                "trailing bytes after last section",
            ));
        }
        let ann: Option<[&'a [u8]; 3]> = if with_ann {
            let mut tail = payloads.split_off(SECTIONS.len());
            let items = tail.pop().unwrap_or(&[]);
            let concepts = tail.pop().unwrap_or(&[]);
            let vocab = tail.pop().unwrap_or(&[]);
            Some([vocab, concepts, items])
        } else {
            None
        };
        let [stra, clas, prim, conc, item, ppia, ccia, cpri, citm, ipri, schm, prel, pstc, psti]: [&'a [u8];
            14] = payloads
            .try_into()
            .map_err(|_| corrupt("section table", "wrong section count"))?;
        let arena =
            std::str::from_utf8(stra).map_err(|_| corrupt("string arena", "invalid UTF-8"))?;
        let view = SnapshotView {
            arena,
            classes: FixedSection::parse(clas, 12, "classes")?,
            primitives: FixedSection::parse(prim, 12, "primitives")?,
            concepts: FixedSection::parse(conc, 8, "concepts")?,
            items: FixedSection::parse(item, 8, "items")?,
            ppia,
            ccia,
            cpri,
            citm,
            ipri,
            schema: FixedSection::parse(schm, 16, "schema relations")?,
            relations: FixedSection::parse(prel, 16, "primitive relations")?,
            pstc,
            psti,
            ann,
        };
        view.validate_fixed()?;
        Ok(view)
    }

    /// Range- and boundary-check every fixed-stride record so the plain
    /// accessors are total afterwards.
    fn validate_fixed(&self) -> Result<(), LoadError> {
        let check_str = |entry: &[u8], section: &'static str| -> Result<(), LoadError> {
            let off = u32_at(entry, 0) as usize;
            let len = u32_at(entry, 4) as usize;
            if self.arena.get(off..off + len).is_none() {
                return Err(corrupt(
                    section,
                    "string ref out of bounds or splits a UTF-8 character",
                ));
            }
            Ok(())
        };
        for i in 0..self.classes.count {
            let e = self.classes.entry(i);
            check_str(e, "classes")?;
            let parent = u32_at(e, 8);
            if parent != u32::MAX && parent as usize >= self.classes.count {
                return Err(corrupt("classes", "parent out of range"));
            }
        }
        for i in 0..self.primitives.count {
            let e = self.primitives.entry(i);
            check_str(e, "primitives")?;
            if u32_at(e, 8) as usize >= self.classes.count {
                return Err(corrupt("primitives", "class out of range"));
            }
        }
        for i in 0..self.concepts.count {
            check_str(self.concepts.entry(i), "concepts")?;
        }
        for i in 0..self.items.count {
            check_str(self.items.entry(i), "items")?;
        }
        for i in 0..self.schema.count {
            let e = self.schema.entry(i);
            check_str(e, "schema relations")?;
            if u32_at(e, 8) as usize >= self.classes.count
                || u32_at(e, 12) as usize >= self.classes.count
            {
                return Err(corrupt("schema relations", "class out of range"));
            }
        }
        for i in 0..self.relations.count {
            let e = self.relations.entry(i);
            check_str(e, "primitive relations")?;
            if u32_at(e, 8) as usize >= self.primitives.count
                || u32_at(e, 12) as usize >= self.primitives.count
            {
                return Err(corrupt("primitive relations", "primitive out of range"));
            }
        }
        Ok(())
    }

    fn str_at(&self, entry: &[u8]) -> &'a str {
        let off = u32_at(entry, 0) as usize;
        let len = u32_at(entry, 4) as usize;
        self.arena.get(off..off + len).unwrap_or("")
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.count
    }

    /// Number of primitives.
    pub fn num_primitives(&self) -> usize {
        self.primitives.count
    }

    /// Number of concepts.
    pub fn num_concepts(&self) -> usize {
        self.concepts.count
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.items.count
    }

    /// Class name, borrowed from the arena.
    pub fn class_name(&self, i: usize) -> &'a str {
        self.str_at(self.classes.entry(i))
    }

    /// Class parent, if any.
    pub fn class_parent(&self, i: usize) -> Option<usize> {
        match u32_at(self.classes.entry(i), 8) {
            u32::MAX => None,
            p => Some(p as usize),
        }
    }

    /// Primitive surface form, borrowed from the arena.
    pub fn primitive_name(&self, i: usize) -> &'a str {
        self.str_at(self.primitives.entry(i))
    }

    /// Primitive class index.
    pub fn primitive_class(&self, i: usize) -> usize {
        u32_at(self.primitives.entry(i), 8) as usize
    }

    /// Concept surface form, borrowed from the arena.
    pub fn concept_name(&self, i: usize) -> &'a str {
        self.str_at(self.concepts.entry(i))
    }

    /// Space-joined item title, borrowed from the arena.
    pub fn item_title(&self, i: usize) -> &'a str {
        self.str_at(self.items.entry(i))
    }

    /// The three opaque ANN trailer payloads `(vocab, concepts, items)`,
    /// borrowed zero-copy from the buffer, when the snapshot carries
    /// them. Checksums and bounds were verified at [`open`](Self::open);
    /// the payload *contents* are decoded and validated by the
    /// `alicoco-ann` crate, which owns their format.
    pub fn ann(&self) -> Option<(&'a [u8], &'a [u8], &'a [u8])> {
        self.ann.map(|[v, c, i]| (v, c, i))
    }

    /// Materialize the full owned graph via the bulk constructor. Varint
    /// sections are validated here (id ranges, weight domain, exact
    /// section consumption).
    pub fn to_graph(&self) -> Result<AliCoCo, LoadError> {
        let n_class = self.classes.count;
        let n_prim = self.primitives.count;
        let n_conc = self.concepts.count;
        let n_item = self.items.count;
        let mut classes = Vec::with_capacity(n_class);
        for i in 0..n_class {
            classes.push(ClassNode {
                name: self.class_name(i).to_string(),
                parent: self.class_parent(i).map(ClassId::from_index),
                children: Vec::new(),
            });
        }
        let mut prim_isa = Cursor::new(self.ppia, "primitive-isA");
        let mut primitives = Vec::with_capacity(n_prim);
        for i in 0..n_prim {
            let hypernyms = prim_isa
                .id_list(n_prim)?
                .into_iter()
                .map(|p| PrimitiveId::from_index(p as usize))
                .collect();
            primitives.push(PrimitiveNode {
                name: self.primitive_name(i).to_string(),
                class: ClassId::from_index(self.primitive_class(i)),
                hypernyms,
                hyponyms: Vec::new(),
            });
        }
        prim_isa.expect_end()?;
        let mut isa = Cursor::new(self.ccia, "concept-isA");
        let mut interp = Cursor::new(self.cpri, "concept-primitive");
        let mut sugg = Cursor::new(self.citm, "concept-item");
        let mut concepts = Vec::with_capacity(n_conc);
        for i in 0..n_conc {
            let hypernyms = isa
                .id_list(n_conc)?
                .into_iter()
                .map(|c| ConceptId::from_index(c as usize))
                .collect();
            let prims = interp
                .id_list(n_prim)?
                .into_iter()
                .map(|p| PrimitiveId::from_index(p as usize))
                .collect();
            let items = sugg
                .weighted_list(n_item)?
                .into_iter()
                .map(|(id, w)| (ItemId::from_index(id as usize), w))
                .collect();
            concepts.push(ConceptNode {
                name: self.concept_name(i).to_string(),
                primitives: prims,
                hypernyms,
                items,
            });
        }
        isa.expect_end()?;
        interp.expect_end()?;
        sugg.expect_end()?;
        let mut props = Cursor::new(self.ipri, "item-primitive");
        let mut items = Vec::with_capacity(n_item);
        for i in 0..n_item {
            let joined = self.item_title(i);
            let title = if joined.is_empty() {
                Vec::new()
            } else {
                joined.split(' ').map(String::from).collect()
            };
            let primitives = props
                .id_list(n_prim)?
                .into_iter()
                .map(|p| PrimitiveId::from_index(p as usize))
                .collect();
            items.push(ItemNode {
                title,
                primitives,
                concepts: Vec::new(),
            });
        }
        props.expect_end()?;
        let schema = (0..self.schema.count)
            .map(|i| {
                let e = self.schema.entry(i);
                SchemaRelation {
                    name: self.str_at(e).to_string(),
                    from: ClassId::from_index(u32_at(e, 8) as usize),
                    to: ClassId::from_index(u32_at(e, 12) as usize),
                }
            })
            .collect();
        let relations = (0..self.relations.count)
            .map(|i| {
                let e = self.relations.entry(i);
                PrimitiveRelation {
                    name: self.str_at(e).to_string(),
                    from: PrimitiveId::from_index(u32_at(e, 8) as usize),
                    to: PrimitiveId::from_index(u32_at(e, 12) as usize),
                }
            })
            .collect();
        Ok(AliCoCo::from_parts(
            classes, primitives, concepts, items, schema, relations,
        ))
    }

    /// Decode the persisted concept token postings (token → ascending
    /// concept ids), tokens borrowed from the arena.
    pub fn concept_postings(&self) -> Result<Vec<(&'a str, Vec<ConceptId>)>, LoadError> {
        let raw = decode_postings(
            self.pstc,
            self.arena,
            self.concepts.count,
            "concept postings",
        )?;
        Ok(raw
            .into_iter()
            .map(|(t, ids)| {
                (
                    t,
                    ids.into_iter()
                        .map(|i| ConceptId::from_index(i as usize))
                        .collect(),
                )
            })
            .collect())
    }

    /// Zero-copy point lookup: the ascending concept-id posting list for
    /// one token, decoding only the bytes up to that token's entry (the
    /// section stores tokens in lexicographic order, so the walk
    /// early-stops past the probe). This is the cold serving path: a
    /// freshly opened snapshot answers a keyword probe without
    /// materializing the graph or building an index.
    pub fn concept_posting_for(&self, token: &str) -> Result<Option<Vec<ConceptId>>, LoadError> {
        Ok(posting_for(
            self.pstc,
            self.arena,
            self.concepts.count,
            "concept postings",
            token,
        )?
        .map(|ids| {
            ids.into_iter()
                .map(|i| ConceptId::from_index(i as usize))
                .collect()
        }))
    }

    /// Zero-copy point lookup into the item token postings; see
    /// [`concept_posting_for`](Self::concept_posting_for).
    pub fn item_posting_for(&self, token: &str) -> Result<Option<Vec<ItemId>>, LoadError> {
        Ok(posting_for(
            self.psti,
            self.arena,
            self.items.count,
            "item postings",
            token,
        )?
        .map(|ids| {
            ids.into_iter()
                .map(|i| ItemId::from_index(i as usize))
                .collect()
        }))
    }

    /// Decode the persisted item token postings.
    pub fn item_postings(&self) -> Result<Vec<(&'a str, Vec<ItemId>)>, LoadError> {
        let raw = decode_postings(self.psti, self.arena, self.items.count, "item postings")?;
        Ok(raw
            .into_iter()
            .map(|(t, ids)| {
                (
                    t,
                    ids.into_iter()
                        .map(|i| ItemId::from_index(i as usize))
                        .collect(),
                )
            })
            .collect())
    }

    /// Per-section `(name, payload bytes, record count)` — what
    /// `snapshot inspect` prints. Walks the varint sections to count
    /// records, so it also fully validates their framing.
    pub fn section_info(&self) -> Result<Vec<(&'static str, u64, u64)>, LoadError> {
        let fixed = |s: &FixedSection<'_>| (4 + s.entries.len()) as u64;
        let mut out = Vec::with_capacity(SECTIONS.len());
        out.push(("string arena", self.arena.len() as u64, 0));
        out.push(("classes", fixed(&self.classes), self.classes.count as u64));
        out.push((
            "primitives",
            fixed(&self.primitives),
            self.primitives.count as u64,
        ));
        out.push((
            "concepts",
            fixed(&self.concepts),
            self.concepts.count as u64,
        ));
        out.push(("items", fixed(&self.items), self.items.count as u64));
        let count_lists = |sec: &'a [u8],
                           lists: usize,
                           weighted: bool,
                           name: &'static str|
         -> Result<u64, LoadError> {
            let mut cur = Cursor::new(sec, name);
            let mut total = 0u64;
            for _ in 0..lists {
                total += cur.skip_list(weighted)?;
            }
            cur.expect_end()?;
            Ok(total)
        };
        out.push((
            "primitive-isA",
            self.ppia.len() as u64,
            count_lists(self.ppia, self.primitives.count, false, "primitive-isA")?,
        ));
        out.push((
            "concept-isA",
            self.ccia.len() as u64,
            count_lists(self.ccia, self.concepts.count, false, "concept-isA")?,
        ));
        out.push((
            "concept-primitive",
            self.cpri.len() as u64,
            count_lists(self.cpri, self.concepts.count, false, "concept-primitive")?,
        ));
        out.push((
            "concept-item",
            self.citm.len() as u64,
            count_lists(self.citm, self.concepts.count, true, "concept-item")?,
        ));
        out.push((
            "item-primitive",
            self.ipri.len() as u64,
            count_lists(self.ipri, self.items.count, false, "item-primitive")?,
        ));
        out.push((
            "schema relations",
            fixed(&self.schema),
            self.schema.count as u64,
        ));
        out.push((
            "primitive relations",
            fixed(&self.relations),
            self.relations.count as u64,
        ));
        let count_postings = |sec: &'a [u8], name: &'static str| -> Result<u64, LoadError> {
            let mut cur = Cursor::new(sec, name);
            let tokens = cur.varint()?;
            for _ in 0..tokens {
                cur.varint()?;
                cur.varint()?;
                cur.skip_list(false)?;
            }
            cur.expect_end()?;
            Ok(tokens)
        };
        out.push((
            "concept postings",
            self.pstc.len() as u64,
            count_postings(self.pstc, "concept postings")?,
        ));
        out.push((
            "item postings",
            self.psti.len() as u64,
            count_postings(self.psti, "item postings")?,
        ));
        if let Some(payloads) = self.ann {
            for ((_, name), payload) in ANN_SECTIONS.iter().zip(payloads) {
                // Opaque to this codec: byte length only, no record count.
                out.push((name, payload.len() as u64, 0));
            }
        }
        Ok(out)
    }
}

fn name_of(i: usize) -> &'static str {
    SECTIONS
        .get(i)
        .or_else(|| ANN_SECTIONS.get(i.wrapping_sub(SECTIONS.len())))
        .map(|(_, name)| *name)
        .unwrap_or("section")
}

/// One token's arena reference at the cursor, resolved to its `&str`.
fn posting_token<'a>(
    cur: &mut Cursor<'_>,
    arena: &'a str,
    section: &'static str,
) -> Result<&'a str, LoadError> {
    let off = cur.varint()? as usize;
    let len = cur.varint()? as usize;
    off.checked_add(len)
        .and_then(|end| arena.get(off..end))
        .ok_or_else(|| corrupt(section, "token ref out of bounds"))
}

/// One gap-coded strictly-ascending posting list (the tail of a postings
/// token entry), every id checked against `n`.
fn posting_ids(
    cur: &mut Cursor<'_>,
    n: usize,
    section: &'static str,
) -> Result<Vec<u32>, LoadError> {
    let deg = cur.degree()?;
    let mut ids = Vec::with_capacity(deg);
    let mut prev: Option<u64> = None;
    for _ in 0..deg {
        let v = cur.varint()?;
        let id = match prev {
            None => v,
            Some(p) => {
                if v == 0 {
                    return Err(corrupt(section, "postings must be strictly ascending"));
                }
                p.checked_add(v)
                    .ok_or_else(|| corrupt(section, "postings id overflows"))?
            }
        };
        if id >= n as u64 {
            return Err(corrupt(section, "postings id out of range"));
        }
        ids.push(id as u32);
        prev = Some(id);
    }
    Ok(ids)
}

fn decode_postings<'a>(
    sec: &'a [u8],
    arena: &'a str,
    n: usize,
    section: &'static str,
) -> Result<Vec<(&'a str, Vec<u32>)>, LoadError> {
    let mut cur = Cursor::new(sec, section);
    let tokens = cur.varint()?;
    if tokens > sec.len() as u64 {
        return Err(corrupt(section, "token count exceeds section size"));
    }
    let mut out: Vec<(&'a str, Vec<u32>)> = Vec::with_capacity(tokens as usize);
    for _ in 0..tokens {
        let tok = posting_token(&mut cur, arena, section)?;
        if out.last().is_some_and(|(prev, _)| *prev >= tok) {
            return Err(corrupt(
                section,
                "postings tokens must be strictly ascending",
            ));
        }
        let ids = posting_ids(&mut cur, n, section)?;
        out.push((tok, ids));
    }
    cur.expect_end()?;
    Ok(out)
}

/// Point lookup of one token's posting list without materializing the
/// rest of the section. Tokens are stored in strictly ascending
/// lexicographic order (canonical form, enforced by `decode_postings`),
/// so the walk early-stops at the first token past the probe.
fn posting_for(
    sec: &[u8],
    arena: &str,
    n: usize,
    section: &'static str,
    token: &str,
) -> Result<Option<Vec<u32>>, LoadError> {
    let mut cur = Cursor::new(sec, section);
    let tokens = cur.varint()?;
    if tokens > sec.len() as u64 {
        return Err(corrupt(section, "token count exceeds section size"));
    }
    for _ in 0..tokens {
        let tok = posting_token(&mut cur, arena, section)?;
        if tok == token {
            return posting_ids(&mut cur, n, section).map(Some);
        }
        if tok > token {
            return Ok(None);
        }
        cur.skip_list(false)?;
    }
    Ok(None)
}

/// Open + materialize in one call — the cold-load entry point stores use.
pub fn load(bytes: &[u8]) -> Result<AliCoCo, LoadError> {
    SnapshotView::open(bytes)?.to_graph()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::test_support::build_sample;

    fn sample_bytes() -> Vec<u8> {
        let mut out = Vec::new();
        save(&build_sample(), &mut out).unwrap();
        out
    }

    /// Recompute section checksums after a test deliberately patches a
    /// payload (so corruption *past* the checksum layer can be exercised).
    fn fix_checksums(bytes: &mut [u8]) {
        for i in 0..SECTIONS.len() {
            let base = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let off = u64::from_le_bytes(bytes[base + 4..base + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[base + 12..base + 20].try_into().unwrap()) as usize;
            let sum = fnv1a64(&bytes[off..off + len]);
            bytes[base + 20..base + 28].copy_from_slice(&sum.to_le_bytes());
        }
    }

    #[test]
    fn roundtrip_reproduces_the_net_and_is_deterministic() {
        let kg = build_sample();
        let bytes = sample_bytes();
        let loaded = load(&bytes).unwrap();
        assert_eq!(loaded, kg);
        let mut again = Vec::new();
        save(&loaded, &mut again).unwrap();
        assert_eq!(bytes, again, "re-save must be byte-identical");
    }

    #[test]
    fn binary_to_model_to_tsv_matches_the_oracle() {
        let kg = build_sample();
        let mut oracle = Vec::new();
        crate::snapshot::save(&kg, &mut oracle).unwrap();
        let mut tsv = Vec::new();
        crate::snapshot::save(&load(&sample_bytes()).unwrap(), &mut tsv).unwrap();
        assert_eq!(oracle, tsv);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let mut bytes = Vec::new();
        save(&AliCoCo::new(), &mut bytes).unwrap();
        let loaded = load(&bytes).unwrap();
        assert_eq!(loaded, AliCoCo::new());
    }

    #[test]
    fn postings_match_a_fresh_index() {
        let kg = build_sample();
        let bytes = sample_bytes();
        let view = SnapshotView::open(&bytes).unwrap();
        let index = QueryIndex::build(&kg);
        let expect: Vec<(&str, Vec<ConceptId>)> = index
            .sorted_concept_postings()
            .into_iter()
            .map(|(t, ids)| (t, ids.to_vec()))
            .collect();
        assert_eq!(view.concept_postings().unwrap(), expect);
        let expect_items: Vec<(&str, Vec<ItemId>)> = index
            .sorted_item_postings()
            .into_iter()
            .map(|(t, ids)| (t, ids.to_vec()))
            .collect();
        assert_eq!(view.item_postings().unwrap(), expect_items);
    }

    #[test]
    fn posting_point_lookups_match_the_full_decode() {
        let bytes = sample_bytes();
        let view = SnapshotView::open(&bytes).unwrap();
        for (tok, ids) in &view.concept_postings().unwrap() {
            assert_eq!(view.concept_posting_for(tok).unwrap().as_ref(), Some(ids));
        }
        for (tok, ids) in &view.item_postings().unwrap() {
            assert_eq!(view.item_posting_for(tok).unwrap().as_ref(), Some(ids));
        }
        // Probes below, between, and above the stored token range all
        // resolve to a clean miss via the early-stop walk.
        assert_eq!(view.concept_posting_for("").unwrap(), None);
        assert_eq!(view.concept_posting_for("outdoorz").unwrap(), None);
        assert_eq!(view.concept_posting_for("zzzz").unwrap(), None);
        assert_eq!(view.item_posting_for("zzzz").unwrap(), None);
    }

    #[test]
    fn zero_copy_accessors_borrow_from_the_buffer() {
        let kg = build_sample();
        let bytes = sample_bytes();
        let view = SnapshotView::open(&bytes).unwrap();
        assert_eq!(view.num_concepts(), kg.num_concepts());
        for i in 0..view.num_concepts() {
            assert_eq!(
                view.concept_name(i),
                kg.concept(crate::ids::ConceptId::from_index(i)).name
            );
        }
        for i in 0..view.num_items() {
            assert_eq!(
                view.item_title(i),
                kg.item(crate::ids::ItemId::from_index(i)).title.join(" ")
            );
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample_bytes();
        for len in 0..bytes.len() {
            let r = SnapshotView::open(&bytes[..len]).and_then(|v| v.to_graph());
            assert!(r.is_err(), "truncation at {len} must fail");
        }
    }

    #[test]
    fn every_bitflip_is_detected_at_open() {
        let bytes = sample_bytes();
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            assert!(
                SnapshotView::open(&b).is_err(),
                "flip at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn oversized_section_length_is_rejected_without_allocating() {
        let mut bytes = sample_bytes();
        // Patch the string arena's table length to an absurd value.
        let base = HEADER_LEN;
        bytes[base + 12..base + 20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            SnapshotView::open(&bytes),
            Err(LoadError::Corrupt("section table", _))
        ));
    }

    #[test]
    fn corrupt_varint_degree_is_capped() {
        let mut bytes = sample_bytes();
        // PPIA is section index 5; its first byte is the degree of
        // primitive 0's hypernym list. Blow it up and re-checksum.
        let base = HEADER_LEN + 5 * TABLE_ENTRY_LEN;
        let off = u64::from_le_bytes(bytes[base + 4..base + 12].try_into().unwrap()) as usize;
        bytes[off] = 0xff; // continuation bit set: large degree follows
        bytes[off + 1] = 0x7f;
        fix_checksums(&mut bytes);
        let view = SnapshotView::open(&bytes).unwrap();
        let err = view.to_graph().unwrap_err();
        assert!(matches!(err, LoadError::Corrupt("primitive-isA", _)));
    }

    #[test]
    fn corrupt_weight_is_rejected() {
        let kg = build_sample();
        let mut bytes = Vec::new();
        save(&kg, &mut bytes).unwrap();
        // CITM is section index 8. The first concept with items starts
        // with varint degree, zigzag delta, then the weight's 4 bytes.
        let base = HEADER_LEN + 8 * TABLE_ENTRY_LEN;
        let off = u64::from_le_bytes(bytes[base + 4..base + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[base + 12..base + 20].try_into().unwrap()) as usize;
        // Find the first weight: scan for a decodable position is fragile;
        // instead overwrite the last 4 bytes of the section (a weight,
        // since every CITM entry ends with one) with NaN bits.
        assert!(len >= 4, "sample has concept-item edges");
        bytes[off + len - 4..off + len].copy_from_slice(&f32::NAN.to_le_bytes());
        fix_checksums(&mut bytes);
        let view = SnapshotView::open(&bytes).unwrap();
        let err = view.to_graph().unwrap_err();
        assert!(matches!(err, LoadError::Corrupt("concept-item", _)));
    }

    #[test]
    fn non_ascending_postings_are_rejected() {
        // Hand-built postings section: one token (empty string at 0..0),
        // two ids with a zero gap.
        let mut sec = Vec::new();
        write_varint(&mut sec, 1); // token count
        write_varint(&mut sec, 0); // off
        write_varint(&mut sec, 0); // len
        write_varint(&mut sec, 2); // degree
        write_varint(&mut sec, 5); // first id
        write_varint(&mut sec, 0); // zero gap: duplicate id
        let err = decode_postings(&sec, "", 100, "concept postings").unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_, m) if m.contains("ascending")));
    }

    #[test]
    fn section_info_counts_records() {
        let kg = build_sample();
        let bytes = sample_bytes();
        let view = SnapshotView::open(&bytes).unwrap();
        let info = view.section_info().unwrap();
        assert_eq!(info.len(), SECTIONS.len());
        let get = |name: &str| {
            info.iter()
                .find(|(n, _, _)| *n == name)
                .map(|&(_, _, recs)| recs)
                .unwrap()
        };
        assert_eq!(get("classes"), kg.num_classes() as u64);
        assert_eq!(get("concepts"), kg.num_concepts() as u64);
        assert_eq!(get("primitive-isA"), kg.num_primitive_is_a() as u64);
        assert_eq!(get("concept-item"), kg.num_concept_item_links() as u64);
        let total: u64 = info.iter().map(|&(_, bytes, _)| bytes).sum();
        assert_eq!(
            total as usize + HEADER_LEN + SECTIONS.len() * TABLE_ENTRY_LEN,
            bytes.len()
        );
    }

    fn sample_ann_bytes() -> Vec<u8> {
        let ann = AnnPayload {
            vocab: b"fake vocab payload",
            concepts: b"fake concept index",
            items: b"fake item index bytes",
        };
        let mut out = Vec::new();
        save_with_ann(&build_sample(), Some(ann), &mut out).unwrap();
        out
    }

    #[test]
    fn ann_trailer_roundtrips_and_leaves_the_graph_untouched() {
        let kg = build_sample();
        let bytes = sample_ann_bytes();
        let view = SnapshotView::open(&bytes).unwrap();
        let (vocab, concepts, items) = view.ann().expect("ann sections present");
        assert_eq!(vocab, b"fake vocab payload");
        assert_eq!(concepts, b"fake concept index");
        assert_eq!(items, b"fake item index bytes");
        // Zero-copy: the payloads borrow from the buffer.
        let range = bytes.as_ptr_range();
        assert!(range.contains(&vocab.as_ptr()) && range.contains(&items.as_ptr()));
        // The graph is exactly the one a bare snapshot produces.
        assert_eq!(view.to_graph().unwrap(), kg);
        // A bare snapshot reports no ann and stays byte-identical to the
        // pre-ANN `save` output.
        let bare = sample_bytes();
        assert!(SnapshotView::open(&bare).unwrap().ann().is_none());
        let mut via_with_ann = Vec::new();
        save_with_ann(&kg, None, &mut via_with_ann).unwrap();
        assert_eq!(bare, via_with_ann);
    }

    #[test]
    fn ann_trailer_corruption_is_detected_at_open() {
        let bytes = sample_ann_bytes();
        for len in 0..bytes.len() {
            assert!(
                SnapshotView::open(&bytes[..len]).is_err(),
                "truncation at {len} must fail"
            );
        }
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            assert!(
                SnapshotView::open(&b).is_err(),
                "flip at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn ann_section_info_lists_the_trailer() {
        let bytes = sample_ann_bytes();
        let view = SnapshotView::open(&bytes).unwrap();
        let info = view.section_info().unwrap();
        assert_eq!(info.len(), SECTIONS.len() + ANN_SECTIONS.len());
        let vocab = info.iter().find(|(n, _, _)| *n == "ann vocab").unwrap();
        assert_eq!(vocab.1, b"fake vocab payload".len() as u64);
        let total: u64 = info.iter().map(|&(_, bytes, _)| bytes).sum();
        assert_eq!(
            total as usize + HEADER_LEN + info.len() * TABLE_ENTRY_LEN,
            bytes.len()
        );
    }

    #[test]
    fn varint_roundtrip_and_overflow() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut cur = Cursor::new(&buf, "test");
            assert_eq!(cur.varint().unwrap(), v);
            cur.expect_end().unwrap();
        }
        // 11-byte varint overflows.
        let buf = [0x80u8; 11];
        let mut cur = Cursor::new(&buf, "test");
        assert!(cur.varint().is_err());
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
