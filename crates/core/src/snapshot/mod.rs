//! Snapshot persistence, split into a format-agnostic record layer and
//! per-format codecs.
//!
//! [`records`] defines the model ↔ record mapping every codec shares: a
//! canonical stream of typed [`records::Record`]s out of a net, and a
//! validating [`records::GraphBuilder`] that reassembles a net from them.
//! [`tsv`] is the line-oriented text codec — the canonical-bytes oracle
//! every other format is tested against. [`binary`] is a compact sectioned
//! format whose reader borrows zero-copy views straight out of one loaded
//! byte buffer. The [`crate::store`] module wraps both behind a common
//! `Store` trait with format auto-detection.
//!
//! The free functions here ([`save`], [`load`], and their instrumented
//! twins) keep the historical TSV-snapshot API: ids are written in arena
//! order, so loading reproduces identical ids, and re-saving a loaded net
//! reproduces the input byte for byte.

pub mod binary;
pub mod records;
pub mod tsv;

use std::io::{self, BufRead, Write};

use alicoco_obs::{Registry, Stopwatch};

use crate::graph::AliCoCo;

/// Error kind for snapshot saving.
#[derive(Debug)]
pub enum SaveError {
    /// Io.
    Io(io::Error),
    /// A name contains a record separator (tab or newline), which no
    /// snapshot format can persist losslessly against the TSV oracle.
    InvalidName {
        /// What carried the name ("class", "primitive", "item title", …).
        kind: &'static str,
        /// The offending name.
        name: String,
    },
}

impl std::fmt::Display for SaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaveError::Io(e) => write!(f, "io error: {e}"),
            SaveError::InvalidName { kind, name } => {
                write!(
                    f,
                    "{kind} name contains a separator (tab/newline): {name:?}"
                )
            }
        }
    }
}

impl std::error::Error for SaveError {}

impl From<io::Error> for SaveError {
    fn from(e: io::Error) -> Self {
        SaveError::Io(e)
    }
}

/// Error kind for snapshot loading.
#[derive(Debug)]
pub enum LoadError {
    /// Io.
    Io(io::Error),
    /// Malformed record with line (TSV) or record ordinal and description.
    Parse(usize, String),
    /// Structurally corrupt binary snapshot: the section (or header) that
    /// failed validation plus a description. Truncation, bit flips and
    /// oversized length fields all surface here — never as a panic.
    Corrupt(&'static str, String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
            LoadError::Corrupt(section, msg) => {
                write!(f, "corrupt binary snapshot ({section}): {msg}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Reject names no snapshot format can represent. Both codecs call this on
/// every name they persist, so the error surfaces identically through
/// either backend.
pub(crate) fn check_name<'a>(kind: &'static str, s: &'a str) -> Result<&'a str, SaveError> {
    if s.contains('\t') || s.contains('\n') {
        return Err(SaveError::InvalidName {
            kind,
            name: s.to_string(),
        });
    }
    Ok(s)
}

/// A pass-through writer that counts emitted records (newlines). Names
/// cannot contain `\n` (rejected on save), so the newline count is exactly
/// the record count.
struct LineCountWriter<'a, W> {
    inner: &'a mut W,
    lines: u64,
}

impl<W: Write> Write for LineCountWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.lines += buf.iter().take(n).filter(|&&b| b == b'\n').count() as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Serialize the graph to a writer in the canonical TSV format.
pub fn save<W: Write>(kg: &AliCoCo, w: &mut W) -> Result<(), SaveError> {
    tsv::save(kg, w)
}

/// [`save`] plus metrics: wall-clock time into the `snapshot.save_ns`
/// histogram and the record count onto the `snapshot.save_records`
/// counter. The uninstrumented [`save`] pays nothing for this path.
pub fn save_instrumented<W: Write>(
    kg: &AliCoCo,
    w: &mut W,
    metrics: &Registry,
) -> Result<(), SaveError> {
    let watch = Stopwatch::start();
    let mut counted = LineCountWriter { inner: w, lines: 0 };
    save(kg, &mut counted)?;
    let records = counted.lines;
    metrics
        .histogram("snapshot.save_ns")
        .record_duration(watch.elapsed());
    metrics.counter("snapshot.save_records").add(records);
    Ok(())
}

/// Deserialize a graph from a TSV reader. Every field access is
/// bounds-checked, so truncated or malformed records of any type yield a
/// [`LoadError::Parse`] rather than a panic.
pub fn load<R: BufRead>(r: &mut R) -> Result<AliCoCo, LoadError> {
    tsv::load_counted(r).map(|(kg, _)| kg)
}

/// [`load`] plus metrics: wall-clock time into the `snapshot.load_ns`
/// histogram and the record count onto the `snapshot.load_records`
/// counter.
pub fn load_instrumented<R: BufRead>(r: &mut R, metrics: &Registry) -> Result<AliCoCo, LoadError> {
    let watch = Stopwatch::start();
    let (kg, records) = tsv::load_counted(r)?;
    metrics
        .histogram("snapshot.load_ns")
        .record_duration(watch.elapsed());
    metrics.counter("snapshot.load_records").add(records);
    Ok(kg)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    pub fn build_sample() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let cat = kg.add_class("Category", Some(root));
        let event = kg.add_class("Event", Some(root));
        let time = kg.add_class("Time", Some(root));
        let grill = kg.add_primitive("grill", cat);
        let cookware = kg.add_primitive("cookware", cat);
        let bbq = kg.add_primitive("barbecue", event);
        let winter = kg.add_primitive("winter", time);
        kg.add_primitive_is_a(grill, cookware);
        kg.add_primitive_relation("suitable_when", grill, winter);
        kg.add_schema_relation("suitable_when", cat, time);
        let c1 = kg.add_concept("outdoor barbecue");
        let c2 = kg.add_concept("barbecue");
        kg.add_concept_is_a(c1, c2);
        kg.link_concept_primitive(c1, bbq);
        let i = kg.add_item(&["brand".to_string(), "grill".to_string()]);
        kg.link_item_primitive(i, grill);
        kg.link_concept_item(c1, i, 0.75);
        kg
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::build_sample;
    use super::*;
    use crate::stats::Stats;

    #[test]
    fn roundtrip_preserves_everything() {
        let kg = build_sample();
        let mut buf = Vec::new();
        save(&kg, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        let a = Stats::compute(&kg);
        let b = Stats::compute(&loaded);
        assert_eq!(a.num_classes, b.num_classes);
        assert_eq!(a.num_primitives, b.num_primitives);
        assert_eq!(a.num_concepts, b.num_concepts);
        assert_eq!(a.num_items, b.num_items);
        assert_eq!(a.total_relations(), b.total_relations());
        assert_eq!(a.schema_relations, b.schema_relations);
        // Weighted edge survives.
        let c1 = loaded.concept_by_name("outdoor barbecue").unwrap();
        let items = loaded.items_for_concept(c1);
        assert_eq!(items.len(), 1);
        assert!((items[0].1 - 0.75).abs() < 1e-6);
        // Disambiguation index rebuilt.
        assert_eq!(loaded.primitives_by_name("grill").len(), 1);
        // Full structural equality, not just statistics.
        assert_eq!(loaded, kg);
    }

    #[test]
    fn instrumented_roundtrip_counts_records() {
        let kg = build_sample();
        let reg = Registry::new();
        let mut buf = Vec::new();
        save_instrumented(&kg, &mut buf, &reg).unwrap();
        let saved = reg.counter("snapshot.save_records").get();
        let lines = buf.iter().filter(|&&b| b == b'\n').count() as u64;
        assert_eq!(saved, lines, "one record per line");
        assert!(saved > 0);
        let loaded = load_instrumented(&mut buf.as_slice(), &reg).unwrap();
        assert_eq!(loaded.num_concepts(), kg.num_concepts());
        assert_eq!(reg.counter("snapshot.load_records").get(), saved);
        assert_eq!(reg.histogram("snapshot.save_ns").count(), 1);
        assert_eq!(reg.histogram("snapshot.load_ns").count(), 1);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let mut buf = Vec::new();
        save(&AliCoCo::new(), &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.num_classes(), 0);
    }

    #[test]
    fn malformed_input_is_rejected() {
        let bad = b"X\t0\tfoo\n";
        let e = load(&mut bad.as_slice()).unwrap_err();
        assert!(matches!(e, LoadError::Parse(0, _)));
        let bad2 = b"C\t0\tfoo\n"; // missing parent field
        assert!(load(&mut bad2.as_slice()).is_err());
        let bad3 = b"C\t5\tfoo\t-\n"; // id out of order
        assert!(load(&mut bad3.as_slice()).is_err());
    }

    #[test]
    fn truncated_records_error_instead_of_panicking() {
        // Relation records used to index `parts[1..3]` unchecked; every one
        // of these must now surface as a parse error.
        for bad in [
            &b"pp\t0\n"[..],
            b"ee\t0\n",
            b"ep\n",
            b"ip\t1\n",
            b"S\tname\t0\n",
            b"R\tname\n",
        ] {
            let e = load(&mut &bad[..]).unwrap_err();
            assert!(matches!(e, LoadError::Parse(0, _)), "input {bad:?}");
        }
        // An id beyond u32 range is a parse error, not an overflow panic.
        let huge = b"C\t99999999999999999999\tfoo\t-\n";
        assert!(matches!(
            load(&mut &huge[..]).unwrap_err(),
            LoadError::Parse(0, _)
        ));
    }

    #[test]
    fn out_of_range_edge_ids_error_instead_of_panicking() {
        // Edge endpoints used to be trusted and indexed the arena directly;
        // a snapshot referencing a node that was never declared must now be
        // a typed parse error on that record's line.
        for bad in [
            &b"pp\t0\t1\n"[..],
            b"ee\t7\t8\n",
            b"ep\t0\t0\n",
            b"ip\t0\t0\n",
            b"ei\t0\t0\t0.5\n",
            b"S\tr\t0\t1\n",
            b"R\tr\t0\t1\n",
            b"P\t0\tname\t3\n",
            b"C\t0\tname\t9\n",
        ] {
            let e = load(&mut &bad[..]).unwrap_err();
            assert!(matches!(e, LoadError::Parse(0, _)), "input {bad:?}");
        }
        // Out-of-probability or non-finite weights are parse errors, not
        // assertion panics inside the graph.
        let mut kg = AliCoCo::new();
        kg.add_concept("c");
        kg.add_item(&[]);
        let mut buf = Vec::new();
        save(&kg, &mut buf).unwrap();
        for weight in ["1.5", "-0.1", "NaN", "inf"] {
            let mut bytes = buf.clone();
            bytes.extend_from_slice(format!("ei\t0\t0\t{weight}\n").as_bytes());
            assert!(
                matches!(
                    load(&mut bytes.as_slice()).unwrap_err(),
                    LoadError::Parse(_, _)
                ),
                "weight {weight}"
            );
        }
    }

    #[test]
    fn duplicate_class_names_error_instead_of_panicking() {
        let bad = b"C\t0\tdup\t-\nC\t1\tdup\t-\n";
        assert!(matches!(
            load(&mut bad.as_slice()).unwrap_err(),
            LoadError::Parse(1, _)
        ));
        // Self-loop isA edges likewise.
        let bad = b"E\t0\tc\nee\t0\t0\n";
        assert!(matches!(
            load(&mut bad.as_slice()).unwrap_err(),
            LoadError::Parse(1, _)
        ));
    }

    #[test]
    fn names_with_separators_are_a_typed_save_error() {
        // Used to be an assert (process abort); now a `SaveError` returned
        // through both backends.
        let mut kg = AliCoCo::new();
        kg.add_class("bad\tname", None);
        let mut buf = Vec::new();
        let err = save(&kg, &mut buf).unwrap_err();
        assert!(
            matches!(&err, SaveError::InvalidName { kind, name }
                if *kind == "class" && name == "bad\tname"),
            "{err:?}"
        );
        let mut bin = Vec::new();
        assert!(matches!(
            binary::save(&kg, &mut bin).unwrap_err(),
            SaveError::InvalidName { .. }
        ));

        let mut kg = AliCoCo::new();
        kg.add_item(&["tok".to_string(), "has\nnewline".to_string()]);
        assert!(matches!(
            save(&kg, &mut Vec::new()).unwrap_err(),
            SaveError::InvalidName {
                kind: "item title",
                ..
            }
        ));
    }
}
