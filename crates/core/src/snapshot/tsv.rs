//! The line-oriented TSV codec — the canonical-bytes oracle every other
//! snapshot format is verified against.
//!
//! The format is a single text stream of typed records, one per line:
//!
//! ```text
//! C\t<id>\t<name>\t<parent|->            taxonomy class
//! P\t<id>\t<name>\t<class>               primitive concept
//! E\t<id>\t<name>                        e-commerce concept
//! I\t<id>\t<title tokens space-joined>   item
//! pp\t<hypo>\t<hyper>                    primitive isA
//! ee\t<hypo>\t<hyper>                    concept isA
//! ep\t<concept>\t<primitive>             concept -> primitive
//! ip\t<item>\t<primitive>                item -> primitive
//! ei\t<concept>\t<item>\t<weight>        concept -> item
//! S\t<name>\t<from>\t<to>                schema relation
//! R\t<name>\t<from>\t<to>                primitive instance relation
//! ```
//!
//! Ids are written in arena order, so loading reproduces identical ids.
//! Tabs and newlines are forbidden in names (a typed [`SaveError`]).

use std::io::{BufRead, Write};

use super::records::{stream, GraphBuilder, Record};
use super::{check_name, LoadError, SaveError};
use crate::graph::AliCoCo;

/// The record types in canonical stream order, with the byte that tags
/// them on the wire. Used by [`crate::store`] to group a TSV snapshot into
/// inspectable pseudo-sections.
pub const RECORD_KINDS: &[&str] = &["C", "P", "E", "I", "pp", "ee", "ep", "ip", "ei", "S", "R"];

/// Serialize the canonical record stream as TSV lines.
pub fn save<W: Write>(kg: &AliCoCo, w: &mut W) -> Result<(), SaveError> {
    for rec in stream(kg) {
        write_record(w, &rec)?;
    }
    Ok(())
}

fn write_record<W: Write>(w: &mut W, rec: &Record<'_>) -> Result<(), SaveError> {
    match *rec {
        Record::Class { id, name, parent } => {
            let name = check_name("class", name)?;
            match parent {
                Some(p) => writeln!(w, "C\t{id}\t{name}\t{p}")?,
                None => writeln!(w, "C\t{id}\t{name}\t-")?,
            }
        }
        Record::Primitive { id, name, class } => {
            writeln!(w, "P\t{id}\t{}\t{class}", check_name("primitive", name)?)?;
        }
        Record::Concept { id, name } => {
            writeln!(w, "E\t{id}\t{}", check_name("concept", name)?)?;
        }
        Record::Item { id, ref title } => {
            writeln!(w, "I\t{id}\t{}", check_name("item title", title)?)?;
        }
        Record::PrimitiveIsA { hypo, hyper } => writeln!(w, "pp\t{hypo}\t{hyper}")?,
        Record::ConceptIsA { hypo, hyper } => writeln!(w, "ee\t{hypo}\t{hyper}")?,
        Record::ConceptPrimitive { concept, primitive } => {
            writeln!(w, "ep\t{concept}\t{primitive}")?;
        }
        Record::ConceptItem {
            concept,
            item,
            weight,
        } => {
            writeln!(w, "ei\t{concept}\t{item}\t{weight}")?;
        }
        Record::ItemPrimitive { item, primitive } => writeln!(w, "ip\t{item}\t{primitive}")?,
        Record::Schema { name, from, to } => {
            writeln!(
                w,
                "S\t{}\t{from}\t{to}",
                check_name("schema relation", name)?
            )?;
        }
        Record::Relation { name, from, to } => {
            writeln!(
                w,
                "R\t{}\t{from}\t{to}",
                check_name("primitive relation", name)?
            )?;
        }
    }
    Ok(())
}

/// Parse one TSV line into a [`Record`] borrowing from it. Every field
/// access is bounds-checked; `ln` is reported in errors.
pub fn parse_line<'a>(ln: usize, line: &'a str) -> Result<Record<'a>, LoadError> {
    let err = |msg: &str| LoadError::Parse(ln, msg.to_string());
    // Ids are stored as `u32` internally, so parse at that width: an
    // out-of-range id in the stream is a parse error, not an overflow panic
    // inside `from_index`.
    let parse_idx = |s: &str| -> Result<u32, LoadError> {
        s.parse::<u32>()
            .map_err(|_| LoadError::Parse(ln, "bad id".to_string()))
    };
    fn field<'b>(ln: usize, parts: &[&'b str], i: usize) -> Result<&'b str, LoadError> {
        parts
            .get(i)
            .copied()
            .ok_or_else(|| LoadError::Parse(ln, "truncated record".to_string()))
    }
    let parts: Vec<&'a str> = line.split('\t').collect();
    let parts = parts.as_slice();
    Ok(match field(ln, parts, 0)? {
        "C" => {
            if parts.len() != 4 {
                return Err(err("class record needs 4 fields"));
            }
            let parent = if field(ln, parts, 3)? == "-" {
                None
            } else {
                Some(parse_idx(field(ln, parts, 3)?)?)
            };
            Record::Class {
                id: parse_idx(field(ln, parts, 1)?)?,
                name: field(ln, parts, 2)?,
                parent,
            }
        }
        "P" => {
            if parts.len() != 4 {
                return Err(err("primitive record needs 4 fields"));
            }
            Record::Primitive {
                id: parse_idx(field(ln, parts, 1)?)?,
                name: field(ln, parts, 2)?,
                class: parse_idx(field(ln, parts, 3)?)?,
            }
        }
        "E" => {
            if parts.len() != 3 {
                return Err(err("concept record needs 3 fields"));
            }
            Record::Concept {
                id: parse_idx(field(ln, parts, 1)?)?,
                name: field(ln, parts, 2)?,
            }
        }
        "I" => {
            if parts.len() != 3 {
                return Err(err("item record needs 3 fields"));
            }
            Record::Item {
                id: parse_idx(field(ln, parts, 1)?)?,
                title: field(ln, parts, 2)?.to_string(),
            }
        }
        "pp" => Record::PrimitiveIsA {
            hypo: parse_idx(field(ln, parts, 1)?)?,
            hyper: parse_idx(field(ln, parts, 2)?)?,
        },
        "ee" => Record::ConceptIsA {
            hypo: parse_idx(field(ln, parts, 1)?)?,
            hyper: parse_idx(field(ln, parts, 2)?)?,
        },
        "ep" => Record::ConceptPrimitive {
            concept: parse_idx(field(ln, parts, 1)?)?,
            primitive: parse_idx(field(ln, parts, 2)?)?,
        },
        "ip" => Record::ItemPrimitive {
            item: parse_idx(field(ln, parts, 1)?)?,
            primitive: parse_idx(field(ln, parts, 2)?)?,
        },
        "ei" => {
            if parts.len() != 4 {
                return Err(err("concept-item record needs 4 fields"));
            }
            Record::ConceptItem {
                concept: parse_idx(field(ln, parts, 1)?)?,
                item: parse_idx(field(ln, parts, 2)?)?,
                weight: field(ln, parts, 3)?
                    .parse()
                    .map_err(|_| err("bad weight"))?,
            }
        }
        "S" => Record::Schema {
            name: field(ln, parts, 1)?,
            from: parse_idx(field(ln, parts, 2)?)?,
            to: parse_idx(field(ln, parts, 3)?)?,
        },
        "R" => Record::Relation {
            name: field(ln, parts, 1)?,
            from: parse_idx(field(ln, parts, 2)?)?,
            to: parse_idx(field(ln, parts, 3)?)?,
        },
        other => return Err(err(&format!("unknown record type {other:?}"))),
    })
}

/// Shared load core returning the graph and the number of records parsed.
pub(crate) fn load_counted<R: BufRead>(r: &mut R) -> Result<(AliCoCo, u64), LoadError> {
    let mut records = 0u64;
    let mut builder = GraphBuilder::new();
    for (ln, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        records += 1;
        let rec = parse_line(ln, &line)?;
        builder.apply(ln, &rec)?;
    }
    Ok((builder.finish(), records))
}

/// Deserialize a graph from a TSV reader.
pub fn load<R: BufRead>(r: &mut R) -> Result<AliCoCo, LoadError> {
    load_counted(r).map(|(kg, _)| kg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::test_support::build_sample;

    #[test]
    fn resave_is_byte_identical() {
        let kg = build_sample();
        let mut buf = Vec::new();
        save(&kg, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        let mut again = Vec::new();
        save(&loaded, &mut again).unwrap();
        assert_eq!(buf, again);
    }

    #[test]
    fn extra_fields_on_edge_records_are_tolerated() {
        // Historical behavior: edge/relation records read their fields
        // positionally and ignore trailing extras.
        let text = b"P\t0\tx\t0\npp\t0\t0\t9\n";
        // Self-loop — rejected by the builder, proving the record parsed.
        let kg = b"C\t0\troot\t-\nP\t0\tx\t0\nP\t1\ty\t0\npp\t0\t1\textra\n";
        assert!(load(&mut kg.as_slice()).is_ok());
        assert!(load(&mut text.as_slice()).is_err(), "missing class");
    }
}
