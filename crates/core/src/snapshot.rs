//! Line-oriented TSV snapshot format for persisting a concept net.
//!
//! The format is a single text stream of typed records, one per line:
//!
//! ```text
//! C\t<id>\t<name>\t<parent|->            taxonomy class
//! P\t<id>\t<name>\t<class>               primitive concept
//! E\t<id>\t<name>                        e-commerce concept
//! I\t<id>\t<title tokens space-joined>   item
//! pp\t<hypo>\t<hyper>                    primitive isA
//! ee\t<hypo>\t<hyper>                    concept isA
//! ep\t<concept>\t<primitive>             concept -> primitive
//! ip\t<item>\t<primitive>                item -> primitive
//! ei\t<concept>\t<item>\t<weight>        concept -> item
//! S\t<name>\t<from>\t<to>                schema relation
//! R\t<name>\t<from>\t<to>                primitive instance relation
//! ```
//!
//! Ids are written in arena order, so loading reproduces identical ids.
//! Tabs and newlines are forbidden in names (asserted on save).

use std::io::{self, BufRead, Write};
use std::time::Instant;

use alicoco_obs::Registry;

use crate::graph::AliCoCo;
use crate::ids::{ClassId, ConceptId, ItemId, PrimitiveId};

/// A pass-through writer that counts emitted records (newlines). Names
/// cannot contain `\n` (asserted on save), so the newline count is exactly
/// the record count.
struct LineCountWriter<'a, W> {
    inner: &'a mut W,
    lines: u64,
}

impl<W: Write> Write for LineCountWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.lines += buf.iter().take(n).filter(|&&b| b == b'\n').count() as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Serialize the graph to a writer.
pub fn save<W: Write>(kg: &AliCoCo, w: &mut W) -> io::Result<()> {
    fn check(s: &str) -> &str {
        assert!(
            !s.contains('\t') && !s.contains('\n'),
            "name contains separator: {s:?}"
        );
        s
    }
    for id in kg.class_ids() {
        let c = kg.class(id);
        let parent = match c.parent {
            Some(p) => p.index().to_string(),
            None => "-".to_string(),
        };
        writeln!(w, "C\t{}\t{}\t{}", id.index(), check(&c.name), parent)?;
    }
    for id in kg.primitive_ids() {
        let p = kg.primitive(id);
        writeln!(
            w,
            "P\t{}\t{}\t{}",
            id.index(),
            check(&p.name),
            p.class.index()
        )?;
    }
    for id in kg.concept_ids() {
        writeln!(w, "E\t{}\t{}", id.index(), check(&kg.concept(id).name))?;
    }
    for id in kg.item_ids() {
        let title = kg.item(id).title.join(" ");
        writeln!(w, "I\t{}\t{}", id.index(), check(&title))?;
    }
    for id in kg.primitive_ids() {
        for &h in &kg.primitive(id).hypernyms {
            writeln!(w, "pp\t{}\t{}", id.index(), h.index())?;
        }
    }
    for id in kg.concept_ids() {
        let c = kg.concept(id);
        for &h in &c.hypernyms {
            writeln!(w, "ee\t{}\t{}", id.index(), h.index())?;
        }
        for &p in &c.primitives {
            writeln!(w, "ep\t{}\t{}", id.index(), p.index())?;
        }
        for &(item, weight) in &c.items {
            writeln!(w, "ei\t{}\t{}\t{}", id.index(), item.index(), weight)?;
        }
    }
    for id in kg.item_ids() {
        for &p in &kg.item(id).primitives {
            writeln!(w, "ip\t{}\t{}", id.index(), p.index())?;
        }
    }
    for s in kg.schema() {
        writeln!(
            w,
            "S\t{}\t{}\t{}",
            check(&s.name),
            s.from.index(),
            s.to.index()
        )?;
    }
    for r in kg.primitive_relations() {
        writeln!(
            w,
            "R\t{}\t{}\t{}",
            check(&r.name),
            r.from.index(),
            r.to.index()
        )?;
    }
    Ok(())
}

/// [`save`] plus metrics: wall-clock time into the `snapshot.save_ns`
/// histogram and the record count onto the `snapshot.save_records`
/// counter. The uninstrumented [`save`] pays nothing for this path.
pub fn save_instrumented<W: Write>(kg: &AliCoCo, w: &mut W, metrics: &Registry) -> io::Result<()> {
    let start = Instant::now();
    let mut counted = LineCountWriter { inner: w, lines: 0 };
    save(kg, &mut counted)?;
    let records = counted.lines;
    metrics
        .histogram("snapshot.save_ns")
        .record_duration(start.elapsed());
    metrics.counter("snapshot.save_records").add(records);
    Ok(())
}

/// Error kind for snapshot loading.
#[derive(Debug)]
pub enum LoadError {
    /// Io.
    Io(io::Error),
    /// Malformed record with line number and description.
    Parse(usize, String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Deserialize a graph from a reader. Every field access is bounds-checked,
/// so truncated or malformed records of any type yield a
/// [`LoadError::Parse`] rather than a panic.
pub fn load<R: BufRead>(r: &mut R) -> Result<AliCoCo, LoadError> {
    load_counted(r).map(|(kg, _)| kg)
}

/// [`load`] plus metrics: wall-clock time into the `snapshot.load_ns`
/// histogram and the record count onto the `snapshot.load_records`
/// counter.
pub fn load_instrumented<R: BufRead>(r: &mut R, metrics: &Registry) -> Result<AliCoCo, LoadError> {
    let start = Instant::now();
    let (kg, records) = load_counted(r)?;
    metrics
        .histogram("snapshot.load_ns")
        .record_duration(start.elapsed());
    metrics.counter("snapshot.load_records").add(records);
    Ok(kg)
}

/// Shared load core returning the graph and the number of records parsed.
fn load_counted<R: BufRead>(r: &mut R) -> Result<(AliCoCo, u64), LoadError> {
    let mut records = 0u64;
    let mut kg = AliCoCo::new();
    let err = |ln: usize, msg: &str| LoadError::Parse(ln, msg.to_string());
    // Ids are stored as `u32` internally, so parse at that width: an
    // out-of-range id in the stream is a parse error, not an overflow panic
    // inside `from_index`.
    let parse_idx = |ln: usize, s: &str| -> Result<usize, LoadError> {
        s.parse::<u32>()
            .map(|i| i as usize)
            .map_err(|_| err(ln, "bad id"))
    };
    fn field<'a>(ln: usize, parts: &[&'a str], i: usize) -> Result<&'a str, LoadError> {
        parts
            .get(i)
            .copied()
            .ok_or_else(|| LoadError::Parse(ln, "truncated record".to_string()))
    }
    for (ln, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        let parts = parts.as_slice();
        records += 1;
        match field(ln, parts, 0)? {
            "C" => {
                if parts.len() != 4 {
                    return Err(err(ln, "class record needs 4 fields"));
                }
                let parent = if field(ln, parts, 3)? == "-" {
                    None
                } else {
                    Some(ClassId::from_index(parse_idx(ln, field(ln, parts, 3)?)?))
                };
                let id = kg.add_class(field(ln, parts, 2)?, parent);
                if id.index() != parse_idx(ln, field(ln, parts, 1)?)? {
                    return Err(err(ln, "class ids out of order"));
                }
            }
            "P" => {
                if parts.len() != 4 {
                    return Err(err(ln, "primitive record needs 4 fields"));
                }
                let class = ClassId::from_index(parse_idx(ln, field(ln, parts, 3)?)?);
                let id = kg.add_primitive(field(ln, parts, 2)?, class);
                if id.index() != parse_idx(ln, field(ln, parts, 1)?)? {
                    return Err(err(ln, "primitive ids out of order"));
                }
            }
            "E" => {
                if parts.len() != 3 {
                    return Err(err(ln, "concept record needs 3 fields"));
                }
                let id = kg.add_concept(field(ln, parts, 2)?);
                if id.index() != parse_idx(ln, field(ln, parts, 1)?)? {
                    return Err(err(ln, "concept ids out of order"));
                }
            }
            "I" => {
                if parts.len() != 3 {
                    return Err(err(ln, "item record needs 3 fields"));
                }
                let tokens = field(ln, parts, 2)?;
                let title: Vec<String> = if tokens.is_empty() {
                    Vec::new()
                } else {
                    tokens.split(' ').map(String::from).collect()
                };
                let id = kg.add_item(&title);
                if id.index() != parse_idx(ln, field(ln, parts, 1)?)? {
                    return Err(err(ln, "item ids out of order"));
                }
            }
            "pp" => kg.add_primitive_is_a(
                PrimitiveId::from_index(parse_idx(ln, field(ln, parts, 1)?)?),
                PrimitiveId::from_index(parse_idx(ln, field(ln, parts, 2)?)?),
            ),
            "ee" => kg.add_concept_is_a(
                ConceptId::from_index(parse_idx(ln, field(ln, parts, 1)?)?),
                ConceptId::from_index(parse_idx(ln, field(ln, parts, 2)?)?),
            ),
            "ep" => kg.link_concept_primitive(
                ConceptId::from_index(parse_idx(ln, field(ln, parts, 1)?)?),
                PrimitiveId::from_index(parse_idx(ln, field(ln, parts, 2)?)?),
            ),
            "ip" => kg.link_item_primitive(
                ItemId::from_index(parse_idx(ln, field(ln, parts, 1)?)?),
                PrimitiveId::from_index(parse_idx(ln, field(ln, parts, 2)?)?),
            ),
            "ei" => {
                if parts.len() != 4 {
                    return Err(err(ln, "concept-item record needs 4 fields"));
                }
                let weight: f32 = field(ln, parts, 3)?
                    .parse()
                    .map_err(|_| err(ln, "bad weight"))?;
                kg.link_concept_item(
                    ConceptId::from_index(parse_idx(ln, field(ln, parts, 1)?)?),
                    ItemId::from_index(parse_idx(ln, field(ln, parts, 2)?)?),
                    weight,
                );
            }
            "S" => kg.add_schema_relation(
                field(ln, parts, 1)?,
                ClassId::from_index(parse_idx(ln, field(ln, parts, 2)?)?),
                ClassId::from_index(parse_idx(ln, field(ln, parts, 3)?)?),
            ),
            "R" => kg.add_primitive_relation(
                field(ln, parts, 1)?,
                PrimitiveId::from_index(parse_idx(ln, field(ln, parts, 2)?)?),
                PrimitiveId::from_index(parse_idx(ln, field(ln, parts, 3)?)?),
            ),
            other => return Err(err(ln, &format!("unknown record type {other:?}"))),
        }
    }
    Ok((kg, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    fn build_sample() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let cat = kg.add_class("Category", Some(root));
        let event = kg.add_class("Event", Some(root));
        let time = kg.add_class("Time", Some(root));
        let grill = kg.add_primitive("grill", cat);
        let cookware = kg.add_primitive("cookware", cat);
        let bbq = kg.add_primitive("barbecue", event);
        let winter = kg.add_primitive("winter", time);
        kg.add_primitive_is_a(grill, cookware);
        kg.add_primitive_relation("suitable_when", grill, winter);
        kg.add_schema_relation("suitable_when", cat, time);
        let c1 = kg.add_concept("outdoor barbecue");
        let c2 = kg.add_concept("barbecue");
        kg.add_concept_is_a(c1, c2);
        kg.link_concept_primitive(c1, bbq);
        let i = kg.add_item(&["brand".to_string(), "grill".to_string()]);
        kg.link_item_primitive(i, grill);
        kg.link_concept_item(c1, i, 0.75);
        kg
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let kg = build_sample();
        let mut buf = Vec::new();
        save(&kg, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        let a = Stats::compute(&kg);
        let b = Stats::compute(&loaded);
        assert_eq!(a.num_classes, b.num_classes);
        assert_eq!(a.num_primitives, b.num_primitives);
        assert_eq!(a.num_concepts, b.num_concepts);
        assert_eq!(a.num_items, b.num_items);
        assert_eq!(a.total_relations(), b.total_relations());
        assert_eq!(a.schema_relations, b.schema_relations);
        // Weighted edge survives.
        let c1 = loaded.concept_by_name("outdoor barbecue").unwrap();
        let items = loaded.items_for_concept(c1);
        assert_eq!(items.len(), 1);
        assert!((items[0].1 - 0.75).abs() < 1e-6);
        // Disambiguation index rebuilt.
        assert_eq!(loaded.primitives_by_name("grill").len(), 1);
    }

    #[test]
    fn instrumented_roundtrip_counts_records() {
        let kg = build_sample();
        let reg = Registry::new();
        let mut buf = Vec::new();
        save_instrumented(&kg, &mut buf, &reg).unwrap();
        let saved = reg.counter("snapshot.save_records").get();
        let lines = buf.iter().filter(|&&b| b == b'\n').count() as u64;
        assert_eq!(saved, lines, "one record per line");
        assert!(saved > 0);
        let loaded = load_instrumented(&mut buf.as_slice(), &reg).unwrap();
        assert_eq!(loaded.num_concepts(), kg.num_concepts());
        assert_eq!(reg.counter("snapshot.load_records").get(), saved);
        assert_eq!(reg.histogram("snapshot.save_ns").count(), 1);
        assert_eq!(reg.histogram("snapshot.load_ns").count(), 1);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let mut buf = Vec::new();
        save(&AliCoCo::new(), &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.num_classes(), 0);
    }

    #[test]
    fn malformed_input_is_rejected() {
        let bad = b"X\t0\tfoo\n";
        let e = load(&mut bad.as_slice()).unwrap_err();
        assert!(matches!(e, LoadError::Parse(0, _)));
        let bad2 = b"C\t0\tfoo\n"; // missing parent field
        assert!(load(&mut bad2.as_slice()).is_err());
        let bad3 = b"C\t5\tfoo\t-\n"; // id out of order
        assert!(load(&mut bad3.as_slice()).is_err());
    }

    #[test]
    fn truncated_records_error_instead_of_panicking() {
        // Relation records used to index `parts[1..3]` unchecked; every one
        // of these must now surface as a parse error.
        for bad in [
            &b"pp\t0\n"[..],
            b"ee\t0\n",
            b"ep\n",
            b"ip\t1\n",
            b"S\tname\t0\n",
            b"R\tname\n",
        ] {
            let e = load(&mut &bad[..]).unwrap_err();
            assert!(matches!(e, LoadError::Parse(0, _)), "input {bad:?}");
        }
        // An id beyond u32 range is a parse error, not an overflow panic.
        let huge = b"C\t99999999999999999999\tfoo\t-\n";
        assert!(matches!(
            load(&mut &huge[..]).unwrap_err(),
            LoadError::Parse(0, _)
        ));
    }

    #[test]
    #[should_panic(expected = "separator")]
    fn names_with_tabs_rejected_on_save() {
        let mut kg = AliCoCo::new();
        kg.add_class("bad\tname", None);
        let mut buf = Vec::new();
        let _ = save(&kg, &mut buf);
    }
}
