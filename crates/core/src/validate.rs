//! Consistency validation of a concept net.
//!
//! The arena builders make dangling references impossible, but snapshots
//! can come from other tools and hand-edited files; edge *semantics* (acyclic
//! isA, weight ranges, reciprocal links) are invariants worth checking
//! before serving a net. `validate` returns every violation found rather
//! than failing fast, so a damaged snapshot can be triaged in one pass.

use alicoco_nn::util::FxHashSet;

use crate::graph::AliCoCo;
use crate::ids::{ConceptId, PrimitiveId};

/// A single consistency violation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Primitive isA graph has a cycle through this node.
    PrimitiveIsACycle(PrimitiveId),
    /// Concept isA graph has a cycle through this node.
    ConceptIsACycle(ConceptId),
    /// A concept→item weight outside `[0, 1]` or non-finite.
    BadWeight {
        /// Offending concept.
        concept: ConceptId,
        /// The out-of-range weight.
        weight: f32,
    },
    /// An item→concept back-link without the forward edge.
    DanglingBackLink {
        /// Item carrying the back-link.
        item: crate::ids::ItemId,
        /// Concept the back-link points to.
        concept: ConceptId,
    },
    /// A forward concept→item edge without the reciprocal back-link.
    MissingBackLink {
        /// Concept with the forward edge.
        concept: ConceptId,
        /// Item missing the back-link.
        item: crate::ids::ItemId,
    },
    /// A hyponym/hypernym pair recorded on one side only.
    AsymmetricIsA {
        /// The hyponym side of the one-sided edge.
        hyponym: PrimitiveId,
        /// The hypernym side.
        hypernym: PrimitiveId,
    },
    /// An empty class, concept, or primitive name.
    EmptyName(&'static str),
}

/// Check every invariant; returns all violations (empty = consistent).
pub fn validate(kg: &AliCoCo) -> Vec<Violation> {
    let mut out = Vec::new();

    // Names non-empty.
    for c in kg.class_ids() {
        if kg.class(c).name.is_empty() {
            out.push(Violation::EmptyName("class"));
        }
    }
    for p in kg.primitive_ids() {
        if kg.primitive(p).name.is_empty() {
            out.push(Violation::EmptyName("primitive"));
        }
    }
    for c in kg.concept_ids() {
        if kg.concept(c).name.is_empty() {
            out.push(Violation::EmptyName("concept"));
        }
    }

    // Primitive isA: cycle detection (iterative three-color DFS) and edge
    // symmetry.
    {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = kg.num_primitives();
        let mut color = vec![Color::White; n];
        for start in kg.primitive_ids() {
            if color[start.index()] != Color::White {
                continue;
            }
            // (node, next-child-index) stack.
            let mut stack: Vec<(PrimitiveId, usize)> = vec![(start, 0)];
            color[start.index()] = Color::Grey;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let hypernyms = &kg.primitive(node).hypernyms;
                if let Some(&child) = hypernyms.get(*next) {
                    *next += 1;
                    match color[child.index()] {
                        Color::White => {
                            color[child.index()] = Color::Grey;
                            stack.push((child, 0));
                        }
                        Color::Grey => out.push(Violation::PrimitiveIsACycle(child)),
                        Color::Black => {}
                    }
                } else {
                    color[node.index()] = Color::Black;
                    stack.pop();
                }
            }
        }
        for p in kg.primitive_ids() {
            for &h in &kg.primitive(p).hypernyms {
                if !kg.primitive(h).hyponyms.contains(&p) {
                    out.push(Violation::AsymmetricIsA {
                        hyponym: p,
                        hypernym: h,
                    });
                }
            }
        }
    }

    // Concept isA cycles (concept layer stores hypernyms only).
    {
        let n = kg.num_concepts();
        let mut state = vec![0u8; n]; // 0 white, 1 grey, 2 black
        for start in kg.concept_ids() {
            if state[start.index()] != 0 {
                continue;
            }
            let mut stack: Vec<(ConceptId, usize)> = vec![(start, 0)];
            state[start.index()] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let hypernyms = &kg.concept(node).hypernyms;
                if let Some(&child) = hypernyms.get(*next) {
                    *next += 1;
                    match state[child.index()] {
                        0 => {
                            state[child.index()] = 1;
                            stack.push((child, 0));
                        }
                        1 => out.push(Violation::ConceptIsACycle(child)),
                        _ => {}
                    }
                } else {
                    state[node.index()] = 2;
                    stack.pop();
                }
            }
        }
    }

    // Weights and reciprocal concept<->item links.
    for c in kg.concept_ids() {
        for &(item, w) in &kg.concept(c).items {
            if !w.is_finite() || !(0.0..=1.0).contains(&w) {
                out.push(Violation::BadWeight {
                    concept: c,
                    weight: w,
                });
            }
            if !kg.concepts_for_item(item).contains(&c) {
                out.push(Violation::MissingBackLink { concept: c, item });
            }
        }
    }
    for i in kg.item_ids() {
        for &c in kg.concepts_for_item(i) {
            let forward: FxHashSet<crate::ids::ItemId> =
                kg.concept(c).items.iter().map(|&(it, _)| it).collect();
            if !forward.contains(&i) {
                out.push(Violation::DanglingBackLink {
                    item: i,
                    concept: c,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_kg() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let cat = kg.add_class("Category", Some(root));
        let a = kg.add_primitive("grill", cat);
        let b = kg.add_primitive("cookware", cat);
        kg.add_primitive_is_a(a, b);
        let c1 = kg.add_concept("outdoor barbecue");
        let c2 = kg.add_concept("barbecue");
        kg.add_concept_is_a(c1, c2);
        let i = kg.add_item(&["grill".into()]);
        kg.link_concept_item(c1, i, 0.9);
        kg
    }

    #[test]
    fn well_formed_graph_validates_clean() {
        assert!(validate(&valid_kg()).is_empty());
    }

    #[test]
    fn primitive_cycle_is_detected() {
        let mut kg = valid_kg();
        let a = kg.primitives_by_name("grill")[0];
        let b = kg.primitives_by_name("cookware")[0];
        // Manually close the cycle b -> a (a -> b already exists).
        kg.add_primitive_is_a(b, a);
        let v = validate(&kg);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::PrimitiveIsACycle(_))),
            "cycle not flagged: {v:?}"
        );
    }

    #[test]
    fn concept_cycle_is_detected() {
        let mut kg = valid_kg();
        let c1 = kg.concept_by_name("outdoor barbecue").unwrap();
        let c2 = kg.concept_by_name("barbecue").unwrap();
        kg.add_concept_is_a(c2, c1);
        let v = validate(&kg);
        assert!(v.iter().any(|x| matches!(x, Violation::ConceptIsACycle(_))));
    }

    #[test]
    fn self_loops_rejected_at_insertion_so_only_longer_cycles_reach_validate() {
        // add_primitive_is_a panics on self-loops; validate exists for
        // 2+-node cycles that insertion cannot see.
        let kg = valid_kg();
        assert!(validate(&kg).is_empty());
    }

    #[test]
    fn loaded_snapshot_of_valid_graph_stays_valid() {
        let kg = valid_kg();
        let mut buf = Vec::new();
        crate::snapshot::save(&kg, &mut buf).unwrap();
        let loaded = crate::snapshot::load(&mut buf.as_slice()).unwrap();
        assert!(validate(&loaded).is_empty());
    }
}
