#![warn(missing_docs)]
//! # alicoco
//!
//! An open reimplementation of **AliCoCo: Alibaba E-commerce Cognitive
//! Concept Net** (Luo et al., SIGMOD 2020): a four-layer knowledge graph
//! that represents user needs as *e-commerce concepts* ("outdoor barbecue",
//! "christmas gifts for grandpa") and grounds them in typed *primitive
//! concepts*, a class *taxonomy*, and *items*.
//!
//! This crate is the graph itself:
//!
//! - [`graph::AliCoCo`] — node arenas for the four layers, typed relations
//!   (isA within the primitive and concept layers, interpretation links from
//!   concepts to primitives, weighted suggestion links from concepts to
//!   items), a relation schema over classes, and name indices with surface
//!   disambiguation,
//! - [`stats::Stats`] — the Table 2 statistics of a built net,
//! - [`coverage`] — the §7.1 user-needs coverage evaluator, with the
//!   CPV-only baseline vocabulary,
//! - [`snapshot`] — persistence codecs: the line-oriented TSV oracle and a
//!   compact sectioned binary format with zero-copy reads,
//! - [`store`] — the pluggable [`store::Store`] trait over both codecs,
//!   with format auto-detection,
//! - [`rank`] — the shared `(score desc, id asc)` ranking order and a
//!   bounded top-k heap used by every serving surface,
//! - [`infer`] — implied-relation mining (§10 future work: "boy's T-shirt"
//!   implies `Time: Summer`).
//!
//! Construction models (mining, hypernym discovery, concept classification,
//! tagging, item association) live in the `alicoco-mining` crate; this crate
//! stays a pure data structure so downstream applications can depend on it
//! without pulling in training code.
//!
//! # Example
//!
//! ```
//! use alicoco::AliCoCo;
//!
//! let mut kg = AliCoCo::new();
//! // Taxonomy (§3): first-level domains under a virtual root.
//! let root = kg.add_class("concept", None);
//! let location = kg.add_class("Location", Some(root));
//! let event = kg.add_class("Event", Some(root));
//!
//! // Primitive concepts (§4), typed by class.
//! let outdoor = kg.add_primitive("outdoor", location);
//! let barbecue = kg.add_primitive("barbecue", event);
//!
//! // An e-commerce concept (§5) interpreted by primitives.
//! let need = kg.add_concept("outdoor barbecue");
//! kg.link_concept_primitive(need, outdoor);
//! kg.link_concept_primitive(need, barbecue);
//!
//! // Items (§6), suggested for the scenario with a probability.
//! let grill = kg.add_item(&["bbq".into(), "grill".into()]);
//! kg.link_concept_item(need, grill, 0.92);
//!
//! assert_eq!(kg.items_for_concept(need), vec![(grill, 0.92)]);
//! assert_eq!(kg.concepts_for_item(grill), &[need]);
//!
//! // Surfaces disambiguate: the same name can exist in several domains.
//! let ip = kg.add_class("IP", Some(root));
//! let movie = kg.add_primitive("barbecue", ip);
//! assert_ne!(movie, barbecue);
//! assert_eq!(kg.primitives_by_name("barbecue").len(), 2);
//!
//! // Nets round-trip through the TSV snapshot format.
//! let mut buf = Vec::new();
//! alicoco::snapshot::save(&kg, &mut buf).unwrap();
//! let loaded = alicoco::snapshot::load(&mut buf.as_slice()).unwrap();
//! assert_eq!(loaded.num_concepts(), 1);
//! assert!(alicoco::validate::validate(&loaded).is_empty());
//! ```

pub mod coverage;
pub mod graph;
pub mod ids;
pub mod infer;
pub mod query;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod validate;

/// Shared ranking primitives, re-exported from the base `alicoco-nn` crate
/// so every layer (including `nn` and `text`, which cannot depend on this
/// crate) ranks under the same total order.
pub use alicoco_nn::rank;

pub use graph::{AliCoCo, ClassNode, ConceptNode, ItemNode, PrimitiveNode};
pub use ids::{ClassId, ConceptId, ItemId, PrimitiveId};
pub use stats::Stats;
