//! Property-based tests of the text substrate: LM probability bounds, BM25
//! scoring laws, vocabulary invariants, and phrase-mining sanity.

use alicoco_text::bm25::{Bm25Index, Bm25Params};
use alicoco_text::lm::NgramLm;
use alicoco_text::phrase::{mine, PhraseMinerConfig};
use alicoco_text::vocab::{Vocab, UNK};
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(1usize..30, 1..12), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- language model ----------------------------------------------------

    #[test]
    fn lm_perplexity_is_finite_and_positive(
        corpus in corpus_strategy(),
        probe in prop::collection::vec(0usize..40, 0..10),
    ) {
        let lm = NgramLm::train(&corpus, 40);
        let ppl = lm.perplexity(&probe);
        prop_assert!(ppl.is_finite() && ppl > 0.0, "ppl {ppl}");
        let lp = lm.log_prob(&probe);
        prop_assert!(lp <= 0.0 || probe.is_empty());
    }

    #[test]
    fn lm_training_sentences_beat_noise_on_average(corpus in corpus_strategy()) {
        prop_assume!(corpus.iter().map(Vec::len).sum::<usize>() > 30);
        let lm = NgramLm::train(&corpus, 40);
        let train_avg: f64 = corpus.iter().map(|s| lm.perplexity(s)).sum::<f64>()
            / corpus.len() as f64;
        // Out-of-vocabulary noise sentence.
        let noise: Vec<usize> = (100..108).collect();
        prop_assert!(lm.perplexity(&noise) >= train_avg * 0.5);
    }

    // ---- BM25 ---------------------------------------------------------------

    #[test]
    fn bm25_scores_are_nonnegative_and_search_is_sorted(
        docs in corpus_strategy(),
        query in prop::collection::vec(1usize..30, 1..5),
    ) {
        let index = Bm25Index::build(&docs, Bm25Params::default());
        for d in 0..docs.len() {
            prop_assert!(index.score(&query, d) >= 0.0);
        }
        let hits = index.search(&query, 10);
        for w in hits.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        // Every returned hit actually contains a query term.
        for &(d, s) in &hits {
            prop_assert!(s > 0.0);
            prop_assert!(query.iter().any(|t| docs[d].contains(t)));
        }
    }

    #[test]
    fn bm25_adding_a_matching_term_never_hurts(
        docs in corpus_strategy(),
        query in prop::collection::vec(1usize..30, 1..4),
    ) {
        let index = Bm25Index::build(&docs, Bm25Params::default());
        for (d, doc) in docs.iter().enumerate().take(10) {
            let base = index.score(&query, d);
            // Extend the query with a term this document contains.
            let mut extended = query.clone();
            extended.push(doc[0]);
            prop_assert!(index.score(&extended, d) >= base - 1e-9);
        }
    }

    // ---- vocabulary ----------------------------------------------------------

    #[test]
    fn vocab_encode_roundtrips_known_tokens(words in prop::collection::vec("[a-z]{1,6}", 1..20)) {
        let mut vocab = Vocab::new();
        for w in &words {
            vocab.add(w);
        }
        let ids = vocab.encode(&words);
        for (w, &id) in words.iter().zip(&ids) {
            prop_assert_ne!(id, UNK);
            prop_assert_eq!(vocab.token(id), w.as_str());
        }
    }

    // ---- phrase mining --------------------------------------------------------

    #[test]
    fn phrase_candidates_respect_config(corpus in corpus_strategy()) {
        let cfg = PhraseMinerConfig { min_count: 2, min_len: 2, max_len: 3, min_score: 0.0 };
        for c in mine(&corpus, &cfg) {
            prop_assert!(c.count >= 2);
            prop_assert!(c.tokens.len() >= 2 && c.tokens.len() <= 3);
            prop_assert!(c.score.is_finite());
            // The candidate really occurs `count` times in the corpus.
            let occurrences: usize = corpus
                .iter()
                .map(|s| s.windows(c.tokens.len()).filter(|w| *w == c.tokens.as_slice()).count())
                .sum();
            prop_assert_eq!(occurrences as u64, c.count);
        }
    }
}
