//! Quality-phrase mining from raw corpora.
//!
//! Substitutes AutoPhrase (Shang et al. 2018), which the paper uses to mine
//! e-commerce concept candidates from queries, titles, reviews and shopping
//! guides (§5.2.1). Candidates are frequent n-grams scored by pointwise
//! mutual information (cohesion — do the words belong together?) and left /
//! right boundary entropy (completeness — does the phrase appear in diverse
//! contexts, i.e. is it a free-standing unit?).

use alicoco_nn::util::FxHashMap;

use crate::vocab::TokenId;

/// Mining configuration.
#[derive(Clone, Debug)]
pub struct PhraseMinerConfig {
    /// Minimum phrase frequency.
    pub min_count: u64,
    /// Minimum and maximum phrase length in tokens.
    pub min_len: usize,
    /// Max len.
    pub max_len: usize,
    /// Quality-score threshold in `[0, 1]`.
    pub min_score: f64,
}

impl Default for PhraseMinerConfig {
    fn default() -> Self {
        PhraseMinerConfig {
            min_count: 3,
            min_len: 2,
            max_len: 4,
            min_score: 0.25,
        }
    }
}

/// A mined phrase candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct PhraseCandidate {
    /// Tokens.
    pub tokens: Vec<TokenId>,
    /// Count.
    pub count: u64,
    /// Normalized PMI cohesion in roughly `[-1, 1]`.
    pub cohesion: f64,
    /// Min of left/right boundary entropy (nats).
    pub boundary_entropy: f64,
    /// Combined quality score in `[0, 1]`.
    pub score: f64,
}

/// Sentinel for sentence boundaries in context statistics.
const BOUNDARY: u64 = u64::MAX;

/// Mine phrase candidates from id-encoded sentences.
pub fn mine(sentences: &[Vec<TokenId>], cfg: &PhraseMinerConfig) -> Vec<PhraseCandidate> {
    assert!(cfg.min_len >= 2, "phrases must have at least 2 tokens");
    assert!(cfg.max_len >= cfg.min_len);

    let mut unigram: FxHashMap<TokenId, u64> = FxHashMap::default();
    let mut total_tokens = 0u64;
    for s in sentences {
        for &t in s {
            *unigram.entry(t).or_insert(0) += 1;
            total_tokens += 1;
        }
    }
    if total_tokens == 0 {
        return Vec::new();
    }

    // N-gram counts plus left/right context distributions.
    type Ctx = FxHashMap<u64, u64>;
    let mut grams: FxHashMap<Vec<TokenId>, (u64, Ctx, Ctx)> = FxHashMap::default();
    for s in sentences {
        for n in cfg.min_len..=cfg.max_len {
            if s.len() < n {
                continue;
            }
            for i in 0..=s.len() - n {
                let gram = s[i..i + n].to_vec();
                let entry = grams
                    .entry(gram)
                    .or_insert_with(|| (0, Ctx::default(), Ctx::default()));
                entry.0 += 1;
                let left = if i == 0 { BOUNDARY } else { s[i - 1] as u64 };
                let right = if i + n == s.len() {
                    BOUNDARY
                } else {
                    s[i + n] as u64
                };
                *entry.1.entry(left).or_insert(0) += 1;
                *entry.2.entry(right).or_insert(0) += 1;
            }
        }
    }

    let entropy = |ctx: &Ctx| -> f64 {
        let total: u64 = ctx.values().sum();
        if total == 0 {
            return 0.0;
        }
        ctx.values()
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.ln()
            })
            .sum()
    };

    let mut out = Vec::new();
    for (tokens, (count, lctx, rctx)) in &grams {
        if *count < cfg.min_count {
            continue;
        }
        // Normalized PMI: log(p(gram) / prod p(w)) / (-log p(gram)).
        let p_gram = *count as f64 / total_tokens as f64;
        let mut indep = 1.0f64;
        for t in tokens {
            indep *= *unigram.get(t).unwrap_or(&1) as f64 / total_tokens as f64;
        }
        let pmi = (p_gram / indep.max(1e-300)).ln();
        let npmi = pmi / (-(p_gram.ln())).max(1e-9);
        let be = entropy(lctx).min(entropy(rctx));
        // Squash into [0,1]: cohesion must be positive, and boundary entropy
        // saturates around ~2 nats.
        let score = (npmi.clamp(0.0, 1.0)) * (1.0 - (-be).exp());
        if score >= cfg.min_score {
            out.push(PhraseCandidate {
                tokens: tokens.clone(),
                count: *count,
                cohesion: npmi,
                boundary_entropy: be,
                score,
            });
        }
    }
    // Deterministic: by score desc (total order), then tokens.
    out.sort_by(|a, b| {
        alicoco_nn::rank::score_desc(&a.score, &b.score).then_with(|| a.tokens.cmp(&b.tokens))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    /// Corpus where "outdoor barbecue" is a strong phrase appearing in many
    /// contexts, while "barbecue the" is a junk bigram.
    fn toy() -> (Vocab, Vec<Vec<TokenId>>) {
        let raw: Vec<Vec<&str>> = vec![
            vec!["i", "love", "outdoor", "barbecue", "with", "friends"],
            vec!["great", "outdoor", "barbecue", "tools"],
            vec!["outdoor", "barbecue", "needs", "charcoal"],
            vec!["plan", "an", "outdoor", "barbecue", "today"],
            vec!["buy", "outdoor", "barbecue", "grill"],
            vec!["the", "weather", "suits", "outdoor", "barbecue", "fun"],
        ];
        let owned: Vec<Vec<String>> = raw
            .iter()
            .map(|s| s.iter().map(|w| w.to_string()).collect())
            .collect();
        let refs: Vec<&[String]> = owned.iter().map(|s| s.as_slice()).collect();
        let vocab = Vocab::from_corpus(refs.iter().copied(), 1);
        let enc = owned.iter().map(|s| vocab.encode(s)).collect();
        (vocab, enc)
    }

    #[test]
    fn mines_the_strong_phrase() {
        let (vocab, sents) = toy();
        let cands = mine(
            &sents,
            &PhraseMinerConfig {
                min_count: 3,
                ..Default::default()
            },
        );
        assert!(!cands.is_empty());
        let top = &cands[0];
        let words: Vec<&str> = top.tokens.iter().map(|&t| vocab.token(t)).collect();
        assert_eq!(words, vec!["outdoor", "barbecue"]);
        assert!(top.count >= 6);
        assert!(top.boundary_entropy > 1.0, "phrase seen in many contexts");
    }

    #[test]
    fn respects_min_count() {
        let (_, sents) = toy();
        let cands = mine(
            &sents,
            &PhraseMinerConfig {
                min_count: 100,
                ..Default::default()
            },
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn empty_corpus_yields_nothing() {
        let cands = mine(&[], &PhraseMinerConfig::default());
        assert!(cands.is_empty());
    }

    #[test]
    fn output_is_sorted_by_score() {
        let (_, sents) = toy();
        let cands = mine(
            &sents,
            &PhraseMinerConfig {
                min_count: 1,
                min_score: 0.0,
                ..Default::default()
            },
        );
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 tokens")]
    fn unigram_phrases_rejected() {
        mine(
            &[],
            &PhraseMinerConfig {
                min_len: 1,
                ..Default::default()
            },
        );
    }
}
