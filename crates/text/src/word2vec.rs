//! Skip-gram word2vec with negative sampling (SGNS).
//!
//! Replaces the paper's pre-trained GloVe / e-commerce embeddings: every
//! downstream model consumes distributional word vectors trained on the
//! synthetic corpus. Trained with a hand-rolled hot loop (no autodiff) for
//! speed; vectors are exposed as an [`alicoco_nn::Tensor`] aligned with a
//! [`crate::vocab::Vocab`].

use alicoco_nn::{Tensor, TrainConfig, Trainer};
use rand::Rng;

use crate::vocab::{TokenId, Vocab, UNK};

/// Training configuration.
#[derive(Clone, Debug)]
pub struct Word2VecConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Window.
    pub window: usize,
    /// Negatives.
    pub negatives: usize,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dim: 32,
            window: 3,
            negatives: 5,
            epochs: 5,
            lr: 0.025,
            seed: 17,
        }
    }
}

/// Trained embeddings: `vectors` row `i` is the vector of vocab id `i`.
pub struct WordVectors {
    /// Vectors.
    pub vectors: Tensor,
}

impl WordVectors {
    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// Vector of a token id.
    pub fn vector(&self, id: TokenId) -> &[f32] {
        self.vectors.row_slice(id)
    }

    /// Cosine similarity between two token ids.
    pub fn cosine(&self, a: TokenId, b: TokenId) -> f32 {
        cosine(self.vector(a), self.vector(b))
    }

    /// The `k` nearest tokens to `id` by cosine similarity (excluding `id`
    pub fn nearest(&self, id: TokenId, k: usize) -> Vec<(TokenId, f32)> {
        let mut sims: Vec<(TokenId, f32)> = (0..self.vectors.rows())
            .filter(|&j| j != id && j != UNK)
            .map(|j| (j, self.cosine(id, j)))
            .collect();
        sims.sort_by(alicoco_nn::rank::by_score_then_id);
        sims.truncate(k);
        sims
    }
}

/// Cosine similarity of two equal-length vectors (0 for zero vectors).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Unigram^0.75 negative-sampling table.
pub(crate) struct NegativeTable {
    table: Vec<TokenId>,
}

impl NegativeTable {
    pub(crate) fn new(vocab: &Vocab, size: usize) -> Self {
        let mut weights: Vec<f64> = (0..vocab.len())
            .map(|i| {
                if i == UNK {
                    0.0
                } else {
                    (vocab.count(i) as f64).powf(0.75)
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total == 0.0 {
            // Degenerate vocab: sample uniformly over non-unk ids.
            weights.iter_mut().skip(1).for_each(|w| *w = 1.0);
        }
        let total: f64 = weights.iter().sum::<f64>().max(1.0);
        let mut table = Vec::with_capacity(size);
        for (id, w) in weights.iter().enumerate() {
            let n = ((w / total) * size as f64).round() as usize;
            table.extend(std::iter::repeat_n(id, n));
        }
        if table.is_empty() {
            table.push(UNK);
        }
        NegativeTable { table }
    }

    #[inline]
    pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> TokenId {
        self.table[rng.gen_range(0..self.table.len())]
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Train SGNS embeddings over id-encoded sentences.
pub fn train(vocab: &Vocab, sentences: &[Vec<TokenId>], cfg: &Word2VecConfig) -> WordVectors {
    let v = vocab.len();
    let d = cfg.dim;
    let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
    let mut input: Vec<f32> = (0..v * d)
        .map(|_| (rng.gen::<f32>() - 0.5) / d as f32)
        .collect();
    let mut output: Vec<f32> = vec![0.0; v * d];
    let neg_table = NegativeTable::new(vocab, 10_000.max(v * 4));

    let total_steps = (cfg.epochs * sentences.iter().map(Vec::len).sum::<usize>()).max(1);
    let mut step = 0usize;
    let mut grad = vec![0.0f32; d];
    // The engine owns the epoch iteration; SGNS keeps its own finer-grained
    // per-step decay (computed from `step`/`total_steps`), so the epoch body
    // ignores the engine's per-epoch rate.
    Trainer::run_raw(
        &TrainConfig::new(cfg.epochs, cfg.lr),
        1.0,
        &mut rng,
        |_, rng| {
            for sent in sentences {
                for (pos, &center) in sent.iter().enumerate() {
                    step += 1;
                    if center == UNK {
                        continue;
                    }
                    let lr = cfg.lr * (1.0 - step as f32 / total_steps as f32).max(0.05);
                    let lo = pos.saturating_sub(cfg.window);
                    let hi = (pos + cfg.window + 1).min(sent.len());
                    #[allow(clippy::needless_range_loop)]
                    for ctx_pos in lo..hi {
                        if ctx_pos == pos {
                            continue;
                        }
                        let ctx = sent[ctx_pos];
                        if ctx == UNK {
                            continue;
                        }
                        grad.iter_mut().for_each(|g| *g = 0.0);
                        let in_row = &mut input[center * d..(center + 1) * d];
                        // Positive update + negatives, standard SGNS.
                        for sample in 0..=cfg.negatives {
                            let (target, label) = if sample == 0 {
                                (ctx, 1.0f32)
                            } else {
                                let mut neg = neg_table.sample(rng);
                                if neg == ctx {
                                    neg = neg_table.sample(rng);
                                }
                                (neg, 0.0f32)
                            };
                            let out_row = &mut output[target * d..(target + 1) * d];
                            let dot: f32 =
                                in_row.iter().zip(out_row.iter()).map(|(a, b)| a * b).sum();
                            let err = (sigmoid(dot) - label) * lr;
                            for k in 0..d {
                                grad[k] += err * out_row[k];
                                out_row[k] -= err * in_row[k];
                            }
                        }
                        for k in 0..d {
                            in_row[k] -= grad[k];
                        }
                    }
                }
            }
        },
    );
    WordVectors {
        vectors: Tensor::from_vec(v, d, input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic corpus where "grill" and "charcoal" always co-occur, far
    /// from "lipstick"/"mascara". SGNS must place co-occurring words closer.
    fn toy_corpus() -> (Vocab, Vec<Vec<TokenId>>) {
        let mut sents: Vec<Vec<String>> = Vec::new();
        for i in 0..200 {
            if i % 2 == 0 {
                sents.push(
                    ["barbecue", "grill", "charcoal", "outdoor", "fire"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                );
            } else {
                sents.push(
                    ["makeup", "lipstick", "mascara", "beauty", "powder"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                );
            }
        }
        let refs: Vec<&[String]> = sents.iter().map(|s| s.as_slice()).collect();
        let vocab = Vocab::from_corpus(refs.iter().copied(), 1);
        let encoded = sents.iter().map(|s| vocab.encode(s)).collect();
        (vocab, encoded)
    }

    #[test]
    fn cooccurring_words_are_closer() {
        let (vocab, sents) = toy_corpus();
        let cfg = Word2VecConfig {
            dim: 16,
            epochs: 12,
            ..Default::default()
        };
        let wv = train(&vocab, &sents, &cfg);
        let grill = vocab.get("grill").unwrap();
        let charcoal = vocab.get("charcoal").unwrap();
        let lipstick = vocab.get("lipstick").unwrap();
        let same = wv.cosine(grill, charcoal);
        let diff = wv.cosine(grill, lipstick);
        assert!(
            same > diff + 0.2,
            "grill~charcoal ({same}) should beat grill~lipstick ({diff})"
        );
    }

    #[test]
    fn nearest_returns_topic_mates() {
        let (vocab, sents) = toy_corpus();
        let cfg = Word2VecConfig {
            dim: 16,
            epochs: 12,
            ..Default::default()
        };
        let wv = train(&vocab, &sents, &cfg);
        let grill = vocab.get("grill").unwrap();
        let nearest = wv.nearest(grill, 4);
        let barbecue_topic: Vec<TokenId> = ["barbecue", "charcoal", "outdoor", "fire"]
            .iter()
            .map(|t| vocab.get(t).unwrap())
            .collect();
        let hits = nearest
            .iter()
            .filter(|(id, _)| barbecue_topic.contains(id))
            .count();
        assert!(hits >= 3, "nearest neighbours of grill were {nearest:?}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (vocab, sents) = toy_corpus();
        let cfg = Word2VecConfig {
            dim: 8,
            epochs: 2,
            ..Default::default()
        };
        let a = train(&vocab, &sents, &cfg);
        let b = train(&vocab, &sents, &cfg);
        assert_eq!(a.vectors.data(), b.vectors.data());
    }

    #[test]
    fn nearest_breaks_ties_by_ascending_id() {
        // Identical vectors make every cosine tie exactly; the ranking must
        // fall back to ascending token id, stably across calls.
        let rows = 6;
        let data: Vec<f32> = (0..rows).flat_map(|_| [1.0f32, 0.5, -0.25]).collect();
        let wv = WordVectors {
            vectors: Tensor::from_vec(rows, 3, data),
        };
        let nearest = wv.nearest(3, 4);
        let ids: Vec<TokenId> = nearest.iter().map(|&(id, _)| id).collect();
        // Id 0 is UNK (excluded), id 3 is the query itself.
        assert_eq!(ids, vec![1, 2, 4, 5]);
        assert_eq!(wv.nearest(3, 4), nearest);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn negative_table_skips_unk() {
        let (vocab, _) = toy_corpus();
        let table = NegativeTable::new(&vocab, 1000);
        let mut rng = alicoco_nn::util::seeded_rng(5);
        for _ in 0..200 {
            assert_ne!(table.sample(&mut rng), UNK);
        }
    }
}
