//! Dictionary-based word segmentation by dynamic-programming max-matching.
//!
//! The paper (§7.2) generates distant-supervision training data by running a
//! "dynamic programming algorithm of max-matching" over unsegmented text with
//! the existing primitive-concept lexicon, keeping only sentences that match
//! *perfectly* (every word tagged by exactly one label). This module
//! implements that algorithm over character sequences.

use alicoco_nn::util::{FxHashMap, FxHashSet};

/// A lexicon-driven segmenter.
///
/// Entries are strings; segmentation splits an unspaced character string into
/// lexicon entries, maximizing (a) characters covered by entries and
/// (b) preferring longer entries, via dynamic programming.
#[derive(Clone, Debug, Default)]
pub struct MaxMatchSegmenter {
    entries: FxHashSet<String>,
    max_len: usize,
}

/// One segment of a segmentation result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// The surface text of the segment.
    pub text: String,
    /// Whether the segment is a lexicon entry (vs. an uncovered gap).
    pub in_lexicon: bool,
}

impl MaxMatchSegmenter {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// From entries.
    pub fn from_entries<S: AsRef<str>>(entries: impl IntoIterator<Item = S>) -> Self {
        let mut s = Self::new();
        for e in entries {
            s.insert(e.as_ref());
        }
        s
    }

    /// Insert.
    pub fn insert(&mut self, entry: &str) {
        if entry.is_empty() {
            return;
        }
        self.max_len = self.max_len.max(entry.chars().count());
        self.entries.insert(entry.to_string());
    }

    /// Contains.
    pub fn contains(&self, entry: &str) -> bool {
        self.entries.contains(entry)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Segment `text` (treated as a character sequence, no whitespace
    /// splitting) into lexicon entries and gap segments.
    ///
    /// DP objective: maximize covered characters; break ties toward fewer
    /// segments (i.e. prefer longer matches).
    pub fn segment(&self, text: &str) -> Vec<Segment> {
        let chars: Vec<char> = text.chars().collect();
        let n = chars.len();
        if n == 0 {
            return Vec::new();
        }
        // best[i]: (covered chars, -segments) achievable for prefix of len i.
        #[derive(Clone, Copy)]
        struct Cell {
            covered: usize,
            segs: usize,
            /// Back-pointer: (start, matched).
            back: (usize, bool),
        }
        let mut best: Vec<Option<Cell>> = vec![None; n + 1];
        best[0] = Some(Cell {
            covered: 0,
            segs: 0,
            back: (0, false),
        });
        let mut buf = String::new();
        for i in 0..n {
            let Some(cur) = best[i] else { continue };
            // Option 1: single uncovered char.
            let cand = Cell {
                covered: cur.covered,
                segs: cur.segs + 1,
                back: (i, false),
            };
            if better(&best[i + 1], &cand) {
                best[i + 1] = Some(cand);
            }
            // Option 2: lexicon entry starting at i.
            let max_j = (i + self.max_len).min(n);
            for j in (i + 1)..=max_j {
                buf.clear();
                buf.extend(&chars[i..j]);
                if self.entries.contains(buf.as_str()) {
                    let cand = Cell {
                        covered: cur.covered + (j - i),
                        segs: cur.segs + 1,
                        back: (i, true),
                    };
                    if better(&best[j], &cand) {
                        best[j] = Some(cand);
                    }
                }
            }
        }
        fn better(old: &Option<Cell>, new: &Cell) -> bool {
            match old {
                None => true,
                Some(o) => {
                    new.covered > o.covered || (new.covered == o.covered && new.segs < o.segs)
                }
            }
        }
        // Reconstruct.
        let mut out = Vec::new();
        let mut i = n;
        while i > 0 {
            let cell = best[i].expect("dp table hole");
            let (start, matched) = cell.back;
            let text: String = chars[start..i].iter().collect();
            out.push(Segment {
                text,
                in_lexicon: matched,
            });
            i = start;
        }
        out.reverse();
        // Merge adjacent gap segments into one.
        let mut merged: Vec<Segment> = Vec::with_capacity(out.len());
        for seg in out {
            match merged.last_mut() {
                Some(last) if !last.in_lexicon && !seg.in_lexicon => last.text.push_str(&seg.text),
                _ => merged.push(seg),
            }
        }
        merged
    }

    /// True when `text` segments *perfectly*: every segment is a lexicon
    /// entry. This is the paper's filter for distant-supervision sentences.
    pub fn matches_perfectly(&self, text: &str) -> bool {
        let segs = self.segment(text);
        !segs.is_empty() && segs.iter().all(|s| s.in_lexicon)
    }
}

/// A segmenter whose entries carry a label, used to produce IOB-tagged
/// distant-supervision data (§7.2).
#[derive(Clone, Debug, Default)]
pub struct LabeledSegmenter {
    segmenter: MaxMatchSegmenter,
    labels: FxHashMap<String, Vec<usize>>,
}

impl LabeledSegmenter {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a lexicon entry with a class label. The same surface form may
    /// carry several labels (ambiguity).
    pub fn insert(&mut self, entry: &str, label: usize) {
        self.segmenter.insert(entry);
        let ls = self.labels.entry(entry.to_string()).or_default();
        if !ls.contains(&label) {
            ls.push(label);
        }
    }

    /// Labels of.
    pub fn labels_of(&self, entry: &str) -> &[usize] {
        self.labels.get(entry).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Segment and label `text`. Returns `None` unless the match is perfect
    /// and every segment has exactly **one** label — the paper reserves
    /// ambiguous sentences out of the training data.
    pub fn unambiguous_segments(&self, text: &str) -> Option<Vec<(String, usize)>> {
        let segs = self.segmenter.segment(text);
        if segs.is_empty() {
            return None;
        }
        let mut out = Vec::with_capacity(segs.len());
        for s in segs {
            if !s.in_lexicon {
                return None;
            }
            let labels = self.labels_of(&s.text);
            if labels.len() != 1 {
                return None;
            }
            out.push((s.text, labels[0]));
        }
        Some(out)
    }

    /// Segmenter.
    pub fn segmenter(&self) -> &MaxMatchSegmenter {
        &self.segmenter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(entries: &[&str]) -> MaxMatchSegmenter {
        MaxMatchSegmenter::from_entries(entries.iter().copied())
    }

    #[test]
    fn empty_text_yields_nothing() {
        assert!(seg(&["a"]).segment("").is_empty());
    }

    #[test]
    fn prefers_longer_match() {
        let s = seg(&["out", "door", "outdoor"]);
        let r = s.segment("outdoor");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].text, "outdoor");
        assert!(r[0].in_lexicon);
    }

    #[test]
    fn maximizes_coverage_over_greedy() {
        // Greedy left-to-right would take "abc" then fail on "de"; DP finds
        // "ab" + "cde" covering everything.
        let s = seg(&["abc", "ab", "cde"]);
        let r = s.segment("abcde");
        let texts: Vec<&str> = r.iter().map(|x| x.text.as_str()).collect();
        assert_eq!(texts, vec!["ab", "cde"]);
        assert!(s.matches_perfectly("abcde"));
    }

    #[test]
    fn gaps_are_merged() {
        let s = seg(&["warm", "hat"]);
        let r = s.segment("warmxxhat");
        assert_eq!(r.len(), 3);
        assert_eq!(r[1].text, "xx");
        assert!(!r[1].in_lexicon);
        assert!(!s.matches_perfectly("warmxxhat"));
    }

    #[test]
    fn unicode_entries_segment_correctly() {
        let s = seg(&["牛仔裤", "红色"]);
        let r = s.segment("红色牛仔裤");
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].text, "红色");
        assert_eq!(r[1].text, "牛仔裤");
        assert!(s.matches_perfectly("红色牛仔裤"));
    }

    #[test]
    fn labeled_segmenter_rejects_ambiguity() {
        let mut ls = LabeledSegmenter::new();
        ls.insert("village", 0); // Location
        ls.insert("village", 1); // Style — ambiguous!
        ls.insert("skirt", 2);
        assert!(ls.unambiguous_segments("villageskirt").is_none());

        let mut ls2 = LabeledSegmenter::new();
        ls2.insert("red", 3);
        ls2.insert("skirt", 2);
        let r = ls2.unambiguous_segments("redskirt").unwrap();
        assert_eq!(r, vec![("red".to_string(), 3), ("skirt".to_string(), 2)]);
    }

    #[test]
    fn labeled_segmenter_rejects_gaps() {
        let mut ls = LabeledSegmenter::new();
        ls.insert("red", 0);
        assert!(ls.unambiguous_segments("redzz").is_none());
    }
}
