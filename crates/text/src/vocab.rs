//! String-interning vocabulary with frequency counts.

use alicoco_nn::util::FxHashMap;

/// Token id. `0` is always the unknown token `<unk>`.
pub type TokenId = usize;

/// The reserved unknown-token id.
pub const UNK: TokenId = 0;

/// A bidirectional token ↔ id map with occurrence counts.
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    token_to_id: FxHashMap<String, TokenId>,
    id_to_token: Vec<String>,
    counts: Vec<u64>,
}

impl Vocab {
    /// An empty vocabulary containing only `<unk>`.
    pub fn new() -> Self {
        let mut v = Vocab {
            token_to_id: FxHashMap::default(),
            id_to_token: Vec::new(),
            counts: Vec::new(),
        };
        v.add("<unk>");
        v
    }

    /// Build from a token-sequence corpus, keeping tokens with at least
    /// `min_count` occurrences.
    pub fn from_corpus<'a, I, S>(sentences: I, min_count: u64) -> Self
    where
        I: IntoIterator<Item = &'a [S]>,
        S: AsRef<str> + 'a,
    {
        let mut freq: FxHashMap<&str, u64> = FxHashMap::default();
        for sent in sentences {
            for tok in sent {
                *freq.entry(tok.as_ref()).or_insert(0) += 1;
            }
        }
        let mut items: Vec<(&str, u64)> =
            freq.into_iter().filter(|&(_, c)| c >= min_count).collect();
        // Deterministic order: by count desc, then token.
        items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut v = Vocab::new();
        for (tok, c) in items {
            let id = v.add(tok);
            v.counts[id] = c;
        }
        v
    }

    /// Intern `token`, returning its id (existing or new).
    pub fn add(&mut self, token: &str) -> TokenId {
        if let Some(&id) = self.token_to_id.get(token) {
            if let Some(c) = self.counts.get_mut(id) {
                *c += 1;
            }
            return id;
        }
        let id = self.id_to_token.len();
        self.token_to_id.insert(token.to_string(), id);
        self.id_to_token.push(token.to_string());
        self.counts.push(0);
        id
    }

    /// Id of `token`, or `None` if unseen.
    pub fn get(&self, token: &str) -> Option<TokenId> {
        self.token_to_id.get(token).copied()
    }

    /// Id of `token`, falling back to [`UNK`].
    pub fn get_or_unk(&self, token: &str) -> TokenId {
        self.get(token).unwrap_or(UNK)
    }

    /// Token string for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn token(&self, id: TokenId) -> &str {
        &self.id_to_token[id]
    }

    /// Occurrence count recorded for `id` (zero for out-of-range ids).
    pub fn count(&self, id: TokenId) -> u64 {
        self.counts.get(id).copied().unwrap_or(0)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Map a token sequence to ids (unknowns become [`UNK`]).
    pub fn encode<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<TokenId> {
        tokens.iter().map(|t| self.get_or_unk(t.as_ref())).collect()
    }

    /// Iterate `(id, token, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str, u64)> {
        self.id_to_token
            .iter()
            .enumerate()
            .map(move |(i, t)| (i, t.as_str(), self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vocab_has_unk() {
        let v = Vocab::new();
        assert_eq!(v.len(), 1);
        assert_eq!(v.token(UNK), "<unk>");
        assert_eq!(v.get_or_unk("missing"), UNK);
    }

    #[test]
    fn add_is_idempotent_on_id() {
        let mut v = Vocab::new();
        let a = v.add("grill");
        let b = v.add("grill");
        assert_eq!(a, b);
        assert_eq!(v.count(a), 1); // second add counted as an occurrence
    }

    #[test]
    fn from_corpus_respects_min_count() {
        let sents: Vec<Vec<String>> = vec![
            vec!["a".into(), "b".into(), "a".into()],
            vec!["a".into(), "c".into()],
        ];
        let refs: Vec<&[String]> = sents.iter().map(|s| s.as_slice()).collect();
        let v = Vocab::from_corpus(refs.iter().copied(), 2);
        assert!(v.get("a").is_some());
        assert!(v.get("b").is_none());
        assert!(v.get("c").is_none());
        assert_eq!(v.count(v.get("a").unwrap()), 3);
    }

    #[test]
    fn from_corpus_is_deterministic() {
        let sents: Vec<Vec<String>> = vec![vec!["x".into(), "y".into(), "z".into()]];
        let refs: Vec<&[String]> = sents.iter().map(|s| s.as_slice()).collect();
        let a = Vocab::from_corpus(refs.iter().copied(), 1);
        let b = Vocab::from_corpus(refs.iter().copied(), 1);
        assert_eq!(a.get("y"), b.get("y"));
    }

    #[test]
    fn encode_maps_unknowns_to_unk() {
        let mut v = Vocab::new();
        v.add("outdoor");
        let ids = v.encode(&["outdoor", "barbecue"]);
        assert_eq!(ids, vec![v.get("outdoor").unwrap(), UNK]);
    }
}
