//! Doc2vec in the PV-DBOW flavour (Le & Mikolov 2014).
//!
//! The paper uses Doc2vec to encode Wikipedia glosses (§5.2.2, eq. 15) and
//! surrounding-context documents (§5.3.1). Each document gets a dense vector
//! trained to predict the words it contains via negative sampling; unseen
//! documents are embedded by [`Doc2Vec::infer`], which optimizes a fresh
//! vector against the frozen word matrix.

use alicoco_nn::{Tensor, TrainConfig, Trainer};
use rand::Rng;

use crate::vocab::{TokenId, Vocab, UNK};
use crate::word2vec::NegativeTable;

/// Training configuration.
#[derive(Clone, Debug)]
pub struct Doc2VecConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Negatives.
    pub negatives: usize,
    /// Epochs.
    pub epochs: usize,
    /// Infer epochs.
    pub infer_epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for Doc2VecConfig {
    fn default() -> Self {
        Doc2VecConfig {
            dim: 24,
            negatives: 5,
            epochs: 15,
            infer_epochs: 20,
            lr: 0.05,
            seed: 23,
        }
    }
}

/// A trained PV-DBOW model.
pub struct Doc2Vec {
    /// Document vectors, one row per training document.
    pub doc_vectors: Tensor,
    /// Output word matrix (shared predictor weights).
    word_output: Tensor,
    cfg: Doc2VecConfig,
    neg_weights: Vec<f64>,
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Doc2Vec {
    /// Train on id-encoded documents.
    pub fn train(vocab: &Vocab, docs: &[Vec<TokenId>], cfg: &Doc2VecConfig) -> Self {
        let d = cfg.dim;
        let v = vocab.len();
        let n = docs.len();
        let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
        let mut doc_vecs: Vec<f32> = (0..n * d)
            .map(|_| (rng.gen::<f32>() - 0.5) / d as f32)
            .collect();
        let mut out: Vec<f32> = vec![0.0; v * d];
        let table = NegativeTable::new(vocab, 10_000.max(v * 4));
        let mut grad = vec![0.0f32; d];
        // The epoch iteration and linear lr decay (floor 0.1) belong to the
        // shared engine; one pass over the documents is the epoch body.
        Trainer::run_raw(
            &TrainConfig::new(cfg.epochs, cfg.lr),
            0.1,
            &mut rng,
            |ep, rng| {
                let lr = ep.lr;
                for (di, doc) in docs.iter().enumerate() {
                    let doc_row_start = di * d;
                    for &word in doc {
                        if word == UNK {
                            continue;
                        }
                        grad.iter_mut().for_each(|g| *g = 0.0);
                        let doc_row = &mut doc_vecs[doc_row_start..doc_row_start + d];
                        for s in 0..=cfg.negatives {
                            let (target, label) = if s == 0 {
                                (word, 1.0f32)
                            } else {
                                (table.sample(rng), 0.0f32)
                            };
                            if s > 0 && target == word {
                                continue;
                            }
                            let orow = &mut out[target * d..(target + 1) * d];
                            let dot: f32 =
                                doc_row.iter().zip(orow.iter()).map(|(a, b)| a * b).sum();
                            let err = (sigmoid(dot) - label) * lr;
                            for k in 0..d {
                                grad[k] += err * orow[k];
                                orow[k] -= err * doc_row[k];
                            }
                        }
                        for k in 0..d {
                            doc_row[k] -= grad[k];
                        }
                    }
                }
            },
        );
        let neg_weights = (0..v)
            .map(|i| {
                if i == UNK {
                    0.0
                } else {
                    (vocab.count(i) as f64).powf(0.75)
                }
            })
            .collect();
        Doc2Vec {
            doc_vectors: Tensor::from_vec(n, d, doc_vecs),
            word_output: Tensor::from_vec(v, d, out),
            cfg: cfg.clone(),
            neg_weights,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Vector of training document `i`.
    pub fn doc_vector(&self, i: usize) -> &[f32] {
        self.doc_vectors.row_slice(i)
    }

    /// Infer a vector for an unseen document by gradient steps on a fresh
    /// vector with the word matrix frozen. Deterministic given the model.
    pub fn infer(&self, doc: &[TokenId]) -> Vec<f32> {
        let d = self.cfg.dim;
        let mut rng = alicoco_nn::util::seeded_rng(self.cfg.seed ^ 0x5eed);
        let mut vec: Vec<f32> = (0..d)
            .map(|_| (rng.gen::<f32>() - 0.5) / d as f32)
            .collect();
        let total: f64 = self.neg_weights.iter().sum::<f64>().max(1e-9);
        // Constant-lr schedule (floor 1.0): inference takes plain gradient
        // steps at `cfg.lr` for `infer_epochs` passes.
        Trainer::run_raw(
            &TrainConfig::new(self.cfg.infer_epochs, self.cfg.lr),
            1.0,
            &mut rng,
            |ep, rng| {
                for &word in doc {
                    if word == UNK || word >= self.word_output.rows() {
                        continue;
                    }
                    let mut grad = vec![0.0f32; d];
                    for s in 0..=self.cfg.negatives {
                        let (target, label) = if s == 0 {
                            (word, 1.0f32)
                        } else {
                            // Roulette-wheel sample from stored weights.
                            let mut r = rng.gen::<f64>() * total;
                            let mut t = 0usize;
                            for (i, w) in self.neg_weights.iter().enumerate() {
                                r -= w;
                                if r <= 0.0 {
                                    t = i;
                                    break;
                                }
                            }
                            (t, 0.0f32)
                        };
                        if s > 0 && target == word {
                            continue;
                        }
                        let orow = self.word_output.row_slice(target);
                        let dot: f32 = vec.iter().zip(orow).map(|(a, b)| a * b).sum();
                        let err = (sigmoid(dot) - label) * ep.lr;
                        for k in 0..d {
                            grad[k] += err * orow[k];
                        }
                    }
                    for k in 0..d {
                        vec[k] -= grad[k];
                    }
                }
            },
        );
        vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word2vec::cosine;

    fn toy_docs() -> (Vocab, Vec<Vec<TokenId>>) {
        let mut docs: Vec<Vec<String>> = Vec::new();
        for _ in 0..30 {
            docs.push(
                ["grill", "charcoal", "fire", "meat"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
            docs.push(
                ["lipstick", "mascara", "beauty", "powder"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
        }
        let refs: Vec<&[String]> = docs.iter().map(|s| s.as_slice()).collect();
        let vocab = Vocab::from_corpus(refs.iter().copied(), 1);
        let encoded = docs.iter().map(|s| vocab.encode(s)).collect();
        (vocab, encoded)
    }

    #[test]
    fn same_topic_docs_are_closer() {
        let (vocab, docs) = toy_docs();
        let model = Doc2Vec::train(&vocab, &docs, &Doc2VecConfig::default());
        // Docs 0 and 2 are barbecue; doc 1 is beauty.
        let same = cosine(model.doc_vector(0), model.doc_vector(2));
        let diff = cosine(model.doc_vector(0), model.doc_vector(1));
        assert!(same > diff, "same-topic {same} <= cross-topic {diff}");
    }

    #[test]
    fn inferred_vector_lands_near_topic() {
        let (vocab, docs) = toy_docs();
        let model = Doc2Vec::train(&vocab, &docs, &Doc2VecConfig::default());
        let unseen = vocab.encode(&["charcoal", "meat", "fire"]);
        let v = model.infer(&unseen);
        let to_bbq = cosine(&v, model.doc_vector(0));
        let to_beauty = cosine(&v, model.doc_vector(1));
        assert!(
            to_bbq > to_beauty,
            "inferred bbq doc closer to beauty ({to_bbq} vs {to_beauty})"
        );
    }

    /// The pre-engine training loop, kept verbatim as an oracle: migrating
    /// the epoch iteration onto `Trainer::run_raw` must not change a single
    /// bit of the learned embeddings (same schedule, same RNG draws).
    fn reference_train(vocab: &Vocab, docs: &[Vec<TokenId>], cfg: &Doc2VecConfig) -> Vec<f32> {
        let d = cfg.dim;
        let v = vocab.len();
        let n = docs.len();
        let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
        let mut doc_vecs: Vec<f32> = (0..n * d)
            .map(|_| (rng.gen::<f32>() - 0.5) / d as f32)
            .collect();
        let mut out: Vec<f32> = vec![0.0; v * d];
        let table = NegativeTable::new(vocab, 10_000.max(v * 4));
        let mut grad = vec![0.0f32; d];
        for epoch in 0..cfg.epochs {
            let lr = cfg.lr * (1.0 - epoch as f32 / cfg.epochs as f32).max(0.1);
            for (di, doc) in docs.iter().enumerate() {
                let doc_row_start = di * d;
                for &word in doc {
                    if word == UNK {
                        continue;
                    }
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    let doc_row = &mut doc_vecs[doc_row_start..doc_row_start + d];
                    for s in 0..=cfg.negatives {
                        let (target, label) = if s == 0 {
                            (word, 1.0f32)
                        } else {
                            (table.sample(&mut rng), 0.0f32)
                        };
                        if s > 0 && target == word {
                            continue;
                        }
                        let orow = &mut out[target * d..(target + 1) * d];
                        let dot: f32 = doc_row.iter().zip(orow.iter()).map(|(a, b)| a * b).sum();
                        let err = (sigmoid(dot) - label) * lr;
                        for k in 0..d {
                            grad[k] += err * orow[k];
                            orow[k] -= err * doc_row[k];
                        }
                    }
                    for k in 0..d {
                        doc_row[k] -= grad[k];
                    }
                }
            }
        }
        doc_vecs
    }

    #[test]
    fn engine_migration_is_bit_identical_to_reference_loop() {
        let (vocab, docs) = toy_docs();
        for cfg in [
            Doc2VecConfig::default(),
            Doc2VecConfig {
                epochs: 3,
                seed: 99,
                ..Doc2VecConfig::default()
            },
        ] {
            let model = Doc2Vec::train(&vocab, &docs, &cfg);
            let reference = reference_train(&vocab, &docs, &cfg);
            let engine_bits: Vec<u32> = model
                .doc_vectors
                .data()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let oracle_bits: Vec<u32> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(engine_bits, oracle_bits);
        }
    }

    #[test]
    fn infer_is_deterministic() {
        let (vocab, docs) = toy_docs();
        let model = Doc2Vec::train(&vocab, &docs, &Doc2VecConfig::default());
        let doc = vocab.encode(&["grill", "fire"]);
        assert_eq!(model.infer(&doc), model.infer(&doc));
    }

    #[test]
    fn infer_handles_unknown_tokens() {
        let (vocab, docs) = toy_docs();
        let model = Doc2Vec::train(&vocab, &docs, &Doc2VecConfig::default());
        let v = model.infer(&[UNK, UNK]);
        assert_eq!(v.len(), model.dim());
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
