//! Pattern-based hypernym extraction (Hearst 1992) plus the paper's
//! suffix-grammar rule.
//!
//! §4.2.1: the pattern-based method mines hyponym–hypernym pairs from text
//! via lexical patterns such as "Y such as X", and additionally exploits
//! head-word grammar ("XX pants" must be a kind of "pants" — in our
//! synthetic English-like corpus, the compound "alpine-jacket" is a kind of
//! "jacket").

use alicoco_nn::util::FxHashSet;

/// An extracted `(hyponym, hypernym)` pair with the pattern that produced it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HypernymPair {
    /// Hyponym.
    pub hyponym: String,
    /// Hypernym.
    pub hypernym: String,
    /// Pattern.
    pub pattern: &'static str,
}

/// Extract hypernym pairs from one tokenized sentence using Hearst-style
/// patterns:
///
/// - `Y such as X (and/or X2 ...)`
/// - `X is a Y` / `X is a kind of Y`
/// - `X and other Y`
pub fn extract_pairs(tokens: &[&str]) -> Vec<HypernymPair> {
    let mut out = Vec::new();
    let n = tokens.len();
    for i in 0..n {
        // "Y such as X [and X2 ...]"
        if i + 3 < n + 1
            && i >= 1
            && tokens.get(i) == Some(&"such")
            && tokens.get(i + 1) == Some(&"as")
        {
            let hypernym = tokens[i - 1];
            let mut j = i + 2;
            while j < n {
                let tok = tokens[j];
                if tok == "and" || tok == "or" || tok == "," {
                    j += 1;
                    continue;
                }
                if !is_content_word(tok) {
                    break;
                }
                out.push(HypernymPair {
                    hyponym: tok.to_string(),
                    hypernym: hypernym.to_string(),
                    pattern: "such_as",
                });
                j += 1;
                // Stop unless a conjunction follows.
                if j < n && tokens[j] != "and" && tokens[j] != "or" && tokens[j] != "," {
                    break;
                }
            }
        }
        // "X is a [kind of] Y"
        if i + 2 < n
            && i >= 1
            && tokens[i] == "is"
            && (tokens[i + 1] == "a" || tokens[i + 1] == "an")
        {
            let hyponym = tokens[i - 1];
            let mut k = i + 2;
            if k + 1 < n && tokens[k] == "kind" && tokens[k + 1] == "of" {
                k += 2;
            }
            if k < n && is_content_word(tokens[k]) && is_content_word(hyponym) {
                out.push(HypernymPair {
                    hyponym: hyponym.to_string(),
                    hypernym: tokens[k].to_string(),
                    pattern: "is_a",
                });
            }
        }
        // "X and other Y"
        if i + 2 < n && i >= 1 && tokens[i] == "and" && tokens[i + 1] == "other" {
            let hyponym = tokens[i - 1];
            let hypernym = tokens[i + 2];
            if is_content_word(hyponym) && is_content_word(hypernym) {
                out.push(HypernymPair {
                    hyponym: hyponym.to_string(),
                    hypernym: hypernym.to_string(),
                    pattern: "and_other",
                });
            }
        }
    }
    out
}

/// Suffix / head-word rule: a hyphenated compound `a-b` is a kind of its
/// head `b` when `b` is a known term ("alpine-jacket" isA "jacket"). This is
/// the analogue of the paper's "XX裤 must be a 裤" rule.
pub fn head_word_pairs<'a>(
    terms: impl IntoIterator<Item = &'a str>,
    known_heads: &FxHashSet<String>,
) -> Vec<HypernymPair> {
    let mut out = Vec::new();
    for term in terms {
        if let Some((_, head)) = term.rsplit_once('-') {
            if known_heads.contains(head) && head != term {
                out.push(HypernymPair {
                    hyponym: term.to_string(),
                    hypernym: head.to_string(),
                    pattern: "head_word",
                });
            }
        }
    }
    out
}

fn is_content_word(tok: &str) -> bool {
    const STOP: &[&str] = &[
        "a", "an", "the", "and", "or", "of", "for", "in", "on", "with", "to", "is", "are", ",",
        ".", "such", "as", "other",
    ];
    !tok.is_empty() && !STOP.contains(&tok)
}

/// Scan a corpus of tokenized sentences and return the deduplicated pairs.
pub fn extract_from_corpus<'a, I, S>(sentences: I) -> Vec<HypernymPair>
where
    I: IntoIterator<Item = &'a [S]>,
    S: AsRef<str> + 'a,
{
    let mut seen: FxHashSet<HypernymPair> = FxHashSet::default();
    let mut out = Vec::new();
    for sent in sentences {
        let toks: Vec<&str> = sent.iter().map(|s| s.as_ref()).collect();
        for pair in extract_pairs(&toks) {
            if seen.insert(pair.clone()) {
                out.push(pair);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn such_as_single() {
        let pairs = extract_pairs(&["tops", "such", "as", "jackets"]);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].hyponym, "jackets");
        assert_eq!(pairs[0].hypernym, "tops");
    }

    #[test]
    fn such_as_conjunction_list() {
        let pairs = extract_pairs(&["tops", "such", "as", "jackets", "and", "hoodies"]);
        let hyponyms: Vec<&str> = pairs.iter().map(|p| p.hyponym.as_str()).collect();
        assert!(hyponyms.contains(&"jackets"));
        assert!(hyponyms.contains(&"hoodies"));
    }

    #[test]
    fn is_a_and_kind_of() {
        let a = extract_pairs(&["jacket", "is", "a", "top"]);
        assert_eq!(a[0].hyponym, "jacket");
        assert_eq!(a[0].hypernym, "top");
        let b = extract_pairs(&["jacket", "is", "a", "kind", "of", "top"]);
        assert_eq!(b[0].hypernym, "top");
    }

    #[test]
    fn and_other() {
        let pairs = extract_pairs(&["buy", "grills", "and", "other", "cookware"]);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].hyponym, "grills");
        assert_eq!(pairs[0].hypernym, "cookware");
    }

    #[test]
    fn stop_words_do_not_become_terms() {
        let pairs = extract_pairs(&["the", "is", "a", "of"]);
        assert!(pairs.is_empty());
    }

    #[test]
    fn head_word_rule() {
        let heads: FxHashSet<String> = ["jacket".to_string(), "pants".to_string()]
            .into_iter()
            .collect();
        let pairs = head_word_pairs(["alpine-jacket", "cargo-pants", "snowboard"], &heads);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].hypernym, "jacket");
        assert_eq!(pairs[1].hypernym, "pants");
    }

    #[test]
    fn corpus_extraction_dedupes() {
        let sents: Vec<Vec<String>> = vec![
            vec!["tops", "such", "as", "jackets"]
                .into_iter()
                .map(String::from)
                .collect(),
            vec!["tops", "such", "as", "jackets"]
                .into_iter()
                .map(String::from)
                .collect(),
        ];
        let refs: Vec<&[String]> = sents.iter().map(|s| s.as_slice()).collect();
        let pairs = extract_from_corpus(refs.iter().copied());
        assert_eq!(pairs.len(), 1);
    }
}
