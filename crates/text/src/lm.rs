//! Interpolated trigram language model with perplexity scoring.
//!
//! Substitutes the paper's e-commerce BERT: the concept classifier (§5.2.2)
//! only consumes a *fluency* feature — the perplexity of the candidate
//! phrase. An interpolated n-gram model ranks fluent phrases below shuffled
//! or implausible ones on the same corpus, which is all the wide feature
//! needs.

use alicoco_nn::util::FxHashMap;

use crate::vocab::TokenId;

/// Sentence-boundary marker ids are synthesized internally; callers only
/// provide real token ids.
const BOS: u64 = u64::MAX - 1;
const EOS: u64 = u64::MAX;

#[inline]
fn key2(a: u64, b: u64) -> (u64, u64) {
    (a, b)
}

/// An interpolated trigram LM: `p = l3*p3 + l2*p2 + l1*p1 + l0*uniform`.
#[derive(Clone, Debug)]
pub struct NgramLm {
    unigram: FxHashMap<u64, u64>,
    bigram: FxHashMap<(u64, u64), u64>,
    trigram: FxHashMap<(u64, u64, u64), u64>,
    total_unigrams: u64,
    vocab_size: usize,
    /// Interpolation weights `(l3, l2, l1)`; the uniform floor gets the rest.
    pub lambdas: (f64, f64, f64),
}

impl NgramLm {
    /// Train on id-encoded sentences. `vocab_size` controls the uniform
    /// floor.
    pub fn train(sentences: &[Vec<TokenId>], vocab_size: usize) -> Self {
        let mut lm = NgramLm {
            unigram: FxHashMap::default(),
            bigram: FxHashMap::default(),
            trigram: FxHashMap::default(),
            total_unigrams: 0,
            vocab_size: vocab_size.max(1),
            lambdas: (0.5, 0.3, 0.15),
        };
        for sent in sentences {
            let padded: Vec<u64> = std::iter::once(BOS)
                .chain(std::iter::once(BOS))
                .chain(sent.iter().map(|&t| t as u64))
                .chain(std::iter::once(EOS))
                .collect();
            for w in padded.windows(3) {
                *lm.trigram.entry((w[0], w[1], w[2])).or_insert(0) += 1;
            }
            for w in padded.windows(2) {
                *lm.bigram.entry(key2(w[0], w[1])).or_insert(0) += 1;
            }
            for &t in &padded[2..] {
                *lm.unigram.entry(t).or_insert(0) += 1;
                lm.total_unigrams += 1;
            }
        }
        lm
    }

    fn p_unigram(&self, w: u64) -> f64 {
        if self.total_unigrams == 0 {
            return 0.0;
        }
        *self.unigram.get(&w).unwrap_or(&0) as f64 / self.total_unigrams as f64
    }

    fn p_bigram(&self, a: u64, w: u64) -> f64 {
        let ctx = *self.unigram.get(&a).unwrap_or(&0) + u64::from(a == BOS) * self.sentence_count();
        if ctx == 0 {
            return 0.0;
        }
        *self.bigram.get(&key2(a, w)).unwrap_or(&0) as f64 / ctx as f64
    }

    fn p_trigram(&self, a: u64, b: u64, w: u64) -> f64 {
        let ctx = *self.bigram.get(&key2(a, b)).unwrap_or(&0);
        if ctx == 0 {
            return 0.0;
        }
        *self.trigram.get(&(a, b, w)).unwrap_or(&0) as f64 / ctx as f64
    }

    fn sentence_count(&self) -> u64 {
        *self.unigram.get(&EOS).unwrap_or(&0)
    }

    fn p_interp(&self, a: u64, b: u64, w: u64) -> f64 {
        let (l3, l2, l1) = self.lambdas;
        let l0 = 1.0 - l3 - l2 - l1;
        l3 * self.p_trigram(a, b, w)
            + l2 * self.p_bigram(b, w)
            + l1 * self.p_unigram(w)
            + l0 / self.vocab_size as f64
    }

    /// Log-probability (natural log) of a sentence including the end marker.
    pub fn log_prob(&self, sent: &[TokenId]) -> f64 {
        let padded: Vec<u64> = std::iter::once(BOS)
            .chain(std::iter::once(BOS))
            .chain(sent.iter().map(|&t| t as u64))
            .chain(std::iter::once(EOS))
            .collect();
        padded
            .windows(3)
            .map(|w| self.p_interp(w[0], w[1], w[2]).max(1e-12).ln())
            .sum()
    }

    /// Perplexity of a sentence: `exp(-log_prob / (len + 1))`.
    pub fn perplexity(&self, sent: &[TokenId]) -> f64 {
        if sent.is_empty() {
            return self.vocab_size as f64;
        }
        (-self.log_prob(sent) / (sent.len() + 1) as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_toy() -> NgramLm {
        // "warm hat for kids" style sentences; word ids: 1 warm, 2 hat,
        // 3 for, 4 kids, 5 shoes.
        let mut sents = Vec::new();
        for _ in 0..50 {
            sents.push(vec![1, 2, 3, 4]);
            sents.push(vec![1, 5, 3, 4]);
        }
        NgramLm::train(&sents, 10)
    }

    #[test]
    fn seen_order_beats_shuffled_order() {
        let lm = train_toy();
        let fluent = lm.perplexity(&[1, 2, 3, 4]);
        let shuffled = lm.perplexity(&[4, 3, 2, 1]);
        assert!(
            fluent < shuffled,
            "fluent ppl {fluent} should be below shuffled {shuffled}"
        );
    }

    #[test]
    fn unseen_words_raise_perplexity() {
        let lm = train_toy();
        let seen = lm.perplexity(&[1, 2, 3, 4]);
        let unseen = lm.perplexity(&[7, 8, 9]);
        assert!(seen < unseen);
    }

    #[test]
    fn empty_sentence_has_finite_ppl() {
        let lm = train_toy();
        assert!(lm.perplexity(&[]).is_finite());
    }

    #[test]
    fn log_prob_is_negative_and_finite() {
        let lm = train_toy();
        let lp = lm.log_prob(&[1, 2, 3, 4]);
        assert!(lp.is_finite());
        assert!(lp < 0.0);
    }

    #[test]
    fn probabilities_interpolate_to_valid_range() {
        let lm = train_toy();
        let p = lm.p_interp(1, 2, 3);
        assert!(p > 0.0 && p <= 1.0);
    }
}
