//! Okapi BM25 retrieval index — the non-neural baseline of Table 6.

use std::sync::Arc;

use alicoco_nn::util::FxHashMap;
use alicoco_obs::{Counter, Registry};

use crate::vocab::TokenId;

/// Pre-registered handles for BM25 retrieval counters. Looked up once at
/// registration; the query path only touches atomics.
#[derive(Clone, Debug)]
pub struct Bm25Metrics {
    /// Queries answered (`bm25.queries`).
    pub queries: Arc<Counter>,
    /// Posting entries scanned across all query terms
    /// (`bm25.postings_scanned`).
    pub postings_scanned: Arc<Counter>,
    /// Candidate documents produced (`bm25.candidates`).
    pub candidates: Arc<Counter>,
}

impl Bm25Metrics {
    /// Register the `bm25.*` metrics in `reg` and return the handles.
    pub fn register(reg: &Registry) -> Self {
        Bm25Metrics {
            queries: reg.counter("bm25.queries"),
            postings_scanned: reg.counter("bm25.postings_scanned"),
            candidates: reg.counter("bm25.candidates"),
        }
    }
}

/// BM25 hyperparameters (standard defaults).
#[derive(Clone, Copy, Debug)]
pub struct Bm25Params {
    /// K1.
    pub k1: f64,
    /// B.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// An inverted index over id-encoded documents.
pub struct Bm25Index {
    params: Bm25Params,
    /// term -> list of (doc, term frequency).
    postings: FxHashMap<TokenId, Vec<(usize, u32)>>,
    doc_len: Vec<usize>,
    avg_len: f64,
    n_docs: usize,
    metrics: Option<Bm25Metrics>,
}

impl Bm25Index {
    /// Build from documents (each a token-id sequence).
    pub fn build(docs: &[Vec<TokenId>], params: Bm25Params) -> Self {
        let mut postings: FxHashMap<TokenId, Vec<(usize, u32)>> = FxHashMap::default();
        let mut doc_len = Vec::with_capacity(docs.len());
        for (di, doc) in docs.iter().enumerate() {
            doc_len.push(doc.len());
            let mut tf: FxHashMap<TokenId, u32> = FxHashMap::default();
            for &t in doc {
                *tf.entry(t).or_insert(0) += 1;
            }
            for (t, f) in tf {
                postings.entry(t).or_default().push((di, f));
            }
        }
        let n_docs = docs.len();
        let avg_len = if n_docs == 0 {
            0.0
        } else {
            doc_len.iter().sum::<usize>() as f64 / n_docs as f64
        };
        Bm25Index {
            params,
            postings,
            doc_len,
            avg_len,
            n_docs,
            metrics: None,
        }
    }

    /// Attach retrieval counters; queries from here on record into them.
    /// The uninstrumented path pays one branch per query.
    pub fn set_metrics(&mut self, metrics: Bm25Metrics) {
        self.metrics = Some(metrics);
    }

    /// Number of docs.
    pub fn num_docs(&self) -> usize {
        self.n_docs
    }

    fn idf(&self, term: TokenId) -> f64 {
        let df = self.postings.get(&term).map(Vec::len).unwrap_or(0) as f64;
        // BM25+-style floor keeps idf non-negative.
        (((self.n_docs as f64 - df + 0.5) / (df + 0.5)) + 1.0).ln()
    }

    /// BM25 score of a single document for a query.
    pub fn score(&self, query: &[TokenId], doc: usize) -> f64 {
        assert!(doc < self.n_docs, "doc id out of range");
        let mut s = 0.0;
        let dl = self.doc_len[doc] as f64;
        for &term in query {
            let Some(plist) = self.postings.get(&term) else {
                continue;
            };
            let Ok(pos) = plist.binary_search_by_key(&doc, |&(d, _)| d) else {
                continue;
            };
            let tf = plist[pos].1 as f64;
            let idf = self.idf(term);
            let denom = tf
                + self.params.k1
                    * (1.0 - self.params.b + self.params.b * dl / self.avg_len.max(1e-9));
            s += idf * tf * (self.params.k1 + 1.0) / denom;
        }
        s
    }

    /// Accumulated BM25 scores of every candidate document for a query —
    /// exactly the documents sharing at least one query term, in
    /// unspecified order. Callers rank (the serving layer keeps the best
    /// `k` in a bounded heap rather than sorting all candidates).
    pub fn candidate_scores(&self, query: &[TokenId]) -> Vec<(usize, f64)> {
        let mut acc: FxHashMap<usize, f64> = FxHashMap::default();
        let mut scanned = 0u64;
        let dl_norm = |doc: usize| {
            1.0 - self.params.b + self.params.b * self.doc_len[doc] as f64 / self.avg_len.max(1e-9)
        };
        for &term in query {
            let Some(plist) = self.postings.get(&term) else {
                continue;
            };
            scanned += plist.len() as u64;
            let idf = self.idf(term);
            for &(doc, tf) in plist {
                let tf = tf as f64;
                let score =
                    idf * tf * (self.params.k1 + 1.0) / (tf + self.params.k1 * dl_norm(doc));
                *acc.entry(doc).or_insert(0.0) += score;
            }
        }
        if let Some(m) = &self.metrics {
            m.queries.inc();
            m.postings_scanned.add(scanned);
            m.candidates.add(acc.len() as u64);
        }
        acc.into_iter().collect()
    }

    /// Top-`k` documents for a query, as `(doc, score)` sorted descending
    /// (ties broken by ascending doc id).
    pub fn search(&self, query: &[TokenId], k: usize) -> Vec<(usize, f64)> {
        let mut hits = self.candidate_scores(query);
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<TokenId>> {
        vec![
            vec![1, 2, 3],      // "outdoor barbecue grill"
            vec![4, 5, 6, 6],   // "red summer dress dress"
            vec![1, 7],         // "outdoor tent"
            vec![8, 9, 10, 11], // unrelated
        ]
    }

    #[test]
    fn exact_match_ranks_first() {
        let idx = Bm25Index::build(&docs(), Bm25Params::default());
        let hits = idx.search(&[1, 2], 4);
        assert_eq!(hits[0].0, 0, "doc 0 contains both query terms");
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let idx = Bm25Index::build(&docs(), Bm25Params::default());
        // Term 2 appears in 1 doc; term 1 in 2 docs. idf(2) > idf(1).
        assert!(idx.idf(2) > idx.idf(1));
    }

    #[test]
    fn score_and_search_agree() {
        let idx = Bm25Index::build(&docs(), Bm25Params::default());
        let q = vec![1, 2, 3];
        let hits = idx.search(&q, 4);
        for &(d, s) in &hits {
            assert!((idx.score(&q, d) - s).abs() < 1e-9);
        }
    }

    #[test]
    fn missing_terms_score_zero() {
        let idx = Bm25Index::build(&docs(), Bm25Params::default());
        assert_eq!(idx.score(&[999], 0), 0.0);
        assert!(idx.search(&[999], 3).is_empty());
    }

    #[test]
    fn metrics_count_query_work() {
        let reg = Registry::new();
        let mut idx = Bm25Index::build(&docs(), Bm25Params::default());
        idx.set_metrics(Bm25Metrics::register(&reg));
        let hits = idx.search(&[1, 2], 4);
        assert!(!hits.is_empty());
        assert_eq!(reg.counter("bm25.queries").get(), 1);
        // Term 1 posts in docs {0, 2}, term 2 in doc {0}: 3 postings, 2
        // distinct candidate docs.
        assert_eq!(reg.counter("bm25.postings_scanned").get(), 3);
        assert_eq!(reg.counter("bm25.candidates").get(), 2);
    }

    #[test]
    fn empty_index_is_safe() {
        let idx = Bm25Index::build(&[], Bm25Params::default());
        assert_eq!(idx.num_docs(), 0);
        assert!(idx.search(&[1], 3).is_empty());
    }
}
