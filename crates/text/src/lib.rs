#![warn(missing_docs)]
//! # alicoco-text
//!
//! Text-processing substrate for the AliCoCo reproduction. The paper's
//! construction pipeline leans on a stack of pre-existing NLP tooling —
//! GloVe embeddings, Doc2vec, a BERT perplexity model, AutoPhrase, Hearst
//! patterns, POS/NER taggers, BM25, and a max-matching segmenter for distant
//! supervision. This crate implements each of those from scratch:
//!
//! - [`vocab`] — string interning with counts,
//! - [`segment`] — DP max-matching segmentation and the perfect-match filter
//!   used to build distant-supervision data (§7.2),
//! - [`word2vec`] — SGNS embeddings (stand-in for pre-trained GloVe),
//! - [`doc2vec`] — PV-DBOW document vectors for gloss encoding (§5.2.2),
//! - [`lm`] — interpolated trigram LM whose perplexity replaces the BERT
//!   fluency feature (§5.2.2),
//! - [`phrase`] — quality-phrase mining replacing AutoPhrase (§5.2.1),
//! - [`hearst`] — pattern-based hypernym extraction (§4.2.1),
//! - [`tagger`] — lexicon POS/NER taggers feeding tag embeddings,
//! - [`bm25`] — the retrieval baseline of Table 6.

pub mod bm25;
pub mod doc2vec;
pub mod hearst;
pub mod lm;
pub mod phrase;
pub mod segment;
pub mod tagger;
pub mod vocab;
pub mod word2vec;

pub use vocab::{TokenId, Vocab, UNK};
