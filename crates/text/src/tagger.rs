//! Lexicon-based POS and NER taggers.
//!
//! The paper feeds POS-tag and NER-label embeddings into its deep models
//! (§5.2.2, §5.3.1, §6) using off-the-shelf taggers. Offline, we derive the
//! tags from lexicons (the synthetic world generator knows each token's
//! class) with suffix heuristics as fallback — the downstream models only
//! consume tag-id embeddings, so lexicon provenance is equivalent.

use alicoco_nn::util::FxHashMap;

/// A coarse part-of-speech tag set sufficient for feature embeddings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Noun.
    Noun,
    /// Adjective.
    Adjective,
    /// Verb.
    Verb,
    /// Preposition.
    Preposition,
    /// Other.
    Other,
}

impl PosTag {
    /// Count.
    pub const COUNT: usize = 5;

    /// Stable index.
    pub fn index(self) -> usize {
        match self {
            PosTag::Noun => 0,
            PosTag::Adjective => 1,
            PosTag::Verb => 2,
            PosTag::Preposition => 3,
            PosTag::Other => 4,
        }
    }
}

/// Lexicon-backed POS tagger with suffix heuristics.
#[derive(Clone, Debug, Default)]
pub struct PosTagger {
    lexicon: FxHashMap<String, PosTag>,
}

impl PosTagger {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert.
    pub fn insert(&mut self, token: &str, tag: PosTag) {
        self.lexicon.insert(token.to_string(), tag);
    }

    /// Tag.
    pub fn tag(&self, token: &str) -> PosTag {
        if let Some(&t) = self.lexicon.get(token) {
            return t;
        }
        // Suffix heuristics for out-of-lexicon tokens.
        const PREPOSITIONS: &[&str] = &["for", "in", "on", "with", "of", "to", "at", "from"];
        if PREPOSITIONS.contains(&token) {
            return PosTag::Preposition;
        }
        if token.ends_with("ing") || token.ends_with("ed") {
            return PosTag::Verb;
        }
        if token.ends_with("ful")
            || token.ends_with("ous")
            || token.ends_with("ive")
            || token.ends_with("able")
            || token.ends_with("al")
            || token.ends_with("y")
        {
            return PosTag::Adjective;
        }
        if token.chars().all(|c| c.is_alphabetic() || c == '-') && !token.is_empty() {
            return PosTag::Noun;
        }
        PosTag::Other
    }

    /// Tag a sequence, returning tag indices (for embedding lookup).
    pub fn tag_indices(&self, tokens: &[&str]) -> Vec<usize> {
        tokens.iter().map(|t| self.tag(t).index()).collect()
    }
}

/// Lexicon-backed named-entity labeler: maps tokens to class ids (e.g. the
/// taxonomy's 20 domains), with `0` reserved for "outside".
#[derive(Clone, Debug, Default)]
pub struct NerTagger {
    lexicon: FxHashMap<String, usize>,
    num_labels: usize,
}

impl NerTagger {
    /// `num_labels` counts real classes; emitted indices are in
    /// `0..=num_labels` where `0` = outside.
    pub fn new(num_labels: usize) -> Self {
        NerTagger {
            lexicon: FxHashMap::default(),
            num_labels,
        }
    }

    /// Insert a token with a 1-based class id.
    ///
    /// # Panics
    /// Panics if `class_id` is 0 or exceeds `num_labels`.
    pub fn insert(&mut self, token: &str, class_id: usize) {
        assert!(
            class_id >= 1 && class_id <= self.num_labels,
            "class id out of range"
        );
        self.lexicon.insert(token.to_string(), class_id);
    }

    /// Label index of a token (`0` when unknown).
    pub fn tag(&self, token: &str) -> usize {
        self.lexicon.get(token).copied().unwrap_or(0)
    }

    /// Tag indices.
    pub fn tag_indices(&self, tokens: &[&str]) -> Vec<usize> {
        tokens.iter().map(|t| self.tag(t)).collect()
    }

    /// Number of distinct emitted indices (`num_labels + 1` for outside).
    pub fn num_indices(&self) -> usize {
        self.num_labels + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_overrides_heuristics() {
        let mut t = PosTagger::new();
        t.insert("swimming", PosTag::Noun); // heuristics would say Verb
        assert_eq!(t.tag("swimming"), PosTag::Noun);
        assert_eq!(t.tag("running"), PosTag::Verb);
    }

    #[test]
    fn suffix_heuristics() {
        let t = PosTagger::new();
        assert_eq!(t.tag("waterproof"), PosTag::Noun);
        assert_eq!(t.tag("colorful"), PosTag::Adjective);
        assert_eq!(t.tag("cozy"), PosTag::Adjective);
        assert_eq!(t.tag("for"), PosTag::Preposition);
        assert_eq!(t.tag("123"), PosTag::Other);
    }

    #[test]
    fn tag_indices_align() {
        let t = PosTagger::new();
        let idx = t.tag_indices(&["warm", "hat", "for", "traveling"]);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx[2], PosTag::Preposition.index());
        assert!(idx.iter().all(|&i| i < PosTag::COUNT));
    }

    #[test]
    fn ner_unknown_is_outside() {
        let mut n = NerTagger::new(3);
        n.insert("nike", 2);
        assert_eq!(n.tag("nike"), 2);
        assert_eq!(n.tag("zzz"), 0);
        assert_eq!(n.num_indices(), 4);
    }

    #[test]
    #[should_panic(expected = "class id out of range")]
    fn ner_rejects_zero_class() {
        let mut n = NerTagger::new(3);
        n.insert("x", 0);
    }
}
