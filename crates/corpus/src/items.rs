//! Synthetic item generation.
//!
//! Items are the smallest selling units (§6). Each synthetic item has a
//! category leaf plus CPV-style attributes drawn from the compatibility
//! model, and a title assembled the way merchants write them: brand +
//! attributes + category head, with occasional promotional noise.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::world::World;

/// A generated item with its ground-truth attributes.
#[derive(Clone, Debug)]
pub struct ItemSpec {
    /// Identifier.
    pub id: usize,
    /// Category node id (always a leaf).
    pub category: usize,
    /// Brand.
    pub brand: String,
    /// Color.
    pub color: Option<String>,
    /// Material.
    pub material: Option<String>,
    /// Functions.
    pub functions: Vec<String>,
    /// Style.
    pub style: Option<String>,
    /// Audience.
    pub audience: Option<String>,
    /// Title tokens as shown to models.
    pub title: Vec<String>,
}

const PROMO_NOISE: &[&str] = &[
    "hot",
    "sale",
    "free-shipping",
    "2026",
    "official",
    "flagship",
    "authentic",
    "quality",
];

const STYLES_FOR_ITEMS: &[&str] = &[
    "casual",
    "british-style",
    "bohemian",
    "vintage",
    "minimalist",
    "sporty",
    "elegant",
    "street",
];

/// Generate `n` items against the world's compatibility model.
pub fn generate_items<R: Rng>(world: &World, n: usize, rng: &mut R) -> Vec<ItemSpec> {
    let leaves = world.tree.leaves();
    let brands = world.lexicon.terms(crate::domain::Domain::Brand);
    let colors = crate::lexicon::COLORS;
    let audiences = crate::lexicon::AUDIENCES;
    let mut items = Vec::with_capacity(n);
    for id in 0..n {
        let category = leaves[rng.gen_range(0..leaves.len())];
        let brand = brands[rng.gen_range(0..brands.len())].clone();
        let color = (world.cat_colored(category) && rng.gen_bool(0.8))
            .then(|| colors[rng.gen_range(0..colors.len())].to_string());
        let materials = world.cat_materials(category);
        let material = (!materials.is_empty() && rng.gen_bool(0.6))
            .then(|| materials[rng.gen_range(0..materials.len())].to_string());
        let functions_pool = world.cat_functions(category);
        let mut functions: Vec<String> = Vec::new();
        if !functions_pool.is_empty() {
            let k = match rng.gen_range(0..10) {
                0..=3 => 0,
                4..=7 => 1,
                _ => 2usize.min(functions_pool.len()),
            };
            let mut pool: Vec<&str> = functions_pool.to_vec();
            pool.shuffle(rng);
            functions.extend(pool.into_iter().take(k).map(String::from));
        }
        let style = (world.cat_styled(category) && rng.gen_bool(0.4))
            .then(|| STYLES_FOR_ITEMS[rng.gen_range(0..STYLES_FOR_ITEMS.len())].to_string());
        let audience = (world.cat_audienced(category) && rng.gen_bool(0.35))
            .then(|| audiences[rng.gen_range(0..audiences.len())].to_string());

        let mut title: Vec<String> = Vec::with_capacity(10);
        title.push(brand.clone());
        if let Some(c) = &color {
            title.push(c.clone());
        }
        if let Some(m) = &material {
            title.push(m.clone());
        }
        for f in &functions {
            title.push(f.clone());
        }
        if let Some(s) = &style {
            title.push(s.clone());
        }
        // Category name may be multi-token ("trench coat").
        title.extend(world.tree.name(category).split(' ').map(String::from));
        if let Some(a) = &audience {
            title.push("for".into());
            title.push(a.clone());
        }
        if rng.gen_bool(0.5) {
            title.push(PROMO_NOISE[rng.gen_range(0..PROMO_NOISE.len())].to_string());
        }
        if rng.gen_bool(0.2) {
            title.push(PROMO_NOISE[rng.gen_range(0..PROMO_NOISE.len())].to_string());
        }
        items.push(ItemSpec {
            id,
            category,
            brand,
            color,
            material,
            functions,
            style,
            audience,
            title,
        });
    }
    items
}

impl ItemSpec {
    /// Does the item's category equal `cat` or descend from it?
    pub fn in_category(&self, world: &World, cat: usize) -> bool {
        self.category == cat || world.tree.is_ancestor(cat, self.category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use alicoco_nn::util::seeded_rng;

    #[test]
    fn items_have_valid_attributes() {
        let w = World::generate(WorldConfig::tiny());
        let items = generate_items(&w, 200, &mut seeded_rng(1));
        assert_eq!(items.len(), 200);
        for it in &items {
            assert!(
                w.tree.node(it.category).children.is_empty(),
                "category must be a leaf"
            );
            if let Some(m) = &it.material {
                assert!(
                    w.material_cat_ok(m, it.category),
                    "material {m} incompatible"
                );
            }
            for f in &it.functions {
                assert!(w.fn_cat_ok(f, it.category), "function {f} incompatible");
            }
            assert!(!it.title.is_empty());
            assert!(it.title.contains(&it.brand));
        }
    }

    #[test]
    fn titles_include_category_tokens() {
        let w = World::generate(WorldConfig::tiny());
        let items = generate_items(&w, 100, &mut seeded_rng(2));
        for it in &items {
            for tok in w.tree.name(it.category).split(' ') {
                assert!(
                    it.title.iter().any(|t| t == tok),
                    "title missing category token {tok}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = World::generate(WorldConfig::tiny());
        let a = generate_items(&w, 50, &mut seeded_rng(3));
        let b = generate_items(&w, 50, &mut seeded_rng(3));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.title, y.title);
        }
    }

    #[test]
    fn in_category_respects_hierarchy() {
        let w = World::generate(WorldConfig::tiny());
        let items = generate_items(&w, 300, &mut seeded_rng(4));
        let cookware = w.tree.find("cookware").unwrap();
        let any_cookware = items.iter().any(|it| it.in_category(&w, cookware));
        assert!(any_cookware, "no cookware item generated out of 300");
        for it in &items {
            assert!(it.in_category(&w, 0), "every item descends from root");
        }
    }
}
