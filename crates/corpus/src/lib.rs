#![warn(missing_docs)]
//! # alicoco-corpus
//!
//! The synthetic e-commerce world that substitutes Alibaba's proprietary
//! data in this reproduction (see DESIGN.md §2 for the substitution table).
//! It provides, all seeded and deterministic:
//!
//! - the 20-domain taxonomy skeleton ([`domain`], [`taxonomy`]) and the
//!   primitive-concept lexicons ([`lexicon`]),
//! - a compatibility ground truth ([`world`]) defining which attribute /
//!   category / event / audience combinations are plausible, which items a
//!   shopping scenario needs (including the paper's "semantic drift":
//!   charcoal is barbecue gear but unrelated to "outdoor"),
//! - items with CPV-style attributes and merchant-style titles ([`items`]),
//! - good and bad e-commerce concept candidates in the three defect flavours
//!   the paper's criteria reject ([`concepts`]),
//! - four text corpora — queries, titles, reviews, shopping guides —
//!   ([`corpus`]),
//! - a gloss knowledge base standing in for Wikipedia ([`gloss`]),
//! - a labeling [`oracle`] that answers annotation queries from ground truth
//!   with per-query accounting and optional noise.

pub mod clicks;
pub mod concepts;
pub mod corpus;
pub mod domain;
pub mod gloss;
pub mod items;
pub mod lexicon;
pub mod oracle;
pub mod scale;
pub mod taxonomy;
pub mod world;

pub use clicks::{pairs_from_log, simulate_clicks, ClickConfig, Impression};
pub use concepts::{
    concept_relevant_item, generate_concepts, judge_tokens, ConceptSpec, Defect, Slot,
};
pub use corpus::{generate_corpora, Corpora};
pub use domain::Domain;
pub use gloss::GlossKb;
pub use items::{generate_items, ItemSpec};
pub use oracle::Oracle;
pub use taxonomy::CategoryTree;
pub use world::{World, WorldConfig, EVENT_PROFILES};

/// Everything the construction pipeline consumes, generated in one call.
pub struct Dataset {
    /// World.
    pub world: World,
    /// Items.
    pub items: Vec<ItemSpec>,
    /// Concepts.
    pub concepts: Vec<ConceptSpec>,
    /// Corpora.
    pub corpora: Corpora,
    /// Glosses.
    pub glosses: GlossKb,
}

impl Dataset {
    /// Generate the full dataset for a configuration (deterministic per
    /// `config.seed`).
    pub fn generate(config: WorldConfig) -> Self {
        let world = World::generate(config.clone());
        let mut rng =
            alicoco_nn::util::seeded_rng(config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let items = generate_items(&world, config.num_items, &mut rng);
        let concepts = generate_concepts(
            &world,
            config.num_good_concepts,
            config.num_bad_concepts,
            &mut rng,
        );
        let corpora = generate_corpora(&world, &items, &concepts, &mut rng);
        let glosses = GlossKb::build(&world);
        Dataset {
            world,
            items,
            concepts,
            corpora,
            glosses,
        }
    }

    /// Convenience: the tiny configuration used across unit tests.
    pub fn tiny() -> Self {
        Self::generate(WorldConfig::tiny())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_assembles_consistently() {
        let ds = Dataset::tiny();
        assert_eq!(ds.items.len(), ds.world.config.num_items);
        assert_eq!(
            ds.concepts.iter().filter(|c| c.good).count(),
            ds.world.config.num_good_concepts
        );
        assert!(ds.glosses.len() > 100);
        assert!(ds.corpora.total_sentences() > 500);
    }

    #[test]
    fn every_good_concept_judged_good_by_oracle() {
        let ds = Dataset::tiny();
        let oracle = Oracle::new(&ds.world);
        for c in ds.concepts.iter().filter(|c| c.good) {
            assert!(
                oracle.label_concept(&c.tokens),
                "oracle rejects {:?}",
                c.text()
            );
        }
    }

    #[test]
    fn most_good_concepts_have_relevant_items() {
        let ds = Dataset::tiny();
        let mut with_items = 0;
        let mut total = 0;
        for c in ds.concepts.iter().filter(|c| c.good) {
            total += 1;
            if ds
                .items
                .iter()
                .any(|it| concept_relevant_item(&ds.world, c, it))
            {
                with_items += 1;
            }
        }
        assert!(
            with_items as f64 / total as f64 > 0.45,
            "only {with_items}/{total} good concepts have any relevant item"
        );
    }
}
