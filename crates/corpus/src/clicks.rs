//! Click-log simulation — the stand-in for "user click logs of the running
//! application on Taobao" (§7.6), which supply the positive concept–item
//! pairs the matching model trains on.
//!
//! The simulator shows concept cards with ranked item lists and samples
//! clicks with an examination model: users click relevant items with high
//! probability, irrelevant ones occasionally (noise), and attention decays
//! with display position (position bias) — so the resulting log is a noisy,
//! biased view of true relevance, as real logs are.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::concepts::{concept_relevant_item, ConceptSpec};
use crate::items::ItemSpec;
use crate::world::World;

/// One impression of one item on a concept card.
#[derive(Clone, Debug, PartialEq)]
pub struct Impression {
    /// Index into the concept list passed to the simulator.
    pub concept: usize,
    /// Index into the item list.
    pub item: usize,
    /// Display slot (0 = top).
    pub position: usize,
    /// Clicked.
    pub clicked: bool,
}

/// Click-model parameters.
#[derive(Clone, Debug)]
pub struct ClickConfig {
    /// Sessions (card impressions) to simulate.
    pub sessions: usize,
    /// Items displayed per card.
    pub slots: usize,
    /// P(click | examined, relevant).
    pub p_click_relevant: f64,
    /// P(click | examined, irrelevant) — curiosity noise.
    pub p_click_irrelevant: f64,
    /// Examination decay per position: `P(examined at k) = decay^k`.
    pub position_decay: f64,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for ClickConfig {
    fn default() -> Self {
        ClickConfig {
            sessions: 400,
            slots: 8,
            p_click_relevant: 0.7,
            p_click_irrelevant: 0.05,
            position_decay: 0.85,
            seed: 777,
        }
    }
}

/// Simulate a click log over concept cards.
///
/// Cards show a mix of relevant and random items (as a cold-start system
/// would), shuffled; clicks follow the examination model above.
pub fn simulate_clicks(
    world: &World,
    concepts: &[ConceptSpec],
    items: &[ItemSpec],
    cfg: &ClickConfig,
) -> Vec<Impression> {
    assert!(!items.is_empty(), "click simulation needs items");
    let good: Vec<usize> = (0..concepts.len()).filter(|&i| concepts[i].good).collect();
    if good.is_empty() {
        return Vec::new();
    }
    let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
    let mut log = Vec::with_capacity(cfg.sessions * cfg.slots);
    for _ in 0..cfg.sessions {
        let ci = good[rng.gen_range(0..good.len())];
        let concept = &concepts[ci];
        // Assemble the card: up to half relevant (if available), rest random.
        let mut card: Vec<usize> = Vec::with_capacity(cfg.slots);
        let relevant: Vec<usize> = (0..items.len())
            .filter(|&ii| concept_relevant_item(world, concept, &items[ii]))
            .collect();
        let mut rel_pool = relevant.clone();
        rel_pool.shuffle(&mut rng);
        card.extend(rel_pool.into_iter().take(cfg.slots / 2));
        while card.len() < cfg.slots {
            card.push(rng.gen_range(0..items.len()));
        }
        card.shuffle(&mut rng);
        for (position, &ii) in card.iter().enumerate() {
            let examined = rng.gen_bool(cfg.position_decay.powi(position as i32));
            let relevant = concept_relevant_item(world, concept, &items[ii]);
            let p = if relevant {
                cfg.p_click_relevant
            } else {
                cfg.p_click_irrelevant
            };
            let clicked = examined && rng.gen_bool(p);
            log.push(Impression {
                concept: ci,
                item: ii,
                position,
                clicked,
            });
        }
    }
    log
}

/// Aggregate a click log into `(concept, item)` training pairs: positives
/// are clicked pairs; negatives are impressed-but-never-clicked pairs
/// (the standard click-log heuristic).
pub fn pairs_from_log(log: &[Impression]) -> Vec<(usize, usize, f32)> {
    use alicoco_nn::util::FxHashMap;
    let mut agg: FxHashMap<(usize, usize), (u32, u32)> = FxHashMap::default();
    for imp in log {
        let e = agg.entry((imp.concept, imp.item)).or_insert((0, 0));
        e.0 += 1;
        if imp.clicked {
            e.1 += 1;
        }
    }
    let mut out: Vec<(usize, usize, f32)> = agg
        .into_iter()
        .map(|((c, i), (_shown, clicks))| (c, i, if clicks > 0 { 1.0 } else { 0.0 }))
        .collect();
    out.sort_unstable_by_key(|a| (a.0, a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::generate_items;
    use crate::world::WorldConfig;
    use crate::Dataset;

    fn setup() -> (crate::World, Vec<ConceptSpec>, Vec<ItemSpec>) {
        let ds = Dataset::tiny();
        let mut rng = alicoco_nn::util::seeded_rng(3);
        let items = generate_items(&ds.world, 300, &mut rng);
        (World::generate(WorldConfig::tiny()), ds.concepts, items)
    }
    use crate::world::World;

    #[test]
    fn click_rate_correlates_with_relevance() {
        let (world, concepts, items) = setup();
        let log = simulate_clicks(&world, &concepts, &items, &ClickConfig::default());
        assert!(!log.is_empty());
        let (mut rel_clicks, mut rel_shown) = (0u32, 0u32);
        let (mut irr_clicks, mut irr_shown) = (0u32, 0u32);
        for imp in &log {
            let rel = concept_relevant_item(&world, &concepts[imp.concept], &items[imp.item]);
            if rel {
                rel_shown += 1;
                rel_clicks += imp.clicked as u32;
            } else {
                irr_shown += 1;
                irr_clicks += imp.clicked as u32;
            }
        }
        assert!(rel_shown > 0 && irr_shown > 0);
        let rel_ctr = rel_clicks as f64 / rel_shown as f64;
        let irr_ctr = irr_clicks as f64 / irr_shown as f64;
        assert!(
            rel_ctr > irr_ctr * 3.0,
            "CTR gap too small: relevant {rel_ctr:.3} vs irrelevant {irr_ctr:.3}"
        );
    }

    #[test]
    fn position_bias_lowers_tail_ctr() {
        let (world, concepts, items) = setup();
        let cfg = ClickConfig {
            sessions: 1500,
            position_decay: 0.6,
            ..Default::default()
        };
        let log = simulate_clicks(&world, &concepts, &items, &cfg);
        let ctr_at = |pos: usize| {
            let (mut c, mut n) = (0u32, 0u32);
            for imp in log.iter().filter(|i| i.position == pos) {
                n += 1;
                c += imp.clicked as u32;
            }
            c as f64 / n.max(1) as f64
        };
        assert!(
            ctr_at(0) > ctr_at(cfg.slots - 1),
            "position bias missing: top {} vs bottom {}",
            ctr_at(0),
            ctr_at(cfg.slots - 1)
        );
    }

    #[test]
    fn pairs_from_log_deduplicates() {
        let log = vec![
            Impression {
                concept: 1,
                item: 2,
                position: 0,
                clicked: false,
            },
            Impression {
                concept: 1,
                item: 2,
                position: 1,
                clicked: true,
            },
            Impression {
                concept: 1,
                item: 3,
                position: 2,
                clicked: false,
            },
        ];
        let pairs = pairs_from_log(&log);
        assert_eq!(pairs, vec![(1, 2, 1.0), (1, 3, 0.0)]);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (world, concepts, items) = setup();
        let a = simulate_clicks(&world, &concepts, &items, &ClickConfig::default());
        let b = simulate_clicks(&world, &concepts, &items, &ClickConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_concepts_produce_empty_log() {
        let (world, _, items) = setup();
        let log = simulate_clicks(&world, &[], &items, &ClickConfig::default());
        assert!(log.is_empty());
    }
}
