//! Text corpora of the synthetic world: search queries, item titles,
//! user-written reviews and shopping guides (§4.1, §5.2.1).
//!
//! Reviews tie categories to the events/locations they serve (feeding
//! word2vec and projection learning); guides carry Hearst patterns and
//! event-needs sentences (feeding pattern-based hypernym discovery and
//! concept–item evidence).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::concepts::ConceptSpec;
use crate::items::ItemSpec;
use crate::world::World;

/// The four corpora, each a list of token sequences.
#[derive(Clone, Debug, Default)]
pub struct Corpora {
    /// Queries.
    pub queries: Vec<Vec<String>>,
    /// Titles.
    pub titles: Vec<Vec<String>>,
    /// Reviews.
    pub reviews: Vec<Vec<String>>,
    /// Guides.
    pub guides: Vec<Vec<String>>,
}

impl Corpora {
    /// Iterate every sentence across the four corpora.
    pub fn all_sentences(&self) -> impl Iterator<Item = &Vec<String>> {
        self.queries
            .iter()
            .chain(self.titles.iter())
            .chain(self.reviews.iter())
            .chain(self.guides.iter())
    }

    /// Total sentences.
    pub fn total_sentences(&self) -> usize {
        self.queries.len() + self.titles.len() + self.reviews.len() + self.guides.len()
    }
}

/// In guide prose, multi-token names are hyphen-joined so pattern matchers
/// treat them as units (the analogue of Chinese words being atomic).
fn guide_token(name: &str) -> String {
    name.replace(' ', "-")
}

/// Generate all four corpora.
pub fn generate_corpora<R: Rng>(
    world: &World,
    items: &[ItemSpec],
    concepts: &[ConceptSpec],
    rng: &mut R,
) -> Corpora {
    let cfg = &world.config;
    let mut c = Corpora {
        titles: items.iter().map(|it| it.title.clone()).collect(),
        ..Default::default()
    };
    let good: Vec<&ConceptSpec> = concepts.iter().filter(|x| x.good).collect();

    // ---- queries --------------------------------------------------------
    let leaves = world.tree.leaves();
    for _ in 0..cfg.num_queries {
        let q: Vec<String> = match rng.gen_range(0..8u32) {
            0 => {
                let cat = leaves[rng.gen_range(0..leaves.len())];
                world.tree.name(cat).split(' ').map(String::from).collect()
            }
            1 => {
                let cat = leaves[rng.gen_range(0..leaves.len())];
                let color = crate::lexicon::COLORS[rng.gen_range(0..crate::lexicon::COLORS.len())];
                std::iter::once(color.to_string())
                    .chain(world.tree.name(cat).split(' ').map(String::from))
                    .collect()
            }
            2 => {
                let cat = leaves[rng.gen_range(0..leaves.len())];
                let funcs = world.cat_functions(cat);
                let f = if funcs.is_empty() {
                    "new"
                } else {
                    funcs[rng.gen_range(0..funcs.len())]
                };
                std::iter::once(f.to_string())
                    .chain(world.tree.name(cat).split(' ').map(String::from))
                    .collect()
            }
            3 => {
                let cat = leaves[rng.gen_range(0..leaves.len())];
                let a =
                    crate::lexicon::AUDIENCES[rng.gen_range(0..crate::lexicon::AUDIENCES.len())];
                world
                    .tree
                    .name(cat)
                    .split(' ')
                    .map(String::from)
                    .chain(["for".to_string(), a.to_string()])
                    .collect()
            }
            4 => {
                let e = &world.events()[rng.gen_range(0..world.events().len())];
                vec![e.event.to_string()]
            }
            5 => {
                let e = &world.events()[rng.gen_range(0..world.events().len())];
                let l = e.locations[rng.gen_range(0..e.locations.len())];
                vec![l.to_string(), e.event.to_string()]
            }
            6 => {
                let brands = world.lexicon.terms(crate::domain::Domain::Brand);
                let cat = leaves[rng.gen_range(0..leaves.len())];
                std::iter::once(brands[rng.gen_range(0..brands.len())].clone())
                    .chain(world.tree.name(cat).split(' ').map(String::from))
                    .collect()
            }
            _ => {
                if good.is_empty() {
                    vec!["sale".to_string()]
                } else {
                    good[rng.gen_range(0..good.len())].tokens.clone()
                }
            }
        };
        // New-trend noise (§7.1: the paper re-measures coverage daily to
        // catch new trends): a fraction of queries carry a token the
        // ontology has never seen.
        let mut q = q;
        if rng.gen_bool(0.12) {
            q.push(format!("trend-{}", rng.gen_range(0..500u32)));
        }
        c.queries.push(q);
    }

    // ---- reviews ---------------------------------------------------------
    for _ in 0..cfg.num_reviews {
        let it = &items[rng.gen_range(0..items.len())];
        let cat_tokens: Vec<String> = world
            .tree
            .name(it.category)
            .split(' ')
            .map(String::from)
            .collect();
        // Pick an event this item serves, if any.
        let serving: Vec<&crate::world::EventProfile> = world
            .events()
            .iter()
            .filter(|e| {
                world.event_needs(e.event, it.category) || world.cat_event_ok(it.category, e.event)
            })
            .collect();
        let mut sent: Vec<String> = Vec::with_capacity(16);
        match rng.gen_range(0..3u32) {
            0 if !serving.is_empty() => {
                let e = serving[rng.gen_range(0..serving.len())];
                let l = e.locations[rng.gen_range(0..e.locations.len())];
                sent.push("these".into());
                sent.extend(cat_tokens.clone());
                if let Some(f) = it.functions.first() {
                    sent.push("are".into());
                    sent.push(f.clone());
                    sent.push("and".into());
                }
                sent.extend([
                    "great".into(),
                    "for".into(),
                    e.event.to_string(),
                    "in".into(),
                    "the".into(),
                    l.to_string(),
                ]);
            }
            1 if !serving.is_empty() => {
                let e = serving[rng.gen_range(0..serving.len())];
                sent.extend(["i".into(), "bought".into(), "this".into()]);
                if let Some(col) = &it.color {
                    sent.push(col.clone());
                }
                sent.extend(cat_tokens.clone());
                sent.extend(["for".into(), e.event.to_string()]);
                if let Some(f) = it.functions.first() {
                    sent.extend(["it".into(), "is".into(), f.clone()]);
                }
            }
            _ => {
                sent.push("the".into());
                if let Some(m) = &it.material {
                    sent.push(m.clone());
                }
                sent.extend(cat_tokens.clone());
                sent.extend([
                    "from".into(),
                    it.brand.clone(),
                    "feels".into(),
                    "premium".into(),
                ]);
            }
        }
        c.reviews.push(sent);
    }

    // ---- guides ----------------------------------------------------------
    let edges = world.tree.is_a_edges();
    for _ in 0..cfg.num_guides {
        let sent: Vec<String> = match rng.gen_range(0..5u32) {
            0 => {
                // "<parent> such as <c1> and <c2>"
                let &(child, parent) = &edges[rng.gen_range(0..edges.len())];
                let siblings = &world.tree.node(parent).children;
                let other = siblings[rng.gen_range(0..siblings.len())];
                let mut s = vec![
                    guide_token(world.tree.name(parent)),
                    "such".into(),
                    "as".into(),
                    guide_token(world.tree.name(child)),
                ];
                if other != child {
                    s.push("and".into());
                    s.push(guide_token(world.tree.name(other)));
                }
                s
            }
            1 => {
                let &(child, parent) = &edges[rng.gen_range(0..edges.len())];
                vec![
                    guide_token(world.tree.name(child)),
                    "is".into(),
                    "a".into(),
                    "kind".into(),
                    "of".into(),
                    guide_token(world.tree.name(parent)),
                ]
            }
            2 => {
                let &(child, parent) = &edges[rng.gen_range(0..edges.len())];
                let mut s = vec![
                    "buy".into(),
                    guide_token(world.tree.name(child)),
                    "and".into(),
                    "other".into(),
                    guide_token(world.tree.name(parent)),
                ];
                if rng.gen_bool(0.3) {
                    s.push("today".into());
                }
                s
            }
            3 => {
                // "for <event> you need <n1> , <n2> and <n3>"
                let e = &world.events()[rng.gen_range(0..world.events().len())];
                let mut needs: Vec<&str> = e.needs.to_vec();
                needs.shuffle(rng);
                let picks: Vec<String> = needs.iter().take(3).map(|n| guide_token(n)).collect();
                let mut s = vec![
                    "for".into(),
                    e.event.to_string(),
                    "you".into(),
                    "need".into(),
                ];
                for (i, p) in picks.iter().enumerate() {
                    if i > 0 {
                        s.push(if i + 1 == picks.len() {
                            "and".into()
                        } else {
                            ",".into()
                        });
                    }
                    s.push(p.clone());
                }
                s
            }
            _ => {
                // Contextual prose mentioning a good concept and a need.
                if good.is_empty() {
                    vec!["shop".into(), "smart".into()]
                } else {
                    let g = good[rng.gen_range(0..good.len())];
                    let mut s = vec!["our".into(), "guide".into(), "to".into()];
                    s.extend(g.tokens.clone());
                    s
                }
            }
        };
        c.guides.push(sent);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::generate_concepts;
    use crate::items::generate_items;
    use crate::world::WorldConfig;
    use alicoco_nn::util::seeded_rng;

    fn build() -> (World, Corpora) {
        let w = World::generate(WorldConfig::tiny());
        let mut rng = seeded_rng(3);
        let items = generate_items(&w, 200, &mut rng);
        let concepts = generate_concepts(&w, 60, 60, &mut rng);
        let c = generate_corpora(&w, &items, &concepts, &mut rng);
        (w, c)
    }

    #[test]
    fn corpora_have_configured_sizes() {
        let (w, c) = build();
        assert_eq!(c.queries.len(), w.config.num_queries);
        assert_eq!(c.reviews.len(), w.config.num_reviews);
        assert_eq!(c.guides.len(), w.config.num_guides);
        assert_eq!(c.titles.len(), 200);
        assert_eq!(c.total_sentences(), c.all_sentences().count());
    }

    #[test]
    fn guides_contain_hearst_patterns() {
        let (_, c) = build();
        let refs: Vec<&[String]> = c.guides.iter().map(|s| s.as_slice()).collect();
        let pairs = alicoco_text::hearst::extract_from_corpus(refs.iter().copied());
        assert!(
            pairs.len() > 20,
            "only {} hearst pairs extracted",
            pairs.len()
        );
    }

    #[test]
    fn hearst_pairs_are_mostly_true_edges() {
        let (w, c) = build();
        let refs: Vec<&[String]> = c.guides.iter().map(|s| s.as_slice()).collect();
        let pairs = alicoco_text::hearst::extract_from_corpus(refs.iter().copied());
        let resolve = |name: &str| {
            w.category(name)
                .or_else(|| w.category(&name.replace('-', " ")))
        };
        let mut checked = 0;
        let mut correct = 0;
        for p in &pairs {
            if let (Some(c), Some(h)) = (resolve(&p.hyponym), resolve(&p.hypernym)) {
                checked += 1;
                if w.tree.is_ancestor(h, c) {
                    correct += 1;
                }
            }
        }
        assert!(checked > 10);
        assert!(
            correct as f64 / checked as f64 > 0.9,
            "hearst precision too low: {correct}/{checked}"
        );
    }

    #[test]
    fn reviews_mention_events_for_needed_items() {
        let (_, c) = build();
        let mentions_barbecue = c
            .reviews
            .iter()
            .filter(|s| s.iter().any(|t| t == "barbecue"))
            .count();
        assert!(mentions_barbecue > 0, "no review ever mentions barbecue");
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = build();
        let (_, b) = build();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.guides, b.guides);
    }
}
