//! Synthetic gloss knowledge base — the stand-in for Wikipedia.
//!
//! The paper links concept words to Wikipedia and encodes each article's
//! gloss with Doc2vec (§5.2.2). Our glosses are short bags of related words
//! derived from the compatibility ground truth, e.g. the gloss of
//! "mid-autumn-festival" mentions "moon cake" — exactly the relatedness that
//! lets knowledge bridge the concept–item gap in Table 6's case study.

use alicoco_nn::util::FxHashMap;

use crate::domain::Domain;
use crate::world::{World, GIFT_NEEDS, GIFT_OCCASIONS};

/// Gloss documents keyed by surface form.
#[derive(Clone, Debug, Default)]
pub struct GlossKb {
    glosses: FxHashMap<String, Vec<String>>,
}

impl GlossKb {
    /// Build glosses for every category node, lexicon term and event.
    pub fn build(world: &World) -> Self {
        let mut kb = GlossKb::default();
        let tree = &world.tree;

        // Category nodes.
        for id in tree.ids() {
            let name = tree.name(id);
            let mut g: Vec<String> = name.split(' ').map(String::from).collect();
            if let Some(parent) = tree.node(id).parent {
                g.push("a".into());
                g.push("kind".into());
                g.push("of".into());
                g.extend(tree.name(parent).split(' ').map(String::from));
            }
            g.push("product".into());
            if let Some(branch) = tree.top_branch(id) {
                g.push(tree.name(branch).to_string());
            }
            for f in world.cat_functions(id).iter().take(3) {
                g.push(f.to_string());
            }
            // Events that need this category (ties "moon cake" to
            // "mid-autumn-festival" via the gift table below, and "charcoal"
            // to "barbecue" here).
            for e in world.events() {
                if world.event_needs(e.event, id) {
                    g.push(e.event.to_string());
                }
            }
            kb.glosses.insert(name.to_string(), g);
        }

        // Events.
        for e in world.events() {
            let mut g: Vec<String> = vec![e.event.to_string(), "event".into(), "activity".into()];
            g.extend(e.locations.iter().map(|s| s.to_string()));
            for n in e.needs {
                g.extend(n.split(' ').map(String::from));
            }
            g.extend(e.functions.iter().map(|s| s.to_string()));
            kb.glosses.insert(e.event.to_string(), g);
        }

        // Functions: which branches/leaves they fit.
        for f in crate::lexicon::FUNCTIONS {
            let mut g: Vec<String> = vec![f.to_string(), "function".into(), "feature".into()];
            let mut added = 0;
            for id in tree.leaves() {
                if world.fn_cat_ok(f, id) {
                    g.extend(tree.name(id).split(' ').map(String::from));
                    added += 1;
                    if added >= 5 {
                        break;
                    }
                }
            }
            for e in world.events() {
                if e.functions.contains(f) {
                    g.push(e.event.to_string());
                }
            }
            // Audiences this function serves ("health-care" mentions elders).
            for (func, auds) in crate::world::FUNCTION_AUDIENCES {
                if func == f {
                    g.extend(auds.iter().map(|a| a.to_string()));
                }
            }
            kb.glosses.insert(f.to_string(), g);
        }

        // Times: seasons and gift occasions.
        for t in crate::lexicon::TIMES {
            let mut g: Vec<String> = vec![t.to_string(), "time".into()];
            if GIFT_OCCASIONS.contains(t) {
                g.push("festival".into());
                g.push("gifts".into());
                // Traditional gift categories for this occasion.
                for (occ, cats) in crate::world::OCCASION_GIFTS {
                    if occ == t {
                        for c in *cats {
                            g.extend(c.split(' ').map(String::from));
                        }
                    }
                }
            } else {
                g.push("season".into());
            }
            for e in world.events() {
                if e.times.contains(t) {
                    g.push(e.event.to_string());
                }
            }
            kb.glosses.insert(t.to_string(), g);
        }

        // Locations.
        for l in crate::lexicon::LOCATIONS {
            let mut g: Vec<String> = vec![l.to_string(), "place".into(), "location".into()];
            for e in world.events() {
                if e.locations.contains(l) {
                    g.push(e.event.to_string());
                }
            }
            kb.extend_gloss(l, g);
        }

        // Audiences: who they are plus their gift needs.
        for a in crate::lexicon::AUDIENCES {
            let mut g: Vec<String> = vec![a.to_string(), "people".into(), "audience".into()];
            for (aud, cats) in GIFT_NEEDS {
                if aud == a {
                    for c in *cats {
                        g.extend(c.split(' ').map(String::from));
                    }
                }
            }
            // Functions that serve this audience.
            for (func, auds) in crate::world::FUNCTION_AUDIENCES {
                if auds.contains(a) {
                    g.push(func.to_string());
                }
            }
            kb.extend_gloss(a, g);
        }

        // Remaining attribute domains: a light gloss naming the domain.
        let flat: &[(&[&str], &str)] = &[
            (crate::lexicon::COLORS, "color"),
            (crate::lexicon::MATERIALS, "material"),
            (crate::lexicon::STYLES, "style"),
            (crate::lexicon::DESIGNS, "design"),
            (crate::lexicon::PATTERNS, "pattern"),
            (crate::lexicon::SHAPES, "shape"),
            (crate::lexicon::SMELLS, "smell"),
            (crate::lexicon::TASTES, "taste"),
            (crate::lexicon::NATURES, "nature"),
            (crate::lexicon::QUANTITIES, "quantity"),
            (crate::lexicon::MODIFIERS, "modifier"),
        ];
        for (terms, dom) in flat {
            for t in *terms {
                kb.extend_gloss(t, vec![t.to_string(), dom.to_string(), "attribute".into()]);
            }
        }
        for b in world.lexicon.terms(Domain::Brand) {
            kb.extend_gloss(b, vec![b.clone(), "brand".into(), "maker".into()]);
        }
        for i in world.lexicon.terms(Domain::Ip) {
            kb.extend_gloss(i, vec![i.clone(), "series".into(), "entertainment".into()]);
        }
        for o in world.lexicon.terms(Domain::Organization) {
            kb.extend_gloss(o, vec![o.clone(), "organization".into()]);
        }
        kb
    }

    /// Append tokens to a surface's gloss (creating it if missing). Surfaces
    /// shared by several domains ("village") accumulate all senses, like a
    /// disambiguation page.
    fn extend_gloss(&mut self, surface: &str, tokens: Vec<String>) {
        self.glosses
            .entry(surface.to_string())
            .or_default()
            .extend(tokens);
    }

    /// Gloss of a surface form, if known.
    pub fn gloss(&self, surface: &str) -> Option<&[String]> {
        self.glosses.get(surface).map(Vec::as_slice)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.glosses.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.glosses.is_empty()
    }

    /// Iterate `(surface, gloss)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.glosses.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn kb() -> (World, GlossKb) {
        let w = World::generate(WorldConfig::tiny());
        let kb = GlossKb::build(&w);
        (w, kb)
    }

    #[test]
    fn covers_categories_and_lexicon() {
        let (w, kb) = kb();
        assert!(kb.gloss("grill").is_some());
        assert!(kb.gloss("waterproof").is_some());
        assert!(kb.gloss("barbecue").is_some());
        assert!(kb
            .gloss(w.lexicon.terms(Domain::Brand)[0].as_str())
            .is_some());
        assert!(kb.gloss("no-such-term").is_none());
        assert!(kb.len() > 200);
    }

    #[test]
    fn festival_gloss_mentions_gift_categories() {
        // The Table 6 case study: knowledge for "mid-autumn-festival" must
        // relate it to "moon cake".
        let (_, kb) = kb();
        let g = kb.gloss("mid-autumn-festival").unwrap();
        assert!(g.iter().any(|t| t == "moon" || t == "cake"), "gloss: {g:?}");
    }

    #[test]
    fn event_gloss_names_needed_gear() {
        let (_, kb) = kb();
        let g = kb.gloss("barbecue").unwrap();
        assert!(g.iter().any(|t| t == "charcoal"), "gloss: {g:?}");
        assert!(g.iter().any(|t| t == "grill"), "gloss: {g:?}");
    }

    #[test]
    fn ambiguous_surface_merges_senses() {
        let (_, kb) = kb();
        let g = kb.gloss("village").unwrap();
        assert!(g.iter().any(|t| t == "place"));
        assert!(g.iter().any(|t| t == "style"));
    }

    #[test]
    fn compound_categories_inherit_event_relations() {
        let (w, kb) = kb();
        let grill = w.category("grill").unwrap();
        if let Some(&child) = w.tree.node(grill).children.first() {
            let g = kb.gloss(w.tree.name(child)).unwrap();
            assert!(
                g.iter().any(|t| t == "barbecue"),
                "compound grill gloss: {g:?}"
            );
        }
    }
}
