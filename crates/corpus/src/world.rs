//! The synthetic e-commerce world: ground-truth compatibility model and
//! event profiles.
//!
//! This is the stand-in for Alibaba's reality. Every judgement the paper
//! obtains from human annotators or transaction data — is this concept
//! plausible? which items does a scenario need? which location suits which
//! event? — is defined here as explicit ground truth, so the construction
//! pipeline's precision and recall are exactly measurable.

use alicoco_nn::util::{FxHashMap, FxHashSet};
use rand::Rng;

use crate::lexicon::Lexicon;
use crate::taxonomy::CategoryTree;

/// Configuration for world generation. Defaults give a laptop-scale world
/// (a few thousand items) with the same *shape* as the paper's statistics.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// RNG seed driving all generation.
    pub seed: u64,
    /// Hyphen-compound leaves generated under each seed category leaf.
    pub compounds_per_leaf: usize,
    /// Brands.
    pub brands: usize,
    /// Ips.
    pub ips: usize,
    /// Orgs.
    pub orgs: usize,
    /// Number of items.
    pub num_items: usize,
    /// Number of queries.
    pub num_queries: usize,
    /// Number of reviews.
    pub num_reviews: usize,
    /// Number of guides.
    pub num_guides: usize,
    /// Target counts for generated ground-truth e-commerce concepts.
    pub num_good_concepts: usize,
    /// Number of bad concepts.
    pub num_bad_concepts: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            compounds_per_leaf: 5,
            brands: 60,
            ips: 40,
            orgs: 12,
            num_items: 3000,
            num_queries: 4000,
            num_reviews: 3000,
            num_guides: 900,
            num_good_concepts: 600,
            num_bad_concepts: 600,
        }
    }
}

impl WorldConfig {
    /// A reduced configuration for fast unit tests.
    pub fn tiny() -> Self {
        WorldConfig {
            seed: 7,
            compounds_per_leaf: 2,
            brands: 15,
            ips: 10,
            orgs: 5,
            num_items: 500,
            num_queries: 400,
            num_reviews: 300,
            num_guides: 150,
            num_good_concepts: 120,
            num_bad_concepts: 120,
        }
    }
}

/// Ground truth for one shopping scenario (Event).
#[derive(Clone, Debug)]
pub struct EventProfile {
    /// Event.
    pub event: &'static str,
    /// Locations where the event plausibly happens.
    pub locations: &'static [&'static str],
    /// Seasons / occasions when it plausibly happens.
    pub times: &'static [&'static str],
    /// Category leaf *names* the scenario needs (semantic drift lives here:
    /// "charcoal" is needed for "barbecue" but unrelated to "outdoor").
    pub needs: &'static [&'static str],
    /// Functions that make sense for gear used in this event.
    pub functions: &'static [&'static str],
    /// Whether wearables (clothing/footwear) are generally relevant.
    pub wearables: bool,
}

/// The fixed event catalogue. Grounded in taxonomy leaf names.
pub const EVENT_PROFILES: &[EventProfile] = &[
    EventProfile {
        event: "barbecue",
        locations: &["outdoor", "garden", "park", "beach"],
        times: &["summer", "weekend", "evening"],
        needs: &[
            "grill",
            "charcoal",
            "skewers",
            "butter",
            "cooler",
            "picnic mat",
        ],
        functions: &["portable", "non-stick", "foldable"],
        wearables: false,
    },
    EventProfile {
        event: "camping",
        locations: &["outdoor", "mountain", "forest"],
        times: &["summer", "autumn", "weekend"],
        needs: &[
            "tent",
            "sleeping bag",
            "backpack",
            "lantern",
            "camping stove",
            "cooler",
        ],
        functions: &[
            "waterproof",
            "portable",
            "foldable",
            "insulated",
            "windproof",
        ],
        wearables: true,
    },
    EventProfile {
        event: "hiking",
        locations: &["mountain", "outdoor", "forest"],
        times: &["spring", "autumn", "weekend"],
        needs: &["boots", "backpack", "pants", "hat"],
        functions: &[
            "waterproof",
            "breathable",
            "quick-dry",
            "anti-slip",
            "warm",
            "windproof",
        ],
        wearables: true,
    },
    EventProfile {
        event: "swimming",
        locations: &["pool", "beach", "seaside"],
        times: &["summer"],
        needs: &["swimsuit", "swim goggles"],
        functions: &["quick-dry", "waterproof"],
        wearables: false,
    },
    EventProfile {
        event: "baking",
        locations: &["home", "indoor"],
        times: &["weekend", "morning", "christmas"],
        needs: &[
            "whisk",
            "strainer",
            "mixer",
            "baking tray",
            "egg beater",
            "rolling pin",
            "butter",
        ],
        functions: &["non-stick"],
        wearables: false,
    },
    EventProfile {
        event: "wedding",
        locations: &["indoor", "garden", "seaside"],
        times: &["spring", "summer", "evening"],
        needs: &["gown", "perfume", "lipstick", "camera"],
        functions: &[],
        wearables: true,
    },
    EventProfile {
        event: "traveling",
        locations: &["european", "seaside", "mountain", "beach"],
        times: &["summer", "spring", "weekend"],
        needs: &["backpack", "power bank", "hat", "camera"],
        functions: &[
            "portable",
            "foldable",
            "warm",
            "sun-protective",
            "quick-dry",
        ],
        wearables: true,
    },
    EventProfile {
        event: "picnic",
        locations: &["outdoor", "park", "garden"],
        times: &["spring", "summer", "weekend"],
        needs: &["picnic mat", "cooler", "snacks", "plate", "cup"],
        functions: &["portable", "foldable"],
        wearables: false,
    },
    EventProfile {
        event: "fishing",
        locations: &["seaside", "outdoor", "forest"],
        times: &["weekend", "morning"],
        needs: &["cooler", "hat", "boots"],
        functions: &["waterproof", "portable"],
        wearables: true,
    },
    EventProfile {
        event: "skiing",
        locations: &["mountain"],
        times: &["winter"],
        needs: &["skis", "gloves", "hat", "jacket"],
        functions: &["warm", "windproof", "waterproof"],
        wearables: true,
    },
    EventProfile {
        event: "party",
        locations: &["indoor", "home"],
        times: &["evening", "weekend", "new-year", "christmas"],
        needs: &["snacks", "chocolate", "cup", "plate"],
        functions: &[],
        wearables: true,
    },
    EventProfile {
        event: "graduation",
        locations: &["classroom", "indoor"],
        times: &["summer"],
        needs: &["camera", "gown"],
        functions: &[],
        wearables: true,
    },
    EventProfile {
        event: "yoga",
        locations: &["gym", "home", "indoor"],
        times: &["morning", "evening"],
        needs: &["yoga mat", "leggings"],
        functions: &["anti-slip", "breathable", "quick-dry"],
        wearables: false,
    },
    EventProfile {
        event: "commuting",
        locations: &["office"],
        times: &["morning"],
        needs: &["backpack", "headphones", "laptop"],
        functions: &["noise-cancelling", "portable", "shockproof"],
        wearables: true,
    },
    EventProfile {
        event: "gardening",
        locations: &["garden"],
        times: &["spring", "weekend", "morning"],
        needs: &["gloves", "hat", "boots"],
        functions: &["waterproof", "anti-slip"],
        wearables: false,
    },
    EventProfile {
        event: "bathing",
        locations: &["home", "indoor"],
        times: &["evening"],
        needs: &["shampoo"],
        functions: &["moisturizing"],
        wearables: false,
    },
];

/// Gift-occasion times and who-gets-what ground truth (drives "christmas
/// gifts for grandpa" concepts).
pub const GIFT_OCCASIONS: &[&str] = &[
    "christmas",
    "new-year",
    "valentines-day",
    "mid-autumn-festival",
];

/// Gift needs.
pub const GIFT_NEEDS: &[(&str, &[&str])] = &[
    (
        "kids",
        &["plush toy", "blocks", "puzzle", "kite", "doll", "chocolate"],
    ),
    ("babies", &["plush toy", "blanket", "doll"]),
    ("toddlers", &["plush toy", "blocks", "doll"]),
    ("grandpa", &["tea", "scarf", "gloves", "moon cake"]),
    ("grandma", &["scarf", "tea", "blanket", "moon cake"]),
    ("elders", &["tea", "blanket", "moon cake", "scarf"]),
    ("men", &["belt", "headphones", "coffee"]),
    ("women", &["perfume", "lipstick", "scarf"]),
    ("teens", &["headphones", "sneakers", "puzzle"]),
    ("students", &["backpack", "headphones", "puzzle"]),
    ("couples", &["chocolate", "perfume", "cup"]),
    ("runners", &["sneakers", "socks", "swim goggles"]),
    ("middle-school-students", &["backpack", "puzzle", "blocks"]),
];

/// Traditional gifts per occasion (drives occasion glosses: the gloss of
/// "mid-autumn-festival" mentions "moon cake", which is what lets knowledge
/// bridge the Table 6 case-study pair).
pub const OCCASION_GIFTS: &[(&str, &[&str])] = &[
    ("christmas", &["plush toy", "chocolate", "scarf", "socks"]),
    ("new-year", &["tea", "snacks", "cup"]),
    ("valentines-day", &["chocolate", "perfume", "lipstick"]),
    ("mid-autumn-festival", &["moon cake", "tea"]),
];

/// Function → audiences it plausibly serves (beyond generic wearable
/// functions). Drives "[Function] for [Audience]" plausibility.
pub const FUNCTION_AUDIENCES: &[(&str, &[&str])] = &[
    ("health-care", &["elders", "grandpa", "grandma", "babies"]),
    ("anti-lost", &["kids", "toddlers", "elders", "babies"]),
    (
        "warm",
        &[
            "kids", "babies", "elders", "grandpa", "grandma", "men", "women", "teens",
        ],
    ),
    (
        "sun-protective",
        &["kids", "women", "men", "babies", "runners"],
    ),
    ("moisturizing", &["women", "men", "babies", "elders"]),
    ("breathable", &["runners", "kids", "men", "women"]),
    ("quick-dry", &["runners", "teens", "men", "women"]),
    ("noise-cancelling", &["students", "teens", "men", "women"]),
    ("anti-slip", &["elders", "kids", "grandpa", "grandma"]),
];

/// Categories that only suit cold seasons or warm seasons. Everything else
/// is season-neutral.
pub const COLD_WEAR: &[&str] = &[
    "jacket",
    "sweater",
    "hoodie",
    "trench coat",
    "boots",
    "gloves",
    "scarf",
    "skis",
    "blanket",
];
/// Warm wear.
pub const WARM_WEAR: &[&str] = &[
    "shorts",
    "sandals",
    "swimsuit",
    "sundress",
    "tee",
    "slip dress",
    "kite",
];
/// Cold times.
pub const COLD_TIMES: &[&str] = &["winter", "autumn", "christmas", "new-year"];
/// Warm times.
pub const WARM_TIMES: &[&str] = &["summer", "spring"];

/// Per top-branch compatibility: functions / materials / styles usable with
/// categories in that branch.
struct BranchCompat {
    branch: &'static str,
    functions: &'static [&'static str],
    materials: &'static [&'static str],
    styled: bool,
    colored: bool,
    audienced: bool,
}

const BRANCH_COMPAT: &[BranchCompat] = &[
    BranchCompat {
        branch: "clothing-and-accessory",
        functions: &[
            "warm",
            "breathable",
            "waterproof",
            "windproof",
            "sun-protective",
            "quick-dry",
        ],
        materials: &[
            "cotton", "wool", "silk", "denim", "linen", "cashmere", "velvet", "fleece", "nylon",
        ],
        styled: true,
        colored: true,
        audienced: true,
    },
    BranchCompat {
        branch: "footwear",
        functions: &["waterproof", "anti-slip", "breathable", "warm", "quick-dry"],
        materials: &["leather", "canvas", "nylon"],
        styled: true,
        colored: true,
        audienced: true,
    },
    BranchCompat {
        branch: "kitchen",
        functions: &["non-stick", "insulated", "portable"],
        materials: &["stainless-steel", "ceramic", "glass", "oak", "bamboo"],
        styled: false,
        colored: true,
        audienced: false,
    },
    BranchCompat {
        branch: "outdoor-gear",
        functions: &[
            "waterproof",
            "portable",
            "foldable",
            "insulated",
            "windproof",
        ],
        materials: &["canvas", "nylon"],
        styled: false,
        colored: true,
        audienced: false,
    },
    BranchCompat {
        branch: "electronics",
        functions: &["noise-cancelling", "shockproof", "portable", "waterproof"],
        materials: &["glass"],
        styled: false,
        colored: true,
        audienced: true,
    },
    BranchCompat {
        branch: "beauty",
        functions: &["moisturizing", "sun-protective"],
        materials: &[],
        styled: false,
        colored: false,
        audienced: true,
    },
    BranchCompat {
        branch: "food",
        functions: &[],
        materials: &[],
        styled: false,
        colored: false,
        audienced: false,
    },
    BranchCompat {
        branch: "toys",
        functions: &["shockproof"],
        materials: &["cotton", "oak", "bamboo"],
        styled: false,
        colored: true,
        audienced: true,
    },
    BranchCompat {
        branch: "sports",
        functions: &["quick-dry", "breathable", "anti-slip", "portable"],
        materials: &["nylon"],
        styled: true,
        colored: true,
        audienced: true,
    },
    BranchCompat {
        branch: "home",
        functions: &["warm", "foldable", "insulated"],
        materials: &["cotton", "linen", "velvet", "oak", "bamboo", "glass"],
        styled: true,
        colored: true,
        audienced: false,
    },
];

/// The assembled world: taxonomy + lexicon + the compatibility oracle data.
pub struct World {
    /// Config.
    pub config: WorldConfig,
    /// Tree.
    pub tree: CategoryTree,
    /// Lexicon.
    pub lexicon: Lexicon,
    /// event name -> profile index.
    event_index: FxHashMap<&'static str, usize>,
    /// category leaf name -> node id.
    name_to_node: FxHashMap<String, usize>,
    /// event -> set of needed node ids (leaf + its compound descendants).
    event_needs: Vec<FxHashSet<usize>>,
}

impl World {
    /// Build the world skeleton (taxonomy, lexicon, compatibility indices).
    pub fn generate(config: WorldConfig) -> Self {
        let mut rng = alicoco_nn::util::seeded_rng(config.seed);
        let tree = CategoryTree::generate(config.compounds_per_leaf, &mut rng);
        let lexicon = Lexicon::generate(config.brands, config.ips, config.orgs, &mut rng);
        let mut name_to_node = FxHashMap::default();
        for id in tree.ids() {
            name_to_node.insert(tree.name(id).to_string(), id);
        }
        let event_index = EVENT_PROFILES
            .iter()
            .enumerate()
            .map(|(i, p)| (p.event, i))
            .collect();
        let mut event_needs = Vec::with_capacity(EVENT_PROFILES.len());
        for p in EVENT_PROFILES {
            let mut set = FxHashSet::default();
            for need in p.needs {
                if let Some(&id) = name_to_node.get(*need) {
                    set.insert(id);
                    // Compound descendants inherit the need relation.
                    for c in &tree.node(id).children {
                        set.insert(*c);
                    }
                } else {
                    panic!("event {:?} needs unknown category {need:?}", p.event);
                }
            }
            event_needs.push(set);
        }
        World {
            config,
            tree,
            lexicon,
            event_index,
            name_to_node,
            event_needs,
        }
    }

    /// Events.
    pub fn events(&self) -> &'static [EventProfile] {
        EVENT_PROFILES
    }

    /// Event.
    pub fn event(&self, name: &str) -> Option<&'static EventProfile> {
        self.event_index.get(name).map(|&i| &EVENT_PROFILES[i])
    }

    /// Category node id for a name.
    pub fn category(&self, name: &str) -> Option<usize> {
        self.name_to_node.get(name).copied()
    }

    /// Is `cat` (a node id) needed by `event`? Includes compound
    /// descendants of needed leaves.
    pub fn event_needs(&self, event: &str, cat: usize) -> bool {
        match self.event_index.get(event) {
            Some(&i) => self.event_needs[i].contains(&cat),
            None => false,
        }
    }

    /// Needed node ids for an event.
    pub fn event_need_set(&self, event: &str) -> Option<&FxHashSet<usize>> {
        self.event_index.get(event).map(|&i| &self.event_needs[i])
    }

    fn branch_compat(&self, cat: usize) -> Option<&'static BranchCompat> {
        let branch = self.tree.top_branch(cat)?;
        let name = self.tree.name(branch);
        BRANCH_COMPAT.iter().find(|b| b.branch == name)
    }

    /// Is a function plausible on a category?
    pub fn fn_cat_ok(&self, function: &str, cat: usize) -> bool {
        self.branch_compat(cat)
            .is_some_and(|b| b.functions.contains(&function))
    }

    /// Is a material plausible on a category?
    pub fn material_cat_ok(&self, material: &str, cat: usize) -> bool {
        self.branch_compat(cat)
            .is_some_and(|b| b.materials.contains(&material))
    }

    /// Does the branch take styles / colors / audiences?
    pub fn cat_styled(&self, cat: usize) -> bool {
        self.branch_compat(cat).is_some_and(|b| b.styled)
    }

    /// Cat colored.
    pub fn cat_colored(&self, cat: usize) -> bool {
        self.branch_compat(cat).is_some_and(|b| b.colored)
    }

    /// Cat audienced.
    pub fn cat_audienced(&self, cat: usize) -> bool {
        self.branch_compat(cat).is_some_and(|b| b.audienced)
    }

    /// Functions compatible with a category's branch.
    pub fn cat_functions(&self, cat: usize) -> &'static [&'static str] {
        self.branch_compat(cat).map(|b| b.functions).unwrap_or(&[])
    }

    /// Cat materials.
    pub fn cat_materials(&self, cat: usize) -> &'static [&'static str] {
        self.branch_compat(cat).map(|b| b.materials).unwrap_or(&[])
    }

    /// Is a category plausible at a time (season)?
    pub fn cat_time_ok(&self, cat: usize, time: &str) -> bool {
        let name = self.tree.name(cat);
        let head = name.rsplit('-').next().unwrap_or(name);
        // Compounds inherit their head's seasonality.
        let base = if self.name_to_node.contains_key(head) {
            head
        } else {
            name
        };
        if COLD_WEAR.contains(&base) {
            COLD_TIMES.contains(&time)
        } else if WARM_WEAR.contains(&base) {
            WARM_TIMES.contains(&time)
        } else {
            true
        }
    }

    /// Is a function plausible for an event's gear?
    pub fn fn_event_ok(&self, function: &str, event: &str) -> bool {
        self.event(event)
            .is_some_and(|p| p.functions.contains(&function))
    }

    /// Is a location plausible for an event?
    pub fn event_loc_ok(&self, event: &str, location: &str) -> bool {
        self.event(event)
            .is_some_and(|p| p.locations.contains(&location))
    }

    /// Is a time plausible for an event?
    pub fn event_time_ok(&self, event: &str, time: &str) -> bool {
        self.event(event).is_some_and(|p| p.times.contains(&time))
    }

    /// Is a category relevant to an event (needed gear, or wearable for a
    /// wearable-friendly event)?
    pub fn cat_event_ok(&self, cat: usize, event: &str) -> bool {
        if self.event_needs(event, cat) {
            return true;
        }
        let Some(p) = self.event(event) else {
            return false;
        };
        if !p.wearables {
            return false;
        }
        self.tree
            .top_branch(cat)
            .is_some_and(|b| matches!(self.tree.name(b), "clothing-and-accessory" | "footwear"))
    }

    /// Is a function plausible for an audience?
    pub fn fn_aud_ok(&self, function: &str, audience: &str) -> bool {
        FUNCTION_AUDIENCES
            .iter()
            .any(|(f, auds)| *f == function && auds.contains(&audience))
    }

    /// Gift categories (node ids) for an audience.
    pub fn gift_needs(&self, audience: &str) -> Vec<usize> {
        GIFT_NEEDS
            .iter()
            .find(|(a, _)| *a == audience)
            .map(|(_, cats)| cats.iter().filter_map(|c| self.category(c)).collect())
            .unwrap_or_default()
    }

    /// Sample a random category leaf id.
    pub fn random_leaf<R: Rng>(&self, rng: &mut R) -> usize {
        let leaves = self.tree.leaves();
        leaves[rng.gen_range(0..leaves.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn event_profiles_reference_real_categories() {
        // World::generate panics if any event need is unknown; constructing
        // it is the assertion.
        let w = world();
        assert_eq!(w.events().len(), EVENT_PROFILES.len());
    }

    #[test]
    fn semantic_drift_is_encoded() {
        // Charcoal is needed for barbecue...
        let w = world();
        let charcoal = w.category("charcoal").unwrap();
        assert!(w.event_needs("barbecue", charcoal));
        // ...but not for swimming.
        assert!(!w.event_needs("swimming", charcoal));
    }

    #[test]
    fn compound_leaves_inherit_needs() {
        let w = World::generate(WorldConfig {
            compounds_per_leaf: 3,
            ..WorldConfig::tiny()
        });
        let grill = w.category("grill").unwrap();
        let child = *w
            .tree
            .node(grill)
            .children
            .first()
            .expect("compound grill child");
        assert!(w.event_needs("barbecue", child));
    }

    #[test]
    fn paper_plausibility_examples_hold() {
        let w = world();
        let hat = w.category("hat").unwrap();
        let shoes = w.category("boots").unwrap();
        // "warm hat for traveling" — good.
        assert!(w.fn_cat_ok("warm", hat));
        assert!(w.fn_event_ok("warm", "traveling"));
        assert!(w.cat_event_ok(hat, "traveling"));
        // "warm shoes for swimming" — bad (warm incompatible with swimming).
        assert!(!w.fn_event_ok("warm", "swimming"));
        assert!(!w.cat_event_ok(shoes, "swimming"));
        // "bathing in the classroom" — bad location.
        assert!(!w.event_loc_ok("bathing", "classroom"));
        assert!(w.event_loc_ok("barbecue", "outdoor"));
        // "health care for olds" — good; for middle-school students — bad.
        assert!(w.fn_aud_ok("health-care", "elders"));
        assert!(!w.fn_aud_ok("waterproof", "middle-school-students"));
        // "casual summer coat" — bad (cold wear in summer).
        let coat = w.category("trench coat").unwrap();
        assert!(!w.cat_time_ok(coat, "summer"));
        assert!(w.cat_time_ok(coat, "winter"));
    }

    #[test]
    fn material_and_style_compat() {
        let w = world();
        let skirt = w.category("skirt").unwrap();
        let grill = w.category("grill").unwrap();
        assert!(w.material_cat_ok("cotton", skirt));
        assert!(!w.material_cat_ok("stainless-steel", skirt));
        assert!(w.material_cat_ok("stainless-steel", grill));
        assert!(w.cat_styled(skirt));
        assert!(!w.cat_styled(grill));
    }

    #[test]
    fn gift_needs_resolve_to_nodes() {
        let w = world();
        let gifts = w.gift_needs("grandpa");
        assert!(!gifts.is_empty());
        let tea = w.category("tea").unwrap();
        assert!(gifts.contains(&tea));
        assert!(w.gift_needs("nobody").is_empty());
    }

    #[test]
    fn compound_seasonality_inherited() {
        let w = World::generate(WorldConfig {
            compounds_per_leaf: 3,
            ..WorldConfig::tiny()
        });
        let jacket = w.category("jacket").unwrap();
        let compound = *w.tree.node(jacket).children.first().unwrap();
        assert!(!w.cat_time_ok(compound, "summer"));
        assert!(w.cat_time_ok(compound, "winter"));
    }
}
