//! Deterministic synthetic worlds at paper scale ("millions of
//! concepts", §1) for benchmarking the storage and serving layers.
//!
//! Unlike the labeled [`crate::world`] generator (built for training-set
//! realism), this one optimizes for *size*: names are base-240 digit
//! tuples over a fixed vocabulary, so `n` distinct concepts can be
//! streamed straight into the graph arena with no O(world) intermediate
//! collections — item and primitive ids are arithmetic in `i`, never
//! stored. Worlds up to 57 600 concepts (240²) use two-word names and are
//! byte-identical to what the historical `bench::scale_world` produced,
//! keeping the 50k baselines comparable; beyond that, concepts get
//! three-word names (a token count no two-word name shares, so names
//! still never collide) up to 240³.

use std::fmt::Write as _;

use alicoco::ids::ItemId;
use alicoco::AliCoCo;

/// 60 distinct base words for the synthetic at-scale worlds.
pub const SCALE_BASE: &[&str] = &[
    "outdoor", "barbecue", "summer", "beach", "grill", "party", "yoga", "indoor", "camping",
    "picnic", "winter", "gift", "hiking", "garden", "travel", "kids", "retro", "festival",
    "wedding", "office", "budget", "luxury", "vintage", "portable", "family", "night", "morning",
    "spring", "autumn", "rain", "snow", "city", "lake", "forest", "desert", "island", "sports",
    "music", "art", "cooking", "baking", "fishing", "cycling", "running", "climbing", "reading",
    "gaming", "crafts", "pets", "garage", "balcony", "rooftop", "street", "market", "school",
    "holiday", "birthday", "romantic", "minimal", "cozy",
];

/// 240 distinct single-word tokens ("outdoor0" … "cozy3").
pub fn scale_vocab() -> Vec<String> {
    SCALE_BASE
        .iter()
        .flat_map(|w| (0..4).map(move |v| format!("{w}{v}")))
        .collect()
}

/// A deterministic synthetic world big enough that full-layer scans hurt:
/// `n_concepts` *distinct* concepts whose names are the base-240 digit
/// tuple of `i` (two words below 240², three words above, so names never
/// collide and `add_concept` cannot dedup them away), each interpreted by
/// its first two word primitives, with a thin item layer (one item per
/// four concepts, one suggestion edge per three).
///
/// Generation is streaming: besides the fixed 240-token vocabulary and
/// primitive table, per-node state goes straight into the graph arenas.
///
/// # Panics
/// Panics if `n_concepts` exceeds 240³ (names would collide).
pub fn scale_world(n_concepts: usize) -> AliCoCo {
    let vocab = scale_vocab();
    let two_word = vocab.len() * vocab.len();
    assert!(
        n_concepts <= two_word * vocab.len(),
        "digit tuples must stay distinct"
    );
    let mut kg = AliCoCo::new();
    let root = kg.add_class("concept", None);
    let classes: Vec<_> = (0..4)
        .map(|d| kg.add_class(&format!("domain{d}"), Some(root)))
        .collect();
    let prims: Vec<_> = vocab
        .iter()
        .enumerate()
        .map(|(i, w)| kg.add_primitive(w, classes[i % classes.len()]))
        .collect();
    // Item ids are assigned sequentially, so item `k` is reachable as
    // `ItemId::from_index(k)` later without keeping a handle vector.
    let n_items = n_concepts / 4;
    for i in 0..n_items {
        kg.add_item(&[
            vocab[i % vocab.len()].clone(),
            vocab[(i * 7 + 3) % vocab.len()].clone(),
        ]);
    }
    let mut name = String::new();
    for i in 0..n_concepts {
        let (a, b) = (i % vocab.len(), (i / vocab.len()) % vocab.len());
        name.clear();
        if i < two_word {
            let _ = write!(name, "{} {}", vocab[a], vocab[b]);
        } else {
            let c = i / two_word;
            let _ = write!(name, "{} {} {}", vocab[a], vocab[b], vocab[c]);
        }
        let id = kg.add_concept(&name);
        kg.link_concept_primitive(id, prims[a]);
        kg.link_concept_primitive(id, prims[b]);
        if i % 3 == 0 && n_items > 0 {
            kg.link_concept_item(
                id,
                ItemId::from_index(i % n_items),
                0.5 + (i % 50) as f32 / 100.0,
            );
        }
    }
    assert_eq!(kg.num_concepts(), n_concepts, "synthetic names collided");
    kg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_matches_the_historical_generator() {
        // The pre-refactor bench generator, reproduced verbatim: streaming
        // generation must not change a single byte of what it built.
        let n = 1000;
        let vocab = scale_vocab();
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let classes: Vec<_> = (0..4)
            .map(|d| kg.add_class(&format!("domain{d}"), Some(root)))
            .collect();
        let prims: Vec<_> = vocab
            .iter()
            .enumerate()
            .map(|(i, w)| kg.add_primitive(w, classes[i % classes.len()]))
            .collect();
        let items: Vec<_> = (0..n / 4)
            .map(|i| {
                kg.add_item(&[
                    vocab[i % vocab.len()].clone(),
                    vocab[(i * 7 + 3) % vocab.len()].clone(),
                ])
            })
            .collect();
        for i in 0..n {
            let (a, b) = (i % vocab.len(), i / vocab.len());
            let c = kg.add_concept(&format!("{} {}", vocab[a], vocab[b]));
            kg.link_concept_primitive(c, prims[a]);
            kg.link_concept_primitive(c, prims[b]);
            if i % 3 == 0 {
                kg.link_concept_item(c, items[i % items.len()], 0.5 + (i % 50) as f32 / 100.0);
            }
        }
        assert_eq!(scale_world(n), kg);
    }

    #[test]
    fn three_word_names_extend_past_the_two_word_ceiling() {
        // Crossing 240² = 57 600 keeps every name distinct (the internal
        // assert_eq would fire on collision).
        let n = 240 * 240 + 500;
        let kg = scale_world(n);
        assert_eq!(kg.num_concepts(), n);
        let last = kg
            .concept(alicoco::ids::ConceptId::from_index(n - 1))
            .name
            .clone();
        assert_eq!(last.split(' ').count(), 3, "{last}");
    }

    #[test]
    fn world_is_deterministic() {
        assert_eq!(scale_world(321), scale_world(321));
    }
}
