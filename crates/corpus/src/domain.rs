//! The 20 first-level taxonomy classes ("domains") of AliCoCo (§3).

/// A first-level class of the AliCoCo taxonomy. The paper defines exactly
/// these 20 (Figure 3 / Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Category.
    Category,
    /// Brand.
    Brand,
    /// Color.
    Color,
    /// Design.
    Design,
    /// Function.
    Function,
    /// Material.
    Material,
    /// Pattern.
    Pattern,
    /// Shape.
    Shape,
    /// Smell.
    Smell,
    /// Taste.
    Taste,
    /// Style.
    Style,
    /// Time.
    Time,
    /// Location.
    Location,
    /// Intellectual Property: real-world entities (persons, movies, songs).
    Ip,
    /// Audience.
    Audience,
    /// Event.
    Event,
    /// Nature.
    Nature,
    /// Organization.
    Organization,
    /// Quantity.
    Quantity,
    /// Modifier.
    Modifier,
}

impl Domain {
    /// All 20 domains in a stable order.
    pub const ALL: [Domain; 20] = [
        Domain::Category,
        Domain::Brand,
        Domain::Color,
        Domain::Design,
        Domain::Function,
        Domain::Material,
        Domain::Pattern,
        Domain::Shape,
        Domain::Smell,
        Domain::Taste,
        Domain::Style,
        Domain::Time,
        Domain::Location,
        Domain::Ip,
        Domain::Audience,
        Domain::Event,
        Domain::Nature,
        Domain::Organization,
        Domain::Quantity,
        Domain::Modifier,
    ];

    /// Stable index in `0..20`.
    pub fn index(self) -> usize {
        Domain::ALL
            .iter()
            .position(|&d| d == self)
            .expect("domain in ALL")
    }

    /// Domain from its stable index.
    ///
    /// # Panics
    /// Panics if `i >= 20`.
    pub fn from_index(i: usize) -> Domain {
        Domain::ALL[i]
    }

    /// Human-readable name matching the paper's Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Category => "Category",
            Domain::Brand => "Brand",
            Domain::Color => "Color",
            Domain::Design => "Design",
            Domain::Function => "Function",
            Domain::Material => "Material",
            Domain::Pattern => "Pattern",
            Domain::Shape => "Shape",
            Domain::Smell => "Smell",
            Domain::Taste => "Taste",
            Domain::Style => "Style",
            Domain::Time => "Time",
            Domain::Location => "Location",
            Domain::Ip => "IP",
            Domain::Audience => "Audience",
            Domain::Event => "Event",
            Domain::Nature => "Nature",
            Domain::Organization => "Organization",
            Domain::Quantity => "Quantity",
            Domain::Modifier => "Modifier",
        }
    }

    /// Parse the Table 2 name back into a domain.
    pub fn from_name(name: &str) -> Option<Domain> {
        Domain::ALL.iter().copied().find(|d| d.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_domains() {
        assert_eq!(Domain::ALL.len(), 20);
    }

    #[test]
    fn index_roundtrip() {
        for (i, d) in Domain::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Domain::from_index(i), *d);
        }
    }

    #[test]
    fn name_roundtrip() {
        for d in Domain::ALL {
            assert_eq!(Domain::from_name(d.name()), Some(d));
        }
        assert_eq!(Domain::from_name("NotADomain"), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Domain::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }
}
