//! The labeling oracle — the stand-in for the paper's human annotators and
//! crowdsourcing services.
//!
//! Every semi-automatic step of the paper routes samples to annotators: the
//! active-learning loop (§4.2.3, Algorithm 1's `H`), the quality gates on
//! mined vocabulary (§7.2) and concept batches (§5.2.2), and the test-set
//! labels of §7.4–§7.6. The oracle answers those queries from the world's
//! ground truth, counts how many labels were spent (Table 3's "Labeled
//! Size"), and can inject a configurable error rate to study annotator
//! noise.

use std::cell::Cell;

use rand::Rng;

use crate::concepts::{concept_relevant_item, judge_tokens, ConceptSpec};
use crate::domain::Domain;
use crate::items::ItemSpec;
use crate::world::World;

/// A ground-truth label source with per-query accounting and optional noise.
pub struct Oracle<'w> {
    world: &'w World,
    /// Probability that any single answer is flipped.
    noise: f64,
    labels_used: Cell<u64>,
    rng: std::cell::RefCell<rand::rngs::StdRng>,
}

impl<'w> Oracle<'w> {
    /// Create a new instance.
    pub fn new(world: &'w World) -> Self {
        Self::with_noise(world, 0.0, 0)
    }

    /// An oracle that flips each answer with probability `noise`.
    pub fn with_noise(world: &'w World, noise: f64, seed: u64) -> Self {
        assert!((0.0..=0.5).contains(&noise), "noise must be in [0, 0.5]");
        Oracle {
            world,
            noise,
            labels_used: Cell::new(0),
            rng: std::cell::RefCell::new(alicoco_nn::util::seeded_rng(seed ^ 0x04ac1e)),
        }
    }

    /// Total labels answered so far.
    pub fn labels_used(&self) -> u64 {
        self.labels_used.get()
    }

    /// Reset the label counter (e.g. between experiment arms).
    pub fn reset_counter(&self) {
        self.labels_used.set(0);
    }

    fn answer(&self, truth: bool) -> bool {
        self.labels_used.set(self.labels_used.get() + 1);
        if self.noise > 0.0 && self.rng.borrow_mut().gen_bool(self.noise) {
            !truth
        } else {
            truth
        }
    }

    /// Is `hypernym` an ancestor of `hyponym` in the category taxonomy?
    /// Names may be space- or hyphen-joined.
    pub fn label_hypernym(&self, hyponym: &str, hypernym: &str) -> bool {
        let resolve = |n: &str| {
            self.world
                .category(n)
                .or_else(|| self.world.category(&n.replace('-', " ")))
        };
        let truth = match (resolve(hyponym), resolve(hypernym)) {
            (Some(c), Some(h)) => self.world.tree.is_ancestor(h, c),
            _ => false,
        };
        self.answer(truth)
    }

    /// Is this token sequence a good e-commerce concept?
    pub fn label_concept(&self, tokens: &[String]) -> bool {
        self.answer(judge_tokens(self.world, tokens))
    }

    /// Is this `(surface, domain)` pair a correct primitive concept?
    pub fn label_primitive(&self, surface: &str, domain: Domain) -> bool {
        let truth = if domain == Domain::Category {
            self.world.category(surface).is_some()
                || self.world.category(&surface.replace('-', " ")).is_some()
        } else {
            self.world.lexicon.domains_of(surface).contains(&domain)
        };
        self.answer(truth)
    }

    /// Is this item relevant to this concept?
    pub fn label_relevance(&self, concept: &ConceptSpec, item: &ItemSpec) -> bool {
        self.answer(concept_relevant_item(self.world, concept, item))
    }

    /// Gold IOB domain labels for a concept's tokens (`None` = outside).
    /// Does not count as a "label" per token — the paper prices one concept
    /// annotation as one unit.
    pub fn label_tagging(&self, concept: &ConceptSpec) -> Vec<Option<Domain>> {
        self.labels_used.set(self.labels_used.get() + 1);
        let mut out = vec![None; concept.tokens.len()];
        for s in &concept.slots {
            for slot_label in out.iter_mut().skip(s.start).take(s.len) {
                *slot_label = Some(s.domain);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::generate_concepts;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn hypernym_labels_match_tree() {
        let w = world();
        let o = Oracle::new(&w);
        assert!(o.label_hypernym("grill", "cookware"));
        assert!(o.label_hypernym("grill", "kitchen"));
        assert!(!o.label_hypernym("cookware", "grill"));
        assert!(!o.label_hypernym("grill", "beauty"));
        assert!(!o.label_hypernym("zzz", "kitchen"));
        assert_eq!(o.labels_used(), 5);
    }

    #[test]
    fn hyphen_names_resolve() {
        let w = world();
        let o = Oracle::new(&w);
        assert!(o.label_hypernym("trench-coat", "top"));
    }

    #[test]
    fn concept_labels_agree_with_generation() {
        let w = world();
        let mut rng = alicoco_nn::util::seeded_rng(4);
        let concepts = generate_concepts(&w, 150, 150, &mut rng);
        let o = Oracle::new(&w);
        let mut disagreements = Vec::new();
        for c in &concepts {
            if o.label_concept(&c.tokens) != c.good {
                disagreements.push(c.text());
            }
        }
        assert!(
            disagreements.is_empty(),
            "oracle disagrees with generator on: {disagreements:?}"
        );
    }

    #[test]
    fn primitive_labels() {
        let w = world();
        let o = Oracle::new(&w);
        assert!(o.label_primitive("red", Domain::Color));
        assert!(!o.label_primitive("red", Domain::Event));
        assert!(o.label_primitive("grill", Domain::Category));
        assert!(o.label_primitive("village", Domain::Style));
        assert!(o.label_primitive("village", Domain::Location));
    }

    #[test]
    fn noisy_oracle_flips_some_answers() {
        let w = world();
        let o = Oracle::with_noise(&w, 0.3, 99);
        let mut wrong = 0;
        for _ in 0..200 {
            if !o.label_primitive("red", Domain::Color) {
                wrong += 1;
            }
        }
        assert!(
            wrong > 20 && wrong < 120,
            "flip count {wrong} outside plausible band"
        );
    }

    #[test]
    fn counter_resets() {
        let w = world();
        let o = Oracle::new(&w);
        o.label_primitive("red", Domain::Color);
        assert_eq!(o.labels_used(), 1);
        o.reset_counter();
        assert_eq!(o.labels_used(), 0);
    }

    #[test]
    fn tagging_labels_align_with_slots() {
        let w = world();
        let mut rng = alicoco_nn::util::seeded_rng(5);
        let concepts = generate_concepts(&w, 20, 0, &mut rng);
        let o = Oracle::new(&w);
        for c in &concepts {
            let tags = o.label_tagging(c);
            assert_eq!(tags.len(), c.tokens.len());
            for s in &c.slots {
                assert_eq!(tags[s.start], Some(s.domain));
            }
        }
    }

    #[test]
    #[should_panic(expected = "noise must be in")]
    fn excessive_noise_rejected() {
        let w = world();
        let _ = Oracle::with_noise(&w, 0.9, 1);
    }
}
