//! Ground-truth category taxonomy of the synthetic e-commerce world.
//!
//! The paper's taxonomy has "Category" as its largest domain (~800 leaf
//! classes, §3) organized in a hierarchy ("Category -> ClothingAndAccessory
//! -> Clothing -> Dress"). We seed a realistic tree and expand it with
//! hyphen-compound leaves ("alpine-jacket" under "jacket"), which also gives
//! the head-word hypernym rule (§4.2.1) something real to find.

use rand::seq::SliceRandom;
use rand::Rng;

/// A node of the category tree.
#[derive(Clone, Debug)]
pub struct CatNode {
    /// Category name (may contain spaces: "trench coat").
    pub name: String,
    /// Parent.
    pub parent: Option<usize>,
    /// Children.
    pub children: Vec<usize>,
    /// Depth.
    pub depth: usize,
}

/// The category hierarchy; node `0` is the root `"category"`.
#[derive(Clone, Debug)]
pub struct CategoryTree {
    nodes: Vec<CatNode>,
}

/// One mid-level group of the seed hierarchy: `(mid, leaves)`.
type SeedMid = (&'static str, &'static [&'static str]);

/// Seed hierarchy: (top, [(mid, [leaf, ...])]).
const SEED: &[(&str, &[SeedMid])] = &[
    (
        "clothing-and-accessory",
        &[
            (
                "top",
                &[
                    "jacket",
                    "hoodie",
                    "sweater",
                    "shirt",
                    "tee",
                    "trench coat",
                    "blouse",
                ],
            ),
            ("bottom", &["pants", "jeans", "shorts", "skirt", "leggings"]),
            ("dress", &["sundress", "gown", "slip dress"]),
            ("accessory", &["hat", "scarf", "gloves", "belt", "socks"]),
        ],
    ),
    (
        "footwear",
        &[(
            "shoes",
            &[
                "boots",
                "sneakers",
                "sandals",
                "slippers",
                "rain boots",
                "loafers",
            ],
        )],
    ),
    (
        "kitchen",
        &[
            (
                "cookware",
                &["grill", "pan", "pot", "skillet", "wok", "skewers"],
            ),
            (
                "bakeware",
                &[
                    "whisk",
                    "strainer",
                    "mixer",
                    "baking tray",
                    "egg beater",
                    "rolling pin",
                ],
            ),
            ("tableware", &["plate", "bowl", "cup", "chopsticks"]),
        ],
    ),
    (
        "outdoor-gear",
        &[(
            "camping",
            &[
                "sleeping bag",
                "tent",
                "backpack",
                "lantern",
                "camping stove",
                "picnic mat",
                "charcoal",
                "cooler",
            ],
        )],
    ),
    (
        "electronics",
        &[(
            "gadgets",
            &[
                "phone",
                "laptop",
                "headphones",
                "camera",
                "power bank",
                "tablet",
            ],
        )],
    ),
    (
        "beauty",
        &[(
            "cosmetics",
            &[
                "lipstick",
                "mascara",
                "face cream",
                "perfume",
                "sunscreen",
                "shampoo",
            ],
        )],
    ),
    (
        "food",
        &[(
            "snacks-and-drinks",
            &[
                "moon cake",
                "snacks",
                "butter",
                "chocolate",
                "tea",
                "coffee",
                "noodles",
            ],
        )],
    ),
    (
        "toys",
        &[(
            "playthings",
            &["plush toy", "blocks", "puzzle", "kite", "doll"],
        )],
    ),
    (
        "sports",
        &[(
            "fitness",
            &[
                "yoga mat",
                "dumbbell",
                "swim goggles",
                "swimsuit",
                "racket",
                "skis",
            ],
        )],
    ),
    (
        "home",
        &[(
            "decor",
            &["curtain", "pillow", "blanket", "lamp", "rug", "storage box"],
        )],
    ),
];

/// Prefixes used to synthesize compound leaf categories under existing
/// leaves ("alpine-jacket" isA "jacket").
const COMPOUND_PREFIXES: &[&str] = &[
    "alpine", "rain", "down", "travel", "sport", "city", "pocket", "twin", "pro", "eco", "night",
    "snow", "beach", "retro", "smart", "maxi", "mini", "cargo", "thermal", "denim",
];

impl CategoryTree {
    /// Build the seeded tree, expanding each seed leaf with
    /// `compounds_per_leaf` hyphen compounds (deterministic per `rng`).
    pub fn generate<R: Rng>(compounds_per_leaf: usize, rng: &mut R) -> Self {
        let mut tree = CategoryTree {
            nodes: vec![CatNode {
                name: "category".into(),
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
        };
        for (top, mids) in SEED {
            let t = tree.add(top, 0);
            for (mid, leaves) in *mids {
                let m = tree.add(mid, t);
                for leaf in *leaves {
                    let l = tree.add(leaf, m);
                    // Compound expansion. Compounds only make sense for
                    // single-token heads ("alpine-jacket", not
                    // "alpine-trench coat").
                    if !leaf.contains(' ') && compounds_per_leaf > 0 {
                        let mut prefixes: Vec<&str> = COMPOUND_PREFIXES.to_vec();
                        prefixes.shuffle(rng);
                        for p in prefixes.into_iter().take(compounds_per_leaf) {
                            tree.add(&format!("{p}-{leaf}"), l);
                        }
                    }
                }
            }
        }
        tree
    }

    fn add(&mut self, name: &str, parent: usize) -> usize {
        let id = self.nodes.len();
        let depth = self.nodes[parent].depth + 1;
        self.nodes.push(CatNode {
            name: name.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node.
    pub fn node(&self, id: usize) -> &CatNode {
        &self.nodes[id]
    }

    /// Human-readable name.
    pub fn name(&self, id: usize) -> &str {
        &self.nodes[id].name
    }

    /// Find a node id by name (names are unique in the generated tree).
    pub fn find(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Ids of all leaf nodes.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }

    /// All `(child, parent)` edges — the ground-truth isA pairs.
    pub fn is_a_edges(&self) -> Vec<(usize, usize)> {
        (1..self.nodes.len())
            .map(|i| (i, self.nodes[i].parent.expect("non-root has parent")))
            .collect()
    }

    /// Ancestors of `id` from parent to root.
    pub fn ancestors(&self, id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes[id].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// Is `anc` a strict ancestor of `id`?
    pub fn is_ancestor(&self, anc: usize, id: usize) -> bool {
        self.ancestors(id).contains(&anc)
    }

    /// The top-level branch (child of the root) containing `id`, or `None`
    pub fn top_branch(&self, id: usize) -> Option<usize> {
        if id == 0 {
            return None;
        }
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            if p == 0 {
                return Some(cur);
            }
            cur = p;
        }
        None
    }

    /// Iterate all node ids.
    pub fn ids(&self) -> impl Iterator<Item = usize> {
        0..self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alicoco_nn::util::seeded_rng;

    #[test]
    fn generated_tree_has_expected_structure() {
        let mut rng = seeded_rng(1);
        let tree = CategoryTree::generate(3, &mut rng);
        assert!(tree.len() > 100, "tree too small: {}", tree.len());
        let jacket = tree.find("jacket").unwrap();
        assert_eq!(tree.node(jacket).depth, 3);
        // Compounds hang under their head.
        let compound = tree
            .ids()
            .find(|&i| tree.name(i).ends_with("-jacket"))
            .expect("compound jacket leaf");
        assert_eq!(tree.node(compound).parent, Some(jacket));
        assert_eq!(tree.node(compound).depth, 4);
    }

    #[test]
    fn ancestors_reach_root() {
        let mut rng = seeded_rng(2);
        let tree = CategoryTree::generate(2, &mut rng);
        let grill = tree.find("grill").unwrap();
        let anc = tree.ancestors(grill);
        assert_eq!(*anc.last().unwrap(), 0);
        let cookware = tree.find("cookware").unwrap();
        assert!(tree.is_ancestor(cookware, grill));
        assert!(!tree.is_ancestor(grill, cookware));
    }

    #[test]
    fn top_branch_identifies_vertical() {
        let mut rng = seeded_rng(3);
        let tree = CategoryTree::generate(2, &mut rng);
        let skirt = tree.find("skirt").unwrap();
        let branch = tree.top_branch(skirt).unwrap();
        assert_eq!(tree.name(branch), "clothing-and-accessory");
        assert_eq!(tree.top_branch(0), None);
    }

    #[test]
    fn is_a_edges_cover_all_non_roots() {
        let mut rng = seeded_rng(4);
        let tree = CategoryTree::generate(2, &mut rng);
        assert_eq!(tree.is_a_edges().len(), tree.len() - 1);
    }

    #[test]
    fn names_are_unique() {
        let mut rng = seeded_rng(5);
        let tree = CategoryTree::generate(3, &mut rng);
        let mut names: Vec<&str> = tree.ids().map(|i| tree.name(i)).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let t1 = CategoryTree::generate(3, &mut seeded_rng(9));
        let t2 = CategoryTree::generate(3, &mut seeded_rng(9));
        assert_eq!(t1.len(), t2.len());
        for i in t1.ids() {
            assert_eq!(t1.name(i), t2.name(i));
        }
    }
}
