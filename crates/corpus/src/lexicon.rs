//! Seed lexicons for the 19 non-Category domains, plus synthetic name
//! generation for the open-ended domains (Brand, IP, Organization).
//!
//! Several surfaces are deliberately ambiguous across domains ("village" is
//! both a Location and a Style, "cream" a Color and a Category-ish food
//! term) — this is what the fuzzy CRF (§5.3.2) exists to handle.

use rand::Rng;

use crate::domain::Domain;

/// Color surfaces ("red", "mocha" — the latter also a Taste).
pub const COLORS: &[&str] = &[
    "red", "blue", "green", "black", "white", "yellow", "pink", "purple", "beige", "navy", "grey",
    "brown", "orange", "cream", "mocha", "ivory", "teal", "maroon",
];

/// Material surfaces.
pub const MATERIALS: &[&str] = &[
    "cotton",
    "leather",
    "wool",
    "silk",
    "denim",
    "bamboo",
    "linen",
    "cashmere",
    "velvet",
    "canvas",
    "fleece",
    "nylon",
    "ceramic",
    "stainless-steel",
    "glass",
    "oak",
];

/// Function surfaces ("waterproof", "health-care").
pub const FUNCTIONS: &[&str] = &[
    "waterproof",
    "windproof",
    "warm",
    "breathable",
    "anti-slip",
    "insulated",
    "foldable",
    "portable",
    "quick-dry",
    "noise-cancelling",
    "non-stick",
    "moisturizing",
    "sun-protective",
    "health-care",
    "anti-lost",
    "shockproof",
];

/// Style surfaces ("village" is also a Location).
pub const STYLES: &[&str] = &[
    "casual",
    "british-style",
    "bohemian",
    "vintage",
    "minimalist",
    "sporty",
    "elegant",
    "street",
    "korean-style",
    "french-style",
    "village",
    "preppy",
];

/// Time surfaces: seasons, occasions, day parts.
pub const TIMES: &[&str] = &[
    "winter",
    "summer",
    "spring",
    "autumn",
    "christmas",
    "new-year",
    "mid-autumn-festival",
    "evening",
    "weekend",
    "morning",
    "valentines-day",
    "back-to-school",
];

/// Location surfaces ("village" is also a Style).
pub const LOCATIONS: &[&str] = &[
    "outdoor",
    "indoor",
    "beach",
    "mountain",
    "office",
    "garden",
    "park",
    "home",
    "gym",
    "pool",
    "classroom",
    "village",
    "european",
    "seaside",
    "forest",
];

/// Event (shopping-scenario) surfaces.
pub const EVENTS: &[&str] = &[
    "barbecue",
    "camping",
    "hiking",
    "swimming",
    "baking",
    "wedding",
    "traveling",
    "picnic",
    "fishing",
    "skiing",
    "party",
    "graduation",
    "yoga",
    "commuting",
    "gardening",
    "bathing",
];

/// Audience surfaces.
pub const AUDIENCES: &[&str] = &[
    "kids",
    "men",
    "women",
    "babies",
    "elders",
    "teens",
    "students",
    "grandpa",
    "grandma",
    "runners",
    "couples",
    "toddlers",
    "middle-school-students",
];

/// Design surfaces.
pub const DESIGNS: &[&str] = &[
    "zipper",
    "hooded",
    "pleated",
    "sleeveless",
    "high-waist",
    "lace-up",
    "button-down",
    "drawstring",
    "pocketed",
    "reversible",
];

/// Pattern surfaces.
pub const PATTERNS: &[&str] = &[
    "striped",
    "floral",
    "plaid",
    "polka-dot",
    "camouflage",
    "geometric",
    "paisley",
    "solid",
];

/// Shape surfaces.
pub const SHAPES: &[&str] = &[
    "round",
    "square",
    "oval",
    "slim",
    "oversized",
    "a-line",
    "tapered",
    "boxy",
];

/// Smell surfaces.
pub const SMELLS: &[&str] = &[
    "floral-scent",
    "citrus-scent",
    "fresh-scent",
    "woody-scent",
    "vanilla-scent",
    "musk-scent",
];

/// Taste surfaces ("mocha" is also a Color).
pub const TASTES: &[&str] = &[
    "sweet", "spicy", "salty", "sour", "bitter", "umami", "mocha",
];

/// Nature surfaces (organic, handmade, ...).
pub const NATURES: &[&str] = &[
    "organic",
    "eco-friendly",
    "natural",
    "synthetic",
    "recycled",
    "handmade",
    "vegan",
];

/// Quantity surfaces (pair, set, bulk, ...).
pub const QUANTITIES: &[&str] = &[
    "single",
    "pair",
    "set",
    "pack",
    "dozen",
    "bulk",
    "family-size",
    "travel-size",
];

/// Modifier surfaces (premium, mini, ...).
pub const MODIFIERS: &[&str] = &[
    "premium",
    "deluxe",
    "classic",
    "new",
    "mini",
    "large",
    "lightweight",
    "budget",
    "luxury",
];

/// Syllables for synthesizing Brand / IP / Organization names.
const SYLLABLES: &[&str] = &[
    "zor", "vex", "lum", "nak", "tia", "ril", "mon", "dra", "fei", "qua", "bel", "sor", "kin",
    "ora", "pex", "yun", "hal", "miv", "ces", "tur",
];

/// Generate `n` distinct synthetic proper names, each 2–3 syllables with a
/// domain-specific suffix for flavour.
pub fn synth_names<R: Rng>(n: usize, suffixes: &[&str], rng: &mut R) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    let mut seen = alicoco_nn::util::FxHashSet::default();
    while out.len() < n {
        let sylls = 2 + (rng.gen::<u8>() % 2) as usize;
        let mut name = String::new();
        for _ in 0..sylls {
            name.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
        }
        if !suffixes.is_empty() && rng.gen_bool(0.5) {
            name.push('-');
            name.push_str(suffixes[rng.gen_range(0..suffixes.len())]);
        }
        if seen.insert(name.clone()) {
            out.push(name);
        }
    }
    out
}

/// The full non-Category lexicon: per-domain surface lists.
#[derive(Clone, Debug)]
pub struct Lexicon {
    per_domain: Vec<Vec<String>>,
}

impl Lexicon {
    /// Build the lexicon. `brands`, `ips`, `orgs` control the sizes of the
    /// synthesized open-ended domains.
    pub fn generate<R: Rng>(brands: usize, ips: usize, orgs: usize, rng: &mut R) -> Self {
        let mut per_domain: Vec<Vec<String>> = vec![Vec::new(); 20];
        let fill = |v: &mut Vec<String>, items: &[&str]| {
            v.extend(items.iter().map(|s| s.to_string()));
        };
        fill(&mut per_domain[Domain::Color.index()], COLORS);
        fill(&mut per_domain[Domain::Material.index()], MATERIALS);
        fill(&mut per_domain[Domain::Function.index()], FUNCTIONS);
        fill(&mut per_domain[Domain::Style.index()], STYLES);
        fill(&mut per_domain[Domain::Time.index()], TIMES);
        fill(&mut per_domain[Domain::Location.index()], LOCATIONS);
        fill(&mut per_domain[Domain::Event.index()], EVENTS);
        fill(&mut per_domain[Domain::Audience.index()], AUDIENCES);
        fill(&mut per_domain[Domain::Design.index()], DESIGNS);
        fill(&mut per_domain[Domain::Pattern.index()], PATTERNS);
        fill(&mut per_domain[Domain::Shape.index()], SHAPES);
        fill(&mut per_domain[Domain::Smell.index()], SMELLS);
        fill(&mut per_domain[Domain::Taste.index()], TASTES);
        fill(&mut per_domain[Domain::Nature.index()], NATURES);
        fill(&mut per_domain[Domain::Quantity.index()], QUANTITIES);
        fill(&mut per_domain[Domain::Modifier.index()], MODIFIERS);
        per_domain[Domain::Brand.index()] = synth_names(brands, &["wear", "labs", "co"], rng);
        per_domain[Domain::Ip.index()] = synth_names(ips, &["saga", "heroes", "world"], rng);
        per_domain[Domain::Organization.index()] = synth_names(orgs, &["group", "guild"], rng);
        Lexicon { per_domain }
    }

    /// Surfaces of a domain (empty for Category, which lives in
    /// [`crate::taxonomy::CategoryTree`]).
    pub fn terms(&self, d: Domain) -> &[String] {
        &self.per_domain[d.index()]
    }

    /// All `(surface, domain)` pairs across non-Category domains.
    pub fn all_terms(&self) -> impl Iterator<Item = (&str, Domain)> {
        Domain::ALL.iter().flat_map(move |&d| {
            self.per_domain[d.index()]
                .iter()
                .map(move |s| (s.as_str(), d))
        })
    }

    /// Domains that list `surface` (ambiguity probe).
    pub fn domains_of(&self, surface: &str) -> Vec<Domain> {
        Domain::ALL
            .iter()
            .copied()
            .filter(|&d| self.per_domain[d.index()].iter().any(|s| s == surface))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alicoco_nn::util::seeded_rng;

    #[test]
    fn lexicon_fills_all_expected_domains() {
        let lex = Lexicon::generate(50, 30, 10, &mut seeded_rng(1));
        for d in [Domain::Color, Domain::Event, Domain::Brand, Domain::Ip] {
            assert!(!lex.terms(d).is_empty(), "{} empty", d.name());
        }
        assert!(
            lex.terms(Domain::Category).is_empty(),
            "Category lives in the tree"
        );
        assert_eq!(lex.terms(Domain::Brand).len(), 50);
    }

    #[test]
    fn ambiguous_surfaces_exist() {
        let lex = Lexicon::generate(5, 5, 5, &mut seeded_rng(2));
        let village = lex.domains_of("village");
        assert!(village.contains(&Domain::Style));
        assert!(village.contains(&Domain::Location));
        let mocha = lex.domains_of("mocha");
        assert!(mocha.contains(&Domain::Color));
        assert!(mocha.contains(&Domain::Taste));
    }

    #[test]
    fn synth_names_are_unique_and_sized() {
        let names = synth_names(100, &["co"], &mut seeded_rng(3));
        assert_eq!(names.len(), 100);
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Lexicon::generate(20, 20, 5, &mut seeded_rng(7));
        let b = Lexicon::generate(20, 20, 5, &mut seeded_rng(7));
        assert_eq!(a.terms(Domain::Brand), b.terms(Domain::Brand));
    }
}
