//! Ground-truth e-commerce concept generation (§5, Table 1).
//!
//! Each concept candidate is generated from a pattern over primitive-concept
//! slots and labelled good/bad against the world's compatibility model. Bad
//! candidates come in the three flavours the paper's criteria (§5.1) are
//! designed to reject:
//!
//! - **implausible** — violates commonsense compatibility ("warm shoes for
//!   swimming"); only *knowledge* can catch these,
//! - **incoherent** — scrambled word order ("for kids keep warm"); language
//!   model features catch these,
//! - **no e-commerce meaning** — fluent but unshoppable ("blue sky").

use rand::seq::SliceRandom;
use rand::Rng;

use crate::domain::Domain;
use crate::items::ItemSpec;
use crate::lexicon;
use crate::world::{World, GIFT_OCCASIONS};

/// A slot of a concept: which tokens realize which primitive-concept domain.
#[derive(Clone, Debug, PartialEq)]
pub struct Slot {
    /// Domain.
    pub domain: Domain,
    /// Surface form of the primitive concept (may contain spaces).
    pub surface: String,
    /// Token range `[start, start+len)` in the concept's token list.
    pub start: usize,
    /// Len.
    pub len: usize,
}

/// Why a bad candidate is bad.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Defect {
    /// Violates compatibility ground truth.
    Implausible,
    /// Scrambled word order.
    Incoherent,
    /// No shopping meaning at all.
    NoMeaning,
}

/// A generated concept candidate with full ground truth.
#[derive(Clone, Debug)]
pub struct ConceptSpec {
    /// Tokens.
    pub tokens: Vec<String>,
    /// Slots.
    pub slots: Vec<Slot>,
    /// Pattern.
    pub pattern: &'static str,
    /// Good.
    pub good: bool,
    /// Defect.
    pub defect: Option<Defect>,
}

impl ConceptSpec {
    /// Surface text of the concept.
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }

    /// First slot of a given domain.
    pub fn slot(&self, d: Domain) -> Option<&Slot> {
        self.slots.iter().find(|s| s.domain == d)
    }
}

/// Non-commerce filler words for "no e-commerce meaning" negatives.
const FILLER: &[&str] = &[
    "sky",
    "cloud",
    "idea",
    "rumor",
    "story",
    "news",
    "sunshine",
    "opinion",
    "tuesday",
    "philosophy",
    "gossip",
    "silence",
    "gravity",
    "hens",
    "lay",
    "eggs",
];

struct Builder<'w, R: Rng> {
    world: &'w World,
    rng: R,
}

impl<'w, R: Rng> Builder<'w, R> {
    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.rng.gen_range(0..xs.len())]
    }

    fn random_leaf(&mut self) -> usize {
        self.world.random_leaf(&mut self.rng)
    }

    fn cat_slot(&self, cat: usize, start: usize) -> (Vec<String>, Slot) {
        let name = self.world.tree.name(cat);
        let tokens: Vec<String> = name.split(' ').map(String::from).collect();
        let len = tokens.len();
        (
            tokens,
            Slot {
                domain: Domain::Category,
                surface: name.to_string(),
                start,
                len,
            },
        )
    }

    /// `[Function] [Category] for [Event]` — "warm hat for traveling".
    fn fn_cat_event(&mut self) -> ConceptSpec {
        let e = self.pick(lexicon::EVENTS);
        // Bias toward the event's own gear and functions (mined concepts in
        // the paper come from real co-occurrences, not uniform sampling).
        let profile = self.world.event(e);
        let cat = match profile {
            Some(p) if !p.needs.is_empty() && self.rng.gen_bool(0.5) => {
                let need = p.needs[self.rng.gen_range(0..p.needs.len())];
                self.world.category(need).expect("event need resolves")
            }
            _ => self.random_leaf(),
        };
        let f = match profile {
            Some(p) if !p.functions.is_empty() && self.rng.gen_bool(0.5) => {
                p.functions[self.rng.gen_range(0..p.functions.len())]
            }
            _ => self.pick(lexicon::FUNCTIONS),
        };
        let (cat_tokens, cat_slot) = self.cat_slot(cat, 1);
        let mut tokens = vec![f.to_string()];
        tokens.extend(cat_tokens);
        let for_pos = tokens.len();
        tokens.push("for".into());
        tokens.push(e.to_string());
        let slots = vec![
            Slot {
                domain: Domain::Function,
                surface: f.into(),
                start: 0,
                len: 1,
            },
            cat_slot,
            Slot {
                domain: Domain::Event,
                surface: e.into(),
                start: for_pos + 1,
                len: 1,
            },
        ];
        let good = self.world.fn_event_ok(f, e)
            && self.world.fn_cat_ok(f, cat)
            && self.world.cat_event_ok(cat, e);
        ConceptSpec {
            tokens,
            slots,
            pattern: "fn_cat_for_event",
            good,
            defect: (!good).then_some(Defect::Implausible),
        }
    }

    /// `[Style] [Time] [Category]` — "british-style winter trench coat".
    fn style_time_cat(&mut self) -> ConceptSpec {
        let s = self.pick(lexicon::STYLES);
        let t = self.pick(&["winter", "summer", "spring", "autumn"]);
        let cat = self.random_leaf();
        let (cat_tokens, cat_slot) = self.cat_slot(cat, 2);
        let mut tokens = vec![s.to_string(), t.to_string()];
        tokens.extend(cat_tokens);
        let slots = vec![
            Slot {
                domain: Domain::Style,
                surface: s.into(),
                start: 0,
                len: 1,
            },
            Slot {
                domain: Domain::Time,
                surface: t.into(),
                start: 1,
                len: 1,
            },
            cat_slot,
        ];
        let good = self.world.cat_styled(cat) && self.world.cat_time_ok(cat, t);
        ConceptSpec {
            tokens,
            slots,
            pattern: "style_time_cat",
            good,
            defect: (!good).then_some(Defect::Implausible),
        }
    }

    /// `[Location] [Event]` — "outdoor barbecue".
    fn loc_event(&mut self) -> ConceptSpec {
        let l = self.pick(lexicon::LOCATIONS);
        let e = self.pick(lexicon::EVENTS);
        let tokens = vec![l.to_string(), e.to_string()];
        let slots = vec![
            Slot {
                domain: Domain::Location,
                surface: l.into(),
                start: 0,
                len: 1,
            },
            Slot {
                domain: Domain::Event,
                surface: e.into(),
                start: 1,
                len: 1,
            },
        ];
        let good = self.world.event_loc_ok(e, l);
        ConceptSpec {
            tokens,
            slots,
            pattern: "loc_event",
            good,
            defect: (!good).then_some(Defect::Implausible),
        }
    }

    /// `[Event] in [Location]` — "traveling in european".
    fn event_in_loc(&mut self) -> ConceptSpec {
        let e = self.pick(lexicon::EVENTS);
        let l = self.pick(lexicon::LOCATIONS);
        let tokens = vec![e.to_string(), "in".into(), l.to_string()];
        let slots = vec![
            Slot {
                domain: Domain::Event,
                surface: e.into(),
                start: 0,
                len: 1,
            },
            Slot {
                domain: Domain::Location,
                surface: l.into(),
                start: 2,
                len: 1,
            },
        ];
        let good = self.world.event_loc_ok(e, l);
        ConceptSpec {
            tokens,
            slots,
            pattern: "event_in_loc",
            good,
            defect: (!good).then_some(Defect::Implausible),
        }
    }

    /// `[Function] for [Audience]` — "health-care for elders".
    fn fn_aud(&mut self) -> ConceptSpec {
        let f = self.pick(lexicon::FUNCTIONS);
        let a = self.pick(lexicon::AUDIENCES);
        let tokens = vec![f.to_string(), "for".into(), a.to_string()];
        let slots = vec![
            Slot {
                domain: Domain::Function,
                surface: f.into(),
                start: 0,
                len: 1,
            },
            Slot {
                domain: Domain::Audience,
                surface: a.into(),
                start: 2,
                len: 1,
            },
        ];
        let good = self.world.fn_aud_ok(f, a);
        ConceptSpec {
            tokens,
            slots,
            pattern: "fn_for_aud",
            good,
            defect: (!good).then_some(Defect::Implausible),
        }
    }

    /// `[Time] gifts for [Audience]` — "christmas gifts for grandpa".
    fn time_gifts_aud(&mut self) -> ConceptSpec {
        let t = self.pick(lexicon::TIMES);
        let a = self.pick(lexicon::AUDIENCES);
        let tokens = vec![t.to_string(), "gifts".into(), "for".into(), a.to_string()];
        let slots = vec![
            Slot {
                domain: Domain::Time,
                surface: t.into(),
                start: 0,
                len: 1,
            },
            Slot {
                domain: Domain::Audience,
                surface: a.into(),
                start: 3,
                len: 1,
            },
        ];
        let good = GIFT_OCCASIONS.contains(&t) && !self.world.gift_needs(a).is_empty();
        ConceptSpec {
            tokens,
            slots,
            pattern: "time_gifts_for_aud",
            good,
            defect: (!good).then_some(Defect::Implausible),
        }
    }

    /// `[Color] [Material] [Category]` — "red cotton skirt".
    fn color_mat_cat(&mut self) -> ConceptSpec {
        let c = self.pick(lexicon::COLORS);
        let m = self.pick(lexicon::MATERIALS);
        let cat = self.random_leaf();
        let (cat_tokens, cat_slot) = self.cat_slot(cat, 2);
        let mut tokens = vec![c.to_string(), m.to_string()];
        tokens.extend(cat_tokens);
        let slots = vec![
            Slot {
                domain: Domain::Color,
                surface: c.into(),
                start: 0,
                len: 1,
            },
            Slot {
                domain: Domain::Material,
                surface: m.into(),
                start: 1,
                len: 1,
            },
            cat_slot,
        ];
        let good = self.world.cat_colored(cat) && self.world.material_cat_ok(m, cat);
        ConceptSpec {
            tokens,
            slots,
            pattern: "color_mat_cat",
            good,
            defect: (!good).then_some(Defect::Implausible),
        }
    }

    /// `[Style] [Category]` — "village skirt" (ambiguous surface on purpose).
    fn style_cat(&mut self) -> ConceptSpec {
        let s = self.pick(lexicon::STYLES);
        let cat = self.random_leaf();
        let (cat_tokens, cat_slot) = self.cat_slot(cat, 1);
        let mut tokens = vec![s.to_string()];
        tokens.extend(cat_tokens);
        let slots = vec![
            Slot {
                domain: Domain::Style,
                surface: s.into(),
                start: 0,
                len: 1,
            },
            cat_slot,
        ];
        let good = self.world.cat_styled(cat);
        ConceptSpec {
            tokens,
            slots,
            pattern: "style_cat",
            good,
            defect: (!good).then_some(Defect::Implausible),
        }
    }

    /// `[Time] [Event]` — "winter skiing".
    fn time_event(&mut self) -> ConceptSpec {
        let t = self.pick(lexicon::TIMES);
        let e = self.pick(lexicon::EVENTS);
        let tokens = vec![t.to_string(), e.to_string()];
        let slots = vec![
            Slot {
                domain: Domain::Time,
                surface: t.into(),
                start: 0,
                len: 1,
            },
            Slot {
                domain: Domain::Event,
                surface: e.into(),
                start: 1,
                len: 1,
            },
        ];
        let good = self.world.event_time_ok(e, t);
        ConceptSpec {
            tokens,
            slots,
            pattern: "time_event",
            good,
            defect: (!good).then_some(Defect::Implausible),
        }
    }

    /// Scramble a good concept into an incoherent negative.
    fn scramble(&mut self, spec: &ConceptSpec) -> Option<ConceptSpec> {
        if spec.tokens.len() < 3 {
            return None;
        }
        let mut tokens = spec.tokens.clone();
        for _ in 0..10 {
            tokens.shuffle(&mut self.rng);
            if tokens != spec.tokens {
                // Slots no longer hold; an incoherent candidate has none.
                return Some(ConceptSpec {
                    tokens,
                    slots: Vec::new(),
                    pattern: spec.pattern,
                    good: false,
                    defect: Some(Defect::Incoherent),
                });
            }
        }
        None
    }

    /// A fluent but unshoppable phrase ("blue sky").
    fn nonsense(&mut self) -> ConceptSpec {
        let n = 2 + self.rng.gen_range(0..2);
        let mut tokens: Vec<String> = Vec::with_capacity(n);
        if self.rng.gen_bool(0.4) {
            // Mix in one real primitive ("blue" in "blue sky").
            tokens.push(self.pick(lexicon::COLORS).to_string());
        }
        while tokens.len() < n {
            tokens.push(self.pick(FILLER).to_string());
        }
        ConceptSpec {
            tokens,
            slots: Vec::new(),
            pattern: "nonsense",
            good: false,
            defect: Some(Defect::NoMeaning),
        }
    }
}

/// Generate `num_good` good and `num_bad` bad concept candidates
/// (deduplicated by surface text; deterministic per `rng`).
pub fn generate_concepts<R: Rng>(
    world: &World,
    num_good: usize,
    num_bad: usize,
    rng: &mut R,
) -> Vec<ConceptSpec> {
    let mut b = Builder { world, rng };
    let mut good: Vec<ConceptSpec> = Vec::with_capacity(num_good);
    let mut bad: Vec<ConceptSpec> = Vec::with_capacity(num_bad);
    let mut seen = alicoco_nn::util::FxHashSet::default();
    let mut guard = 0usize;
    let max_iters = (num_good + num_bad) * 200;
    while (good.len() < num_good || bad.len() < num_bad) && guard < max_iters {
        guard += 1;
        let spec = match b.rng.gen_range(0..12u32) {
            0 | 1 => b.fn_cat_event(),
            2 => b.style_time_cat(),
            3 | 4 => b.loc_event(),
            5 => b.event_in_loc(),
            6 => b.fn_aud(),
            7 => b.time_gifts_aud(),
            8 => b.color_mat_cat(),
            9 => b.style_cat(),
            10 => b.time_event(),
            _ => b.nonsense(),
        };
        if spec.good {
            if good.len() < num_good && seen.insert(spec.text()) {
                // Also derive an incoherent negative from some good ones.
                if bad.len() < num_bad && b.rng.gen_bool(0.2) {
                    if let Some(scr) = b.scramble(&spec) {
                        if seen.insert(scr.text()) {
                            bad.push(scr);
                        }
                    }
                }
                good.push(spec);
            }
        } else if bad.len() < num_bad && seen.insert(spec.text()) {
            bad.push(spec);
        }
    }
    let mut all = good;
    all.extend(bad);
    all
}

/// Parse an arbitrary token sequence into `(pattern, slots)` if it matches
/// one of the known concept templates. This is how the labeling oracle
/// judges candidates produced by the mining pipeline (which are plain
/// strings, not [`ConceptSpec`]s).
pub fn parse_candidate(world: &World, tokens: &[String]) -> Option<(&'static str, Vec<Slot>)> {
    let dom = |t: &str| world.lexicon.domains_of(t);
    let has = |t: &str, d: Domain| dom(t).contains(&d);
    // Try to read a category (1–2 tokens) ending at the final token.
    let cat_at = |start: usize, tokens: &[String]| -> Option<Slot> {
        if start >= tokens.len() {
            return None;
        }
        let joined = tokens[start..].join(" ");
        if world.category(&joined).is_some() {
            return Some(Slot {
                domain: Domain::Category,
                surface: joined,
                start,
                len: tokens.len() - start,
            });
        }
        None
    };
    let one = |i: usize, d: Domain, tokens: &[String]| -> Slot {
        Slot {
            domain: d,
            surface: tokens[i].clone(),
            start: i,
            len: 1,
        }
    };
    let n = tokens.len();
    // [Time] gifts for [Audience]
    if n == 4
        && tokens[1] == "gifts"
        && tokens[2] == "for"
        && has(&tokens[0], Domain::Time)
        && has(&tokens[3], Domain::Audience)
    {
        return Some((
            "time_gifts_for_aud",
            vec![
                one(0, Domain::Time, tokens),
                one(3, Domain::Audience, tokens),
            ],
        ));
    }
    // [Function] for [Audience]
    if n == 3
        && tokens[1] == "for"
        && has(&tokens[0], Domain::Function)
        && has(&tokens[2], Domain::Audience)
    {
        return Some((
            "fn_for_aud",
            vec![
                one(0, Domain::Function, tokens),
                one(2, Domain::Audience, tokens),
            ],
        ));
    }
    // [Event] in [Location]
    if n == 3
        && tokens[1] == "in"
        && has(&tokens[0], Domain::Event)
        && has(&tokens[2], Domain::Location)
    {
        return Some((
            "event_in_loc",
            vec![
                one(0, Domain::Event, tokens),
                one(2, Domain::Location, tokens),
            ],
        ));
    }
    // [Function] [Category] for [Event]
    if n >= 4
        && has(&tokens[0], Domain::Function)
        && has(&tokens[n - 1], Domain::Event)
        && tokens[n - 2] == "for"
    {
        if let Some(cat) = cat_at(1, &tokens[..n - 2]) {
            return Some((
                "fn_cat_for_event",
                vec![
                    one(0, Domain::Function, tokens),
                    cat,
                    one(n - 1, Domain::Event, tokens),
                ],
            ));
        }
    }
    // [Location] [Event]
    if n == 2 && has(&tokens[0], Domain::Location) && has(&tokens[1], Domain::Event) {
        return Some((
            "loc_event",
            vec![
                one(0, Domain::Location, tokens),
                one(1, Domain::Event, tokens),
            ],
        ));
    }
    // [Time] [Event]
    if n == 2 && has(&tokens[0], Domain::Time) && has(&tokens[1], Domain::Event) {
        return Some((
            "time_event",
            vec![one(0, Domain::Time, tokens), one(1, Domain::Event, tokens)],
        ));
    }
    // [Style] [Time] [Category]
    if n >= 3 && has(&tokens[0], Domain::Style) && has(&tokens[1], Domain::Time) {
        if let Some(cat) = cat_at(2, tokens) {
            return Some((
                "style_time_cat",
                vec![
                    one(0, Domain::Style, tokens),
                    one(1, Domain::Time, tokens),
                    cat,
                ],
            ));
        }
    }
    // [Color] [Material] [Category]
    if n >= 3 && has(&tokens[0], Domain::Color) && has(&tokens[1], Domain::Material) {
        if let Some(cat) = cat_at(2, tokens) {
            return Some((
                "color_mat_cat",
                vec![
                    one(0, Domain::Color, tokens),
                    one(1, Domain::Material, tokens),
                    cat,
                ],
            ));
        }
    }
    // [Function] [Category]
    if n >= 2 && has(&tokens[0], Domain::Function) {
        if let Some(cat) = cat_at(1, tokens) {
            return Some(("fn_cat", vec![one(0, Domain::Function, tokens), cat]));
        }
    }
    // [Style] [Category]
    if n >= 2 && has(&tokens[0], Domain::Style) {
        if let Some(cat) = cat_at(1, tokens) {
            return Some(("style_cat", vec![one(0, Domain::Style, tokens), cat]));
        }
    }
    // [Material] [Category]
    if n >= 2 && has(&tokens[0], Domain::Material) {
        if let Some(cat) = cat_at(1, tokens) {
            return Some(("mat_cat", vec![one(0, Domain::Material, tokens), cat]));
        }
    }
    // [Color] [Category]
    if n >= 2 && has(&tokens[0], Domain::Color) {
        if let Some(cat) = cat_at(1, tokens) {
            return Some(("color_cat", vec![one(0, Domain::Color, tokens), cat]));
        }
    }
    None
}

/// Judge an arbitrary candidate token sequence against the ground truth:
/// it is a good e-commerce concept iff it parses into a known template *and*
/// the slot combination is plausible. This mirrors the per-pattern
/// conditions used during generation (a test asserts the two agree).
pub fn judge_tokens(world: &World, tokens: &[String]) -> bool {
    let Some((pattern, slots)) = parse_candidate(world, tokens) else {
        return false;
    };
    let get = |d: Domain| slots.iter().find(|s| s.domain == d);
    let cat_id = get(Domain::Category).and_then(|s| world.category(&s.surface));
    match pattern {
        "time_gifts_for_aud" => {
            let t = &get(Domain::Time).expect("time slot").surface;
            let a = &get(Domain::Audience).expect("aud slot").surface;
            GIFT_OCCASIONS.contains(&t.as_str()) && !world.gift_needs(a).is_empty()
        }
        "fn_for_aud" => world.fn_aud_ok(
            &get(Domain::Function).expect("fn").surface,
            &get(Domain::Audience).expect("aud").surface,
        ),
        "event_in_loc" | "loc_event" => world.event_loc_ok(
            &get(Domain::Event).expect("event").surface,
            &get(Domain::Location).expect("loc").surface,
        ),
        "time_event" => world.event_time_ok(
            &get(Domain::Event).expect("event").surface,
            &get(Domain::Time).expect("time").surface,
        ),
        "fn_cat_for_event" => {
            let f = &get(Domain::Function).expect("fn").surface;
            let e = &get(Domain::Event).expect("event").surface;
            let cat = cat_id.expect("category resolves");
            world.fn_event_ok(f, e) && world.fn_cat_ok(f, cat) && world.cat_event_ok(cat, e)
        }
        "style_time_cat" => {
            let cat = cat_id.expect("category resolves");
            world.cat_styled(cat)
                && world.cat_time_ok(cat, &get(Domain::Time).expect("time").surface)
        }
        "color_mat_cat" => {
            let cat = cat_id.expect("category resolves");
            world.cat_colored(cat)
                && world.material_cat_ok(&get(Domain::Material).expect("mat").surface, cat)
        }
        "fn_cat" => {
            let cat = cat_id.expect("category resolves");
            world.fn_cat_ok(&get(Domain::Function).expect("fn").surface, cat)
        }
        "style_cat" => world.cat_styled(cat_id.expect("category resolves")),
        "mat_cat" => {
            let cat = cat_id.expect("category resolves");
            world.material_cat_ok(&get(Domain::Material).expect("mat").surface, cat)
        }
        "color_cat" => world.cat_colored(cat_id.expect("category resolves")),
        _ => false,
    }
}

/// Ground-truth relevance between an e-commerce concept and an item — the
/// relation the semantic-matching model (§6) must learn.
pub fn concept_relevant_item(world: &World, concept: &ConceptSpec, item: &ItemSpec) -> bool {
    if !concept.good {
        return false;
    }
    // Category constraint.
    let cat_ok = if let Some(cs) = concept.slot(Domain::Category) {
        world
            .category(&cs.surface)
            .is_some_and(|cat| item.in_category(world, cat))
    } else if let Some(es) = concept.slot(Domain::Event) {
        world.event_needs(&es.surface, item.category)
    } else if concept.pattern == "time_gifts_for_aud" {
        let aud = concept
            .slot(Domain::Audience)
            .expect("gift pattern has audience");
        world
            .gift_needs(&aud.surface)
            .iter()
            .any(|&c| item.in_category(world, c))
    } else if let Some(fs) = concept.slot(Domain::Function) {
        // Pure function concepts ("health-care for elders"): any item with
        // the function.
        return item.functions.iter().any(|f| f == &fs.surface)
            && concept
                .slot(Domain::Audience)
                .is_none_or(|a| item.audience.as_deref().is_none_or(|ia| ia == a.surface));
    } else {
        return false;
    };
    if !cat_ok {
        return false;
    }
    // Attribute constraints.
    if let Some(f) = concept.slot(Domain::Function) {
        if !item.functions.iter().any(|x| x == &f.surface) {
            return false;
        }
    }
    if let Some(c) = concept.slot(Domain::Color) {
        if item.color.as_deref() != Some(c.surface.as_str()) {
            return false;
        }
    }
    if let Some(m) = concept.slot(Domain::Material) {
        if item.material.as_deref() != Some(m.surface.as_str()) {
            return false;
        }
    }
    if let Some(s) = concept.slot(Domain::Style) {
        if item.style.as_deref() != Some(s.surface.as_str()) {
            return false;
        }
    }
    if concept.pattern != "time_gifts_for_aud" {
        if let Some(a) = concept.slot(Domain::Audience) {
            if item.audience.as_deref().is_some_and(|ia| ia != a.surface) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::generate_items;
    use crate::world::WorldConfig;
    use alicoco_nn::util::seeded_rng;

    fn setup() -> (World, Vec<ConceptSpec>) {
        let w = World::generate(WorldConfig::tiny());
        let mut rng = seeded_rng(11);
        let concepts = generate_concepts(&w, 100, 100, &mut rng);
        (w, concepts)
    }

    #[test]
    fn generates_requested_counts() {
        let (_, concepts) = setup();
        let good = concepts.iter().filter(|c| c.good).count();
        let bad = concepts.len() - good;
        assert_eq!(good, 100);
        assert_eq!(bad, 100);
    }

    #[test]
    fn surfaces_are_unique() {
        let (_, concepts) = setup();
        let mut texts: Vec<String> = concepts.iter().map(|c| c.text()).collect();
        texts.sort();
        let before = texts.len();
        texts.dedup();
        assert_eq!(before, texts.len());
    }

    #[test]
    fn all_defect_kinds_are_produced() {
        let w = World::generate(WorldConfig::tiny());
        let mut rng = seeded_rng(12);
        let concepts = generate_concepts(&w, 200, 200, &mut rng);
        let has = |d: Defect| concepts.iter().any(|c| c.defect == Some(d));
        assert!(has(Defect::Implausible));
        assert!(has(Defect::Incoherent));
        assert!(has(Defect::NoMeaning));
    }

    #[test]
    fn slots_align_with_tokens() {
        let (_, concepts) = setup();
        for c in &concepts {
            for s in &c.slots {
                assert!(
                    s.start + s.len <= c.tokens.len(),
                    "slot out of range in {:?}",
                    c.text()
                );
                let joined = c.tokens[s.start..s.start + s.len].join(" ");
                assert_eq!(joined, s.surface, "slot mismatch in {:?}", c.text());
            }
        }
    }

    #[test]
    fn good_concepts_satisfy_compat() {
        let (w, concepts) = setup();
        for c in concepts.iter().filter(|c| c.good) {
            if c.pattern == "loc_event" || c.pattern == "event_in_loc" {
                let e = c.slot(Domain::Event).unwrap();
                let l = c.slot(Domain::Location).unwrap();
                assert!(
                    w.event_loc_ok(&e.surface, &l.surface),
                    "bad good concept {}",
                    c.text()
                );
            }
        }
    }

    #[test]
    fn relevance_respects_semantic_drift() {
        // "outdoor barbecue" must match charcoal items but not, say, lipstick.
        let w = World::generate(WorldConfig::tiny());
        let concept = ConceptSpec {
            tokens: vec!["outdoor".into(), "barbecue".into()],
            slots: vec![
                Slot {
                    domain: Domain::Location,
                    surface: "outdoor".into(),
                    start: 0,
                    len: 1,
                },
                Slot {
                    domain: Domain::Event,
                    surface: "barbecue".into(),
                    start: 1,
                    len: 1,
                },
            ],
            pattern: "loc_event",
            good: true,
            defect: None,
        };
        let items = generate_items(&w, 500, &mut seeded_rng(5));
        let charcoal = w.category("charcoal").unwrap();
        let lipstick = w.category("lipstick").unwrap();
        let mut saw_charcoal = false;
        for it in &items {
            let rel = concept_relevant_item(&w, &concept, it);
            // Compound expansion may have made "charcoal" an internal node;
            // items sit on its compound children.
            if it.in_category(&w, charcoal) {
                assert!(rel, "charcoal item must be relevant to outdoor barbecue");
                saw_charcoal = true;
            }
            if it.in_category(&w, lipstick) {
                assert!(!rel, "lipstick is not barbecue gear");
            }
        }
        assert!(saw_charcoal, "no charcoal item generated");
    }

    #[test]
    fn bad_concepts_match_nothing() {
        let (w, concepts) = setup();
        let items = generate_items(&w, 100, &mut seeded_rng(6));
        for c in concepts.iter().filter(|c| !c.good) {
            for it in &items {
                assert!(!concept_relevant_item(&w, c, it));
            }
        }
    }

    #[test]
    fn function_slot_filters_items() {
        let w = World::generate(WorldConfig::tiny());
        let hat = w.category("hat").unwrap();
        let concept = ConceptSpec {
            tokens: vec![
                "warm".into(),
                "hat".into(),
                "for".into(),
                "traveling".into(),
            ],
            slots: vec![
                Slot {
                    domain: Domain::Function,
                    surface: "warm".into(),
                    start: 0,
                    len: 1,
                },
                Slot {
                    domain: Domain::Category,
                    surface: "hat".into(),
                    start: 1,
                    len: 1,
                },
                Slot {
                    domain: Domain::Event,
                    surface: "traveling".into(),
                    start: 3,
                    len: 1,
                },
            ],
            pattern: "fn_cat_for_event",
            good: true,
            defect: None,
        };
        let items = generate_items(&w, 800, &mut seeded_rng(7));
        for it in &items {
            let rel = concept_relevant_item(&w, &concept, it);
            if rel {
                assert!(it.in_category(&w, hat));
                assert!(it.functions.iter().any(|f| f == "warm"));
            }
        }
    }
}
