//! Microbenchmarks of the text substrate: segmentation, BM25 retrieval,
//! phrase mining, perplexity scoring, and Hearst-pattern extraction.

use alicoco_corpus::Dataset;
use alicoco_text::bm25::{Bm25Index, Bm25Params};
use alicoco_text::hearst;
use alicoco_text::lm::NgramLm;
use alicoco_text::phrase::{mine, PhraseMinerConfig};
use alicoco_text::segment::MaxMatchSegmenter;
use alicoco_text::vocab::Vocab;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_text(c: &mut Criterion) {
    let ds = Dataset::tiny();
    let refs: Vec<&[String]> = ds.corpora.all_sentences().map(|s| s.as_slice()).collect();
    let vocab = Vocab::from_corpus(refs.iter().copied(), 1);
    let encoded: Vec<Vec<usize>> = refs.iter().map(|s| vocab.encode(s)).collect();

    // Segmentation over an unspaced concatenation of lexicon entries.
    let seg =
        MaxMatchSegmenter::from_entries(ds.world.lexicon.all_terms().map(|(s, _)| s.to_string()));
    let text = "waterproofoutdoorbarbecuewinterredcotton";
    c.bench_function("text/max_match_segment", |b| {
        b.iter(|| black_box(seg.segment(black_box(text))))
    });

    // BM25 index over item titles.
    let docs: Vec<Vec<usize>> = ds.items.iter().map(|it| vocab.encode(&it.title)).collect();
    let index = Bm25Index::build(&docs, Bm25Params::default());
    let query = vocab.encode(&["red".to_string(), "cotton".to_string(), "skirt".to_string()]);
    c.bench_function("text/bm25_search_top10", |b| {
        b.iter(|| black_box(index.search(black_box(&query), 10)))
    });
    c.bench_function("text/bm25_build_500_docs", |b| {
        b.iter(|| black_box(Bm25Index::build(black_box(&docs), Bm25Params::default())))
    });

    // Phrase mining over the full corpus.
    c.bench_function("text/phrase_mining", |b| {
        b.iter(|| black_box(mine(black_box(&encoded), &PhraseMinerConfig::default())))
    });

    // Trigram LM training + perplexity.
    c.bench_function("text/lm_train", |b| {
        b.iter(|| black_box(NgramLm::train(black_box(&encoded), vocab.len())))
    });
    let lm = NgramLm::train(&encoded, vocab.len());
    let sent = vocab.encode(&["outdoor".to_string(), "barbecue".to_string()]);
    c.bench_function("text/lm_perplexity", |b| {
        b.iter(|| black_box(lm.perplexity(black_box(&sent))))
    });

    // Hearst extraction over the guide corpus.
    let guides: Vec<&[String]> = ds.corpora.guides.iter().map(|s| s.as_slice()).collect();
    c.bench_function("text/hearst_extract", |b| {
        b.iter(|| {
            black_box(hearst::extract_from_corpus(black_box(
                guides.iter().copied(),
            )))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_text
}
criterion_main!(benches);
