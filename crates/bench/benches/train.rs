//! Training throughput of the five construction models through the shared
//! `nn::train::Trainer`, comparing 1 worker against N workers on the same
//! batched configuration. Before anything is timed, the final parameters of
//! both runs are asserted byte-identical — the engine's determinism
//! contract — so any speedup never comes from result drift. Emits
//! `BENCH_train.json` at the workspace root with examples/sec per model,
//! plus the machine context (`cpus`, `threads`) that the perf gate uses to
//! decide which speedup floor applies: on a single-CPU box the engine runs
//! inline and speedups hover at parity, while multi-core machines must
//! show a real win.
//!
//! `TRAIN_BENCH_WORKERS` overrides the compared worker count (CI pins it
//! to 4 so bench-smoke exercises the pooled path deterministically).

use alicoco_corpus::Dataset;
use alicoco_mining::congen::{classification_splits, ClassifierConfig, ConceptClassifier};
use alicoco_mining::hypernym::{HypernymDataset, ProjectionConfig, ProjectionModel};
use alicoco_mining::matching::{
    build_matching_dataset, MatchingDataConfig, OursConfig, OursMatcher,
};
use alicoco_mining::resources::{Resources, ResourcesConfig};
use alicoco_mining::tagging::{
    tagging_splits, AmbiguityIndex, ConceptTagger, ContextIndex, TaggerConfig,
};
use alicoco_mining::vocab_mining::{
    distant_supervision, KnownLexicon, VocabMiner, VocabMinerConfig,
};
use alicoco_nn::util::seeded_rng;
use alicoco_nn::{planned_threads, EpochStats, Tensor, TrainConfig};
use std::time::Instant;

const SEED: u64 = 20200614;
const BATCH: usize = 8;

/// One timed training run: examples per epoch, wall clock, final params,
/// and the engine's per-epoch stage telemetry.
struct Run {
    examples: usize,
    epochs: usize,
    secs: f64,
    params: Vec<Tensor>,
    stats: Vec<EpochStats>,
}

struct ModelResult {
    name: &'static str,
    base: Run,
    par: Run,
}

fn sharded(train: TrainConfig, workers: usize) -> TrainConfig {
    train.with_batch_size(BATCH).with_workers(workers)
}

fn time_run(
    examples: usize,
    epochs: usize,
    f: impl FnOnce() -> (Vec<Tensor>, Vec<EpochStats>),
) -> Run {
    let t = Instant::now();
    let (params, stats) = f();
    Run {
        examples,
        epochs,
        secs: t.elapsed().as_secs_f64(),
        params,
        stats,
    }
}

fn stage_shares(stats: &[EpochStats]) -> (f64, f64, f64) {
    let fwd: u64 = stats.iter().map(|s| s.forward_ns).sum();
    let merge: u64 = stats.iter().map(|s| s.merge_ns).sum();
    let step: u64 = stats.iter().map(|s| s.step_ns).sum();
    let total = (fwd + merge + step).max(1) as f64;
    (
        100.0 * fwd as f64 / total,
        100.0 * merge as f64 / total,
        100.0 * step as f64 / total,
    )
}

/// Fastest of three runs: each call builds a fresh seeded model, so the
/// repeats are identical work and min-time filters out scheduler spikes —
/// a single slow sample on a shared runner would otherwise swing the
/// speedup ratio by tenths.
fn best_of_3(run_with: &impl Fn(usize) -> Run, workers: usize) -> Run {
    (0..3)
        .map(|_| run_with(workers))
        .min_by(|a, b| a.secs.total_cmp(&b.secs))
        .expect("three runs produce a minimum")
}

fn bench_model(name: &'static str, workers: usize, run_with: impl Fn(usize) -> Run) -> ModelResult {
    let base = best_of_3(&run_with, 1);
    let par = best_of_3(&run_with, workers);
    for (a, b) in base.params.iter().zip(&par.params) {
        assert_eq!(
            a.data(),
            b.data(),
            "{name}: parameters diverged between 1 and {workers} workers"
        );
    }
    let (fwd, merge, step) = stage_shares(&par.stats);
    println!(
        "train/{name}: {:.0} ex/s @ 1 worker, {:.0} ex/s @ {workers} workers ({:.2}x), parity OK \
         [stages @ {workers}w: forward {fwd:.0}%, merge {merge:.0}%, step {step:.0}%]",
        base.rate(),
        par.rate(),
        base.secs / par.secs.max(1e-9),
    );
    ModelResult { name, base, par }
}

impl Run {
    fn rate(&self) -> f64 {
        (self.examples * self.epochs) as f64 / self.secs.max(1e-9)
    }
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = std::env::var("TRAIN_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w >= 2)
        .unwrap_or_else(|| cpus.clamp(2, 4));
    let threads = planned_threads(workers);
    let ds = Dataset::tiny();
    let res = Resources::build(&ds, ResourcesConfig::default());

    // Shared datasets, built once with a fixed seed so both runs of each
    // model train on identical examples.
    let mut rng = seeded_rng(SEED);
    let (known, _) = KnownLexicon::sample(&ds, 0.75, &mut rng);
    let sentences: Vec<Vec<String>> = ds.corpora.all_sentences().cloned().collect();
    let miner_data = distant_supervision(&known, &sentences, 300);

    let mut rng = seeded_rng(SEED);
    let hyp_data = HypernymDataset::build(&ds, &res, &mut rng);
    let triples = hyp_data.labeled_pairs(&hyp_data.train_pos, 6, &mut rng);

    let mut rng = seeded_rng(SEED);
    let cls_data = classification_splits(&ds, &mut rng).0;

    let mut rng = seeded_rng(SEED);
    let (tag_data, _, _) = tagging_splits(&ds, &mut rng);
    let amb = AmbiguityIndex::build(&ds);
    let ctx_words: Vec<String> = tag_data
        .iter()
        .flat_map(|e| e.tokens.iter().cloned())
        .collect();
    let ctx = ContextIndex::build(&res, &ds, ctx_words.iter().map(String::as_str), 3);

    let match_data = build_matching_dataset(&ds, &MatchingDataConfig::default());

    let results = [
        bench_model("vocab_miner", workers, |w| {
            let cfg = VocabMinerConfig {
                train: sharded(VocabMinerConfig::default().train.with_epochs(1), w),
                ..Default::default()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = VocabMiner::new(&res, cfg);
            time_run(miner_data.len(), 1, || {
                let stats = m.train(&res, &miner_data, &mut rng);
                (m.params().snapshot(), stats)
            })
        }),
        bench_model("hypernym_projection", workers, |w| {
            let cfg = ProjectionConfig {
                train: sharded(ProjectionConfig::default().train.with_epochs(2), w),
                ..Default::default()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = ProjectionModel::new(res.word_vectors.dim(), cfg);
            time_run(triples.len(), 2, || {
                let stats = m.train(&hyp_data, &triples, &mut rng);
                (m.params().snapshot(), stats)
            })
        }),
        bench_model("concept_classifier", workers, |w| {
            let cfg = ClassifierConfig {
                train: sharded(ClassifierConfig::full().train.with_epochs(2), w),
                ..ClassifierConfig::full()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = ConceptClassifier::new(&res, cfg);
            time_run(cls_data.len(), 2, || {
                let stats = m.train(&res, &cls_data, &mut rng);
                (m.params().snapshot(), stats)
            })
        }),
        bench_model("concept_tagger", workers, |w| {
            let cfg = TaggerConfig {
                train: sharded(TaggerConfig::full().train.with_epochs(1), w),
                ..TaggerConfig::full()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = ConceptTagger::new(&res, cfg);
            time_run(tag_data.len(), 1, || {
                let stats = m.train(&res, &ctx, &amb, &tag_data, &mut rng);
                (m.params().snapshot(), stats)
            })
        }),
        bench_model("semantic_matcher", workers, |w| {
            let cfg = OursConfig {
                train: sharded(OursConfig::default().train.with_epochs(1), w),
                ..Default::default()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = OursMatcher::new(&res, cfg);
            time_run(match_data.train.len(), 1, || {
                let stats = m.train(&res, &match_data, &mut rng);
                (m.params().snapshot(), stats)
            })
        }),
    ];

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"batch_size\": {BATCH},\n  \"workers_compared\": [1, {workers}],\n  \
         \"cpus\": {cpus},\n  \"threads\": {threads},\n  \"models\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        // `examples_per_sec_parallel` (not `..._{workers}_workers`) so the
        // key is stable across machines with different core counts —
        // bench-compare diffs these names against a checked-in baseline.
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"examples\": {}, \"epochs\": {}, \"workers\": {workers}, \
             \"examples_per_sec_1_worker\": {:.2}, \"examples_per_sec_parallel\": {:.2}, \
             \"speedup\": {:.3}, \"parity\": true}}{}\n",
            r.name,
            r.base.examples,
            r.base.epochs,
            r.base.rate(),
            r.par.rate(),
            r.base.secs / r.par.secs.max(1e-9),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    std::fs::write(out, &json).expect("write BENCH_train.json");
    println!("train/summary: wrote {out} (cpus {cpus}, threads {threads})");
}
