//! Training throughput of the five construction models through the shared
//! `nn::train::Trainer`, comparing 1 worker against N workers on the same
//! batched configuration. Before anything is timed, the final parameters of
//! both runs are asserted byte-identical — the engine's determinism
//! contract — so any speedup never comes from result drift. Emits
//! `BENCH_train.json` at the workspace root with examples/sec per model.

use alicoco_corpus::Dataset;
use alicoco_mining::congen::{classification_splits, ClassifierConfig, ConceptClassifier};
use alicoco_mining::hypernym::{HypernymDataset, ProjectionConfig, ProjectionModel};
use alicoco_mining::matching::{
    build_matching_dataset, MatchingDataConfig, OursConfig, OursMatcher,
};
use alicoco_mining::resources::{Resources, ResourcesConfig};
use alicoco_mining::tagging::{
    tagging_splits, AmbiguityIndex, ConceptTagger, ContextIndex, TaggerConfig,
};
use alicoco_mining::vocab_mining::{
    distant_supervision, KnownLexicon, VocabMiner, VocabMinerConfig,
};
use alicoco_nn::util::seeded_rng;
use alicoco_nn::{Tensor, TrainConfig};
use std::time::Instant;

const SEED: u64 = 20200614;
const BATCH: usize = 8;

/// One timed training run: returns (examples_trained_per_epoch, secs, params).
struct Run {
    examples: usize,
    epochs: usize,
    secs: f64,
    params: Vec<Tensor>,
}

struct ModelResult {
    name: &'static str,
    base: Run,
    par: Run,
}

fn sharded(train: TrainConfig, workers: usize) -> TrainConfig {
    train.with_batch_size(BATCH).with_workers(workers)
}

fn time_run(examples: usize, epochs: usize, f: impl FnOnce() -> Vec<Tensor>) -> Run {
    let t = Instant::now();
    let params = f();
    Run {
        examples,
        epochs,
        secs: t.elapsed().as_secs_f64(),
        params,
    }
}

fn bench_model(name: &'static str, workers: usize, run_with: impl Fn(usize) -> Run) -> ModelResult {
    let base = run_with(1);
    let par = run_with(workers);
    for (a, b) in base.params.iter().zip(&par.params) {
        assert_eq!(
            a.data(),
            b.data(),
            "{name}: parameters diverged between 1 and {workers} workers"
        );
    }
    println!(
        "train/{name}: {:.0} ex/s @ 1 worker, {:.0} ex/s @ {workers} workers ({:.2}x), parity OK",
        base.rate(),
        par.rate(),
        base.secs / par.secs.max(1e-9),
    );
    ModelResult { name, base, par }
}

impl Run {
    fn rate(&self) -> f64 {
        (self.examples * self.epochs) as f64 / self.secs.max(1e-9)
    }
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1)
        .max(2);
    let ds = Dataset::tiny();
    let res = Resources::build(&ds, ResourcesConfig::default());

    // Shared datasets, built once with a fixed seed so both runs of each
    // model train on identical examples.
    let mut rng = seeded_rng(SEED);
    let (known, _) = KnownLexicon::sample(&ds, 0.75, &mut rng);
    let sentences: Vec<Vec<String>> = ds.corpora.all_sentences().cloned().collect();
    let miner_data = distant_supervision(&known, &sentences, 300);

    let mut rng = seeded_rng(SEED);
    let hyp_data = HypernymDataset::build(&ds, &res, &mut rng);
    let triples = hyp_data.labeled_pairs(&hyp_data.train_pos, 6, &mut rng);

    let mut rng = seeded_rng(SEED);
    let cls_data = classification_splits(&ds, &mut rng).0;

    let mut rng = seeded_rng(SEED);
    let (tag_data, _, _) = tagging_splits(&ds, &mut rng);
    let amb = AmbiguityIndex::build(&ds);
    let ctx_words: Vec<String> = tag_data
        .iter()
        .flat_map(|e| e.tokens.iter().cloned())
        .collect();
    let ctx = ContextIndex::build(&res, &ds, ctx_words.iter().map(String::as_str), 3);

    let match_data = build_matching_dataset(&ds, &MatchingDataConfig::default());

    let results = [
        bench_model("vocab_miner", workers, |w| {
            let cfg = VocabMinerConfig {
                train: sharded(VocabMinerConfig::default().train.with_epochs(1), w),
                ..Default::default()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = VocabMiner::new(&res, cfg);
            time_run(miner_data.len(), 1, || {
                m.train(&res, &miner_data, &mut rng);
                m.params().snapshot()
            })
        }),
        bench_model("hypernym_projection", workers, |w| {
            let cfg = ProjectionConfig {
                train: sharded(ProjectionConfig::default().train.with_epochs(2), w),
                ..Default::default()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = ProjectionModel::new(res.word_vectors.dim(), cfg);
            time_run(triples.len(), 2, || {
                m.train(&hyp_data, &triples, &mut rng);
                m.params().snapshot()
            })
        }),
        bench_model("concept_classifier", workers, |w| {
            let cfg = ClassifierConfig {
                train: sharded(ClassifierConfig::full().train.with_epochs(2), w),
                ..ClassifierConfig::full()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = ConceptClassifier::new(&res, cfg);
            time_run(cls_data.len(), 2, || {
                m.train(&res, &cls_data, &mut rng);
                m.params().snapshot()
            })
        }),
        bench_model("concept_tagger", workers, |w| {
            let cfg = TaggerConfig {
                train: sharded(TaggerConfig::full().train.with_epochs(1), w),
                ..TaggerConfig::full()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = ConceptTagger::new(&res, cfg);
            time_run(tag_data.len(), 1, || {
                m.train(&res, &ctx, &amb, &tag_data, &mut rng);
                m.params().snapshot()
            })
        }),
        bench_model("semantic_matcher", workers, |w| {
            let cfg = OursConfig {
                train: sharded(OursConfig::default().train.with_epochs(1), w),
                ..Default::default()
            };
            let mut rng = seeded_rng(SEED);
            let mut m = OursMatcher::new(&res, cfg);
            time_run(match_data.train.len(), 1, || {
                m.train(&res, &match_data, &mut rng);
                m.params().snapshot()
            })
        }),
    ];

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"batch_size\": {BATCH},\n  \"workers_compared\": [1, {workers}],\n  \"models\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        // `examples_per_sec_parallel` (not `..._{workers}_workers`) so the
        // key is stable across machines with different core counts —
        // bench-compare diffs these names against a checked-in baseline.
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"examples\": {}, \"epochs\": {}, \"workers\": {workers}, \
             \"examples_per_sec_1_worker\": {:.2}, \"examples_per_sec_parallel\": {:.2}, \
             \"speedup\": {:.3}, \"parity\": true}}{}\n",
            r.name,
            r.base.examples,
            r.base.epochs,
            r.base.rate(),
            r.par.rate(),
            r.base.secs / r.par.secs.max(1e-9),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    std::fs::write(out, &json).expect("write BENCH_train.json");
    println!("train/summary: wrote {out}");
}
