//! Microbenchmarks of the concept-net data structure: lookups, traversals,
//! coverage evaluation, statistics, implication mining, and snapshot IO.

use alicoco::coverage::{evaluate, FullVocabulary};
use alicoco::infer::{mine_implications, InferConfig};
use alicoco::{AliCoCo, Stats};
use alicoco_corpus::{concept_relevant_item, Dataset};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Build a ground-truth-populated net (no model training) for benching.
fn ground_truth_kg(ds: &Dataset) -> AliCoCo {
    let mut kg = AliCoCo::new();
    let root = kg.add_class("concept", None);
    let mut domain_class = Vec::new();
    for d in alicoco_corpus::Domain::ALL {
        domain_class.push(kg.add_class(d.name(), Some(root)));
    }
    for (surface, d) in ds.world.lexicon.all_terms() {
        kg.add_primitive(surface, domain_class[d.index()]);
    }
    let cat = domain_class[alicoco_corpus::Domain::Category.index()];
    let mut prim_of_node = std::collections::HashMap::new();
    for id in ds.world.tree.ids().skip(1) {
        prim_of_node.insert(id, kg.add_primitive(ds.world.tree.name(id), cat));
    }
    for (child, parent) in ds.world.tree.is_a_edges() {
        if parent == 0 {
            continue;
        }
        kg.add_primitive_is_a(prim_of_node[&child], prim_of_node[&parent]);
    }
    let item_ids: Vec<_> = ds.items.iter().map(|it| kg.add_item(&it.title)).collect();
    for (it, &iid) in ds.items.iter().zip(&item_ids) {
        kg.link_item_primitive(iid, prim_of_node[&it.category]);
    }
    for spec in ds.concepts.iter().filter(|c| c.good) {
        let cid = kg.add_concept(&spec.text());
        for s in &spec.slots {
            for &p in kg.primitives_by_name(&s.surface).to_vec().iter() {
                kg.link_concept_primitive(cid, p);
            }
        }
        for (ii, it) in ds.items.iter().enumerate().take(300) {
            if concept_relevant_item(&ds.world, spec, it) {
                kg.link_concept_item(cid, item_ids[ii], 0.9);
            }
        }
    }
    kg
}

fn bench_kg(c: &mut Criterion) {
    let ds = Dataset::tiny();
    let kg = ground_truth_kg(&ds);
    let names: Vec<&str> = ["grill", "outdoor", "barbecue", "red", "village"].to_vec();

    c.bench_function("kg/primitive_name_lookup", |b| {
        b.iter(|| {
            for n in &names {
                black_box(kg.primitives_by_name(black_box(n)));
            }
        })
    });

    let concept = kg
        .concept_ids()
        .find(|&c| !kg.concept(c).items.is_empty())
        .unwrap();
    c.bench_function("kg/items_for_concept", |b| {
        b.iter(|| black_box(kg.items_for_concept(black_box(concept))))
    });

    let deep = kg
        .primitive_ids()
        .max_by_key(|&p| kg.primitive_ancestors(p).len())
        .unwrap();
    c.bench_function("kg/primitive_ancestors", |b| {
        b.iter(|| black_box(kg.primitive_ancestors(black_box(deep))))
    });

    let queries: Vec<Vec<String>> = ds.corpora.queries.iter().take(200).cloned().collect();
    c.bench_function("kg/coverage_200_queries", |b| {
        let vocab = FullVocabulary::new(&kg);
        b.iter(|| black_box(evaluate(&vocab, black_box(&queries))))
    });

    c.bench_function("kg/stats", |b| {
        b.iter(|| black_box(Stats::compute(black_box(&kg))))
    });

    c.bench_function("kg/mine_implications", |b| {
        b.iter(|| black_box(mine_implications(black_box(&kg), &InferConfig::default())))
    });

    c.bench_function("kg/snapshot_save", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            alicoco::snapshot::save(black_box(&kg), &mut buf).unwrap();
            black_box(buf)
        })
    });

    let mut buf = Vec::new();
    alicoco::snapshot::save(&kg, &mut buf).unwrap();
    c.bench_function("kg/snapshot_load", |b| {
        b.iter(|| black_box(alicoco::snapshot::load(&mut black_box(buf.as_slice())).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kg
}
criterion_main!(benches);
