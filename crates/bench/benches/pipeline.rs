//! Coarse-grained benchmarks: synthetic-world generation, shared-resource
//! training, and the full construction pipeline on the tiny world.

use alicoco_corpus::{Dataset, WorldConfig};
use alicoco_mining::congen::ClassifierConfig;
use alicoco_mining::hypernym::ProjectionConfig;
use alicoco_mining::matching::OursConfig;
use alicoco_mining::pipeline::{build_alicoco, PipelineConfig};
use alicoco_mining::resources::{Resources, ResourcesConfig};
use alicoco_mining::tagging::TaggerConfig;
use alicoco_mining::vocab_mining::VocabMinerConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("pipeline/dataset_generate_tiny", |b| {
        b.iter(|| black_box(Dataset::generate(black_box(WorldConfig::tiny()))))
    });

    let ds = Dataset::tiny();
    c.bench_function("pipeline/resources_build", |b| {
        b.iter(|| black_box(Resources::build(black_box(&ds), ResourcesConfig::default())))
    });

    let fast = PipelineConfig {
        miner: VocabMinerConfig {
            train: VocabMinerConfig::default().train.with_epochs(1),
            ..Default::default()
        },
        projection: ProjectionConfig {
            train: ProjectionConfig::default().train.with_epochs(2),
            ..Default::default()
        },
        classifier: ClassifierConfig {
            train: ClassifierConfig::full().train.with_epochs(3),
            ..ClassifierConfig::full()
        },
        tagger: TaggerConfig {
            train: TaggerConfig::full().train.with_epochs(1),
            ..TaggerConfig::full()
        },
        matcher: OursConfig {
            train: OursConfig::default().train.with_epochs(1),
            ..Default::default()
        },
        pattern_candidates: 100,
        item_candidates: 10,
        ..Default::default()
    };
    c.bench_function("pipeline/build_alicoco_tiny", |b| {
        b.iter(|| black_box(build_alicoco(black_box(&ds), &fast)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
