//! Serving-path observability bench: on a 50k-concept world, measures the
//! overhead of the instrumented search engine against the uninstrumented
//! one (asserting identical answers first and gating the overhead under a
//! few percent), then reports per-stage latency percentiles straight from
//! the metric registry plus batch/QA/recommendation numbers. Emits
//! `BENCH_serving.json` at the workspace root for the CI perf gate.

use std::time::Instant;

use alicoco_apps::{
    CognitiveRecommender, RecommendConfig, ScenarioQa, SearchConfig, SemanticSearch,
};
use alicoco_bench::{scale_vocab, scale_world};
use alicoco_obs::Registry;

const N_CONCEPTS: usize = 50_000;
const QUERIES: usize = 512;
const ROUNDS: usize = 7;
const BATCH: usize = 64;
const MAX_OVERHEAD_PCT: f64 = 5.0;

fn queries(n: usize) -> Vec<String> {
    let vocab = scale_vocab();
    (0..n)
        .map(|i| {
            format!(
                "{} {}",
                vocab[(i * 31) % vocab.len()],
                vocab[(i * 17 + 5) % vocab.len()]
            )
        })
        .collect()
}

/// Wall-clock seconds of one full pass over the query set.
fn round_secs(engine: &SemanticSearch, refs: &[&str]) -> f64 {
    let t = Instant::now();
    for q in refs {
        std::hint::black_box(engine.search(q));
    }
    t.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let kg = scale_world(N_CONCEPTS);
    let plain = SemanticSearch::new(&kg, SearchConfig::default());
    let registry = Registry::new();
    let instrumented = SemanticSearch::with_metrics(&kg, SearchConfig::default(), &registry);

    let qs = queries(QUERIES);
    let refs: Vec<&str> = qs.iter().map(String::as_str).collect();

    // Correctness gate before any timing: instrumentation must never
    // change an answer.
    for q in &refs {
        assert_eq!(
            plain.search(q),
            instrumented.search(q),
            "instrumented search diverged on {q:?}"
        );
    }

    // Interleaved rounds so drift (cache warmup, frequency scaling) hits
    // both engines equally; medians damp outlier rounds.
    let mut plain_rounds = Vec::with_capacity(ROUNDS);
    let mut instr_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        plain_rounds.push(round_secs(&plain, &refs));
        instr_rounds.push(round_secs(&instrumented, &refs));
    }
    let plain_med = median(plain_rounds);
    let instr_med = median(instr_rounds);
    let overhead_pct = (instr_med - plain_med) / plain_med * 100.0;
    println!(
        "serving/overhead: {:.2} us/query plain, {:.2} us/query instrumented ({overhead_pct:+.2}%)",
        plain_med / QUERIES as f64 * 1e6,
        instr_med / QUERIES as f64 * 1e6,
    );
    assert!(
        overhead_pct < MAX_OVERHEAD_PCT,
        "metrics overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget"
    );

    // Per-stage percentiles straight from the registry the timed rounds
    // populated.
    let retrieve = registry.histogram("search.retrieve_ns").snapshot();
    let score = registry.histogram("search.score_ns").snapshot();
    let rank = registry.histogram("search.rank_ns").snapshot();
    for (stage, snap) in [("retrieve", &retrieve), ("score", &score), ("rank", &rank)] {
        println!(
            "serving/search_{stage}: p50 {} ns, p90 {} ns, p99 {} ns over {} queries",
            snap.p50, snap.p90, snap.p99, snap.count
        );
    }

    // Batch throughput over the first 64 queries.
    let batch: Vec<&str> = refs[..BATCH].to_vec();
    let t = Instant::now();
    let mut batch_runs = 0usize;
    while batch_runs < 20 {
        std::hint::black_box(instrumented.search_batch(&batch));
        batch_runs += 1;
    }
    let batch_secs = t.elapsed().as_secs_f64() / batch_runs as f64;
    let batch_qps = BATCH as f64 / batch_secs;
    println!("serving/batch: {batch_qps:.0} queries/sec over {BATCH}-query batches");

    // QA and recommendation latency percentiles via their own registries
    // (kept separate so search counts above stay those of the timed rounds).
    let aux = Registry::new();
    let qa = ScenarioQa::with_metrics(&kg, &aux);
    for q in refs.iter().take(256) {
        std::hint::black_box(qa.answer(&format!("what do i need for {q}?")));
    }
    let qa_snap = aux.histogram("qa.answer_ns").snapshot();

    let recommender = CognitiveRecommender::with_metrics(&kg, RecommendConfig::default(), &aux);
    let linked: Vec<alicoco::ItemId> = kg
        .item_ids()
        .filter(|&i| !kg.concepts_for_item(i).is_empty())
        .take(3)
        .collect();
    for _ in 0..256 {
        std::hint::black_box(recommender.recommend(&linked));
    }
    let rec_snap = aux.histogram("recommend.total_ns").snapshot();
    println!(
        "serving/qa: p50 {} ns; serving/recommend: p50 {} ns",
        qa_snap.p50, rec_snap.p50
    );

    let json = format!(
        "{{\n  \"n_concepts\": {N_CONCEPTS},\n  \"queries_per_round\": {QUERIES},\n  \
         \"rounds\": {ROUNDS},\n  \"search\": {{\n    \
         \"plain_per_query_ns\": {:.0},\n    \"instrumented_per_query_ns\": {:.0},\n    \
         \"overhead_pct\": {overhead_pct:.3},\n    \
         \"retrieve_p50_ns\": {},\n    \"retrieve_p99_ns\": {},\n    \
         \"score_p50_ns\": {},\n    \"score_p99_ns\": {},\n    \
         \"rank_p50_ns\": {},\n    \"rank_p99_ns\": {}\n  }},\n  \"batch\": {{\n    \
         \"batch_size\": {BATCH},\n    \"qps\": {batch_qps:.0}\n  }},\n  \"qa\": {{\n    \
         \"p50_ns\": {},\n    \"p99_ns\": {}\n  }},\n  \"recommend\": {{\n    \
         \"p50_ns\": {},\n    \"p99_ns\": {}\n  }}\n}}\n",
        plain_med / QUERIES as f64 * 1e9,
        instr_med / QUERIES as f64 * 1e9,
        retrieve.p50,
        retrieve.p99,
        score.p50,
        score.p99,
        rank.p50,
        rank.p99,
        qa_snap.p50,
        qa_snap.p99,
        rec_snap.p50,
        rec_snap.p99,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(out, &json).expect("write BENCH_serving.json");
    println!("serving/summary: wrote {out}");
}
