//! Serving-path observability bench: on a 50k-concept world, measures the
//! overhead of the instrumented search engine against the uninstrumented
//! one (asserting identical answers first and gating the overhead under a
//! few percent), then reports per-stage latency percentiles straight from
//! the metric registry plus batch/QA/recommendation numbers. Also measures
//! the storage layer at 50k and at paper scale (1M concepts): cold
//! save/load for both snapshot codecs plus *cold start to first answer* —
//! TSV must fully materialize before it can answer a keyword probe, while
//! the binary codec answers zero-copy from a freshly opened view — with
//! byte-identity and answer equality asserted before any timing. The
//! first-answer ratio is the gated metric (`snapshot.*.cold_load_speedup`,
//! absolute floor in `alicoco_bench::compare`). Emits `BENCH_serving.json`
//! at the workspace root for the CI perf gate.

use std::time::Instant;

use alicoco::snapshot::binary::SnapshotView;
use alicoco::store::{BinaryStore, Store, TsvStore};
use alicoco_apps::{
    CognitiveRecommender, RecommendConfig, ScenarioQa, SearchConfig, SemanticSearch,
};
use alicoco_bench::{median_secs, scale_vocab, scale_world};
use alicoco_obs::Registry;

const N_CONCEPTS: usize = 50_000;
const N_CONCEPTS_1M: usize = 1_000_000;
const QUERIES: usize = 512;
const ROUNDS: usize = 7;
const SNAPSHOT_ROUNDS: usize = 5;
const SNAPSHOT_ROUNDS_1M: usize = 3;
const BATCH: usize = 64;
const MAX_OVERHEAD_PCT: f64 = 5.0;

fn queries(n: usize) -> Vec<String> {
    let vocab = scale_vocab();
    (0..n)
        .map(|i| {
            format!(
                "{} {}",
                vocab[(i * 31) % vocab.len()],
                vocab[(i * 17 + 5) % vocab.len()]
            )
        })
        .collect()
}

/// Wall-clock seconds of one full pass over the query set.
fn round_secs(engine: &SemanticSearch, refs: &[&str]) -> f64 {
    let t = Instant::now();
    for q in refs {
        std::hint::black_box(engine.search(q));
    }
    t.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Cold save/load costs of one world under both snapshot codecs.
struct SnapshotCosts {
    tsv_save_secs: f64,
    tsv_load_secs: f64,
    tsv_first_answer_secs: f64,
    tsv_bytes: usize,
    bin_save_secs: f64,
    bin_load_secs: f64,
    bin_open_secs: f64,
    bin_first_answer_secs: f64,
    bin_bytes: usize,
    /// TSV full-materialization load time over binary full-materialization
    /// load time. Informational: both sides pay the same dominant cost
    /// (building 1M+ nodes and the name map), so this ratio is bounded.
    load_speedup: f64,
    /// Cold start to first answer: TSV time-to-first-answer over binary
    /// time-to-first-answer for the same keyword probe. This is the gated
    /// metric (`*.cold_load_speedup`, absolute floor in
    /// `alicoco_bench::compare`): the binary codec's whole point is that a
    /// cold process answers queries from the checksummed view without
    /// materializing the graph, while TSV has no path to any answer short
    /// of a full load.
    cold_load_speedup: f64,
}

/// Cheapest possible cold first answer the TSV codec allows for a
/// one-token keyword probe: a full load (its only path to any data),
/// then a linear scan — deliberately *cheaper* than building a
/// `QueryIndex`, so the comparison is maximally charitable to TSV. The
/// answer set mirrors the persisted concept postings: concepts whose
/// surface contains the token or that an identically-surfaced primitive
/// interprets.
fn tsv_first_answer(tsv_bytes: &[u8], token: &str) -> Vec<u32> {
    let kg = TsvStore.load(tsv_bytes).expect("tsv load");
    let mut ids = Vec::new();
    for c in kg.concept_ids() {
        let node = kg.concept(c);
        if node.name.split(' ').any(|t| t == token)
            || node
                .primitives
                .iter()
                .any(|&p| kg.primitive(p).name == token)
        {
            ids.push(c.index() as u32);
        }
    }
    ids
}

/// Cold first answer from the binary codec: open the view (verifying
/// every section checksum) and walk the lexicographically-ordered
/// postings section to the probe token — no graph, no index.
fn bin_first_answer(bin_bytes: &[u8], token: &str) -> Vec<u32> {
    let view = SnapshotView::open(bin_bytes).expect("binary open");
    view.concept_posting_for(token)
        .expect("postings walk")
        .map(|ids| ids.into_iter().map(|c| c.index() as u32).collect())
        .unwrap_or_default()
}

fn snapshot_costs(kg: &alicoco::AliCoCo, rounds: usize, probe: &str) -> SnapshotCosts {
    let mut tsv_bytes = Vec::new();
    TsvStore.save(kg, &mut tsv_bytes).expect("tsv save");
    let mut bin_bytes = Vec::new();
    BinaryStore.save(kg, &mut bin_bytes).expect("binary save");

    // Correctness gate before any timing: both codecs must agree on the
    // loaded graph, binary -> model -> TSV must reproduce the TSV oracle
    // bytes exactly, and both cold first-answer paths must produce the
    // same non-empty answer for the probe.
    {
        let from_tsv = TsvStore.load(&tsv_bytes).expect("tsv load");
        let from_bin = BinaryStore.load(&bin_bytes).expect("binary load");
        assert_eq!(from_tsv, from_bin, "codecs disagree on the loaded graph");
        let mut again = Vec::new();
        TsvStore.save(&from_bin, &mut again).expect("tsv re-save");
        assert_eq!(again, tsv_bytes, "binary -> model -> TSV lost bytes");
        let scan = tsv_first_answer(&tsv_bytes, probe);
        assert!(!scan.is_empty(), "probe token {probe:?} matches nothing");
        assert_eq!(
            scan,
            bin_first_answer(&bin_bytes, probe),
            "codecs disagree on the first answer for {probe:?}"
        );
    }

    let tsv_save_secs = median_secs(rounds, || {
        let mut out = Vec::new();
        TsvStore.save(kg, &mut out).expect("tsv save");
        out
    });
    let bin_save_secs = median_secs(rounds, || {
        let mut out = Vec::new();
        BinaryStore.save(kg, &mut out).expect("binary save");
        out
    });
    let tsv_load_secs = median_secs(rounds, || TsvStore.load(&tsv_bytes).expect("tsv load"));
    let bin_load_secs = median_secs(rounds, || {
        BinaryStore.load(&bin_bytes).expect("binary load")
    });
    let bin_open_secs = median_secs(rounds, || {
        BinaryStore.open(&bin_bytes).expect("binary open")
    });
    let tsv_first_answer_secs = median_secs(rounds, || tsv_first_answer(&tsv_bytes, probe));
    let bin_first_answer_secs = median_secs(rounds, || bin_first_answer(&bin_bytes, probe));
    SnapshotCosts {
        tsv_save_secs,
        tsv_load_secs,
        tsv_first_answer_secs,
        tsv_bytes: tsv_bytes.len(),
        bin_save_secs,
        bin_load_secs,
        bin_open_secs,
        bin_first_answer_secs,
        bin_bytes: bin_bytes.len(),
        load_speedup: tsv_load_secs / bin_load_secs,
        cold_load_speedup: tsv_first_answer_secs / bin_first_answer_secs,
    }
}

fn print_snapshot_costs(label: &str, c: &SnapshotCosts) {
    println!(
        "serving/snapshot {label}: tsv {:.1} MB load {:.1} ms answer {:.1} ms | \
         binary {:.1} MB load {:.1} ms open {:.2} ms answer {:.2} ms | \
         load speedup {:.1}x, cold first-answer speedup {:.1}x",
        c.tsv_bytes as f64 / 1e6,
        c.tsv_load_secs * 1e3,
        c.tsv_first_answer_secs * 1e3,
        c.bin_bytes as f64 / 1e6,
        c.bin_load_secs * 1e3,
        c.bin_open_secs * 1e3,
        c.bin_first_answer_secs * 1e3,
        c.load_speedup,
        c.cold_load_speedup,
    );
}

/// The JSON object body for one scale's snapshot costs (without braces).
/// `cold_load_speedup` is the gated key (absolute floor in
/// `alicoco_bench::compare`); `load_speedup` is the informational
/// full-materialization ratio.
fn snapshot_json(c: &SnapshotCosts) -> String {
    format!(
        "\"tsv_save_ns\": {:.0},\n      \"tsv_load_ns\": {:.0},\n      \
         \"tsv_first_answer_ns\": {:.0},\n      \
         \"tsv_bytes\": {},\n      \"binary_save_ns\": {:.0},\n      \
         \"binary_load_ns\": {:.0},\n      \"binary_open_ns\": {:.0},\n      \
         \"binary_first_answer_ns\": {:.0},\n      \
         \"binary_bytes\": {},\n      \"load_speedup\": {:.3},\n      \
         \"cold_load_speedup\": {:.3}",
        c.tsv_save_secs * 1e9,
        c.tsv_load_secs * 1e9,
        c.tsv_first_answer_secs * 1e9,
        c.tsv_bytes,
        c.bin_save_secs * 1e9,
        c.bin_load_secs * 1e9,
        c.bin_open_secs * 1e9,
        c.bin_first_answer_secs * 1e9,
        c.bin_bytes,
        c.load_speedup,
        c.cold_load_speedup,
    )
}

fn main() {
    let kg = scale_world(N_CONCEPTS);
    let plain = SemanticSearch::new(&kg, SearchConfig::default());
    let registry = Registry::new();
    let instrumented = SemanticSearch::with_metrics(&kg, SearchConfig::default(), &registry);

    let qs = queries(QUERIES);
    let refs: Vec<&str> = qs.iter().map(String::as_str).collect();

    // Correctness gate before any timing: instrumentation must never
    // change an answer.
    for q in &refs {
        assert_eq!(
            plain.search(q),
            instrumented.search(q),
            "instrumented search diverged on {q:?}"
        );
    }

    // Interleaved rounds so drift (cache warmup, frequency scaling) hits
    // both engines equally; medians damp outlier rounds.
    let mut plain_rounds = Vec::with_capacity(ROUNDS);
    let mut instr_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        plain_rounds.push(round_secs(&plain, &refs));
        instr_rounds.push(round_secs(&instrumented, &refs));
    }
    let plain_med = median(plain_rounds);
    let instr_med = median(instr_rounds);
    let overhead_pct = (instr_med - plain_med) / plain_med * 100.0;
    println!(
        "serving/overhead: {:.2} us/query plain, {:.2} us/query instrumented ({overhead_pct:+.2}%)",
        plain_med / QUERIES as f64 * 1e6,
        instr_med / QUERIES as f64 * 1e6,
    );
    assert!(
        overhead_pct < MAX_OVERHEAD_PCT,
        "metrics overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget"
    );

    // Per-stage percentiles straight from the registry the timed rounds
    // populated.
    let retrieve = registry.histogram("search.retrieve_ns").snapshot();
    let score = registry.histogram("search.score_ns").snapshot();
    let rank = registry.histogram("search.rank_ns").snapshot();
    for (stage, snap) in [("retrieve", &retrieve), ("score", &score), ("rank", &rank)] {
        println!(
            "serving/search_{stage}: p50 {} ns, p90 {} ns, p99 {} ns over {} queries",
            snap.p50, snap.p90, snap.p99, snap.count
        );
    }

    // Batch throughput over the first 64 queries.
    let batch: Vec<&str> = refs[..BATCH].to_vec();
    let t = Instant::now();
    let mut batch_runs = 0usize;
    while batch_runs < 20 {
        std::hint::black_box(instrumented.search_batch(&batch));
        batch_runs += 1;
    }
    let batch_secs = t.elapsed().as_secs_f64() / batch_runs as f64;
    let batch_qps = BATCH as f64 / batch_secs;
    println!("serving/batch: {batch_qps:.0} queries/sec over {BATCH}-query batches");

    // QA and recommendation latency percentiles via their own registries
    // (kept separate so search counts above stay those of the timed rounds).
    let aux = Registry::new();
    let qa = ScenarioQa::with_metrics(&kg, &aux);
    for q in refs.iter().take(256) {
        std::hint::black_box(qa.answer(&format!("what do i need for {q}?")));
    }
    let qa_snap = aux.histogram("qa.answer_ns").snapshot();

    let recommender = CognitiveRecommender::with_metrics(&kg, RecommendConfig::default(), &aux);
    let linked: Vec<alicoco::ItemId> = kg
        .item_ids()
        .filter(|&i| !kg.concepts_for_item(i).is_empty())
        .take(3)
        .collect();
    for _ in 0..256 {
        std::hint::black_box(recommender.recommend(&linked));
    }
    let rec_snap = aux.histogram("recommend.total_ns").snapshot();
    println!(
        "serving/qa: p50 {} ns; serving/recommend: p50 {} ns",
        qa_snap.p50, rec_snap.p50
    );

    // Storage layer: cold save/load for both codecs at the serving scale
    // and at paper scale (1M concepts, streamed world generation). The
    // probe token is a vocab word, so it appears in concept surfaces at
    // every scale.
    let probe = scale_vocab()[0].clone();
    let snap_50k = snapshot_costs(&kg, SNAPSHOT_ROUNDS, &probe);
    print_snapshot_costs("n50k", &snap_50k);
    let big = scale_world(N_CONCEPTS_1M);
    let snap_1m = snapshot_costs(&big, SNAPSHOT_ROUNDS_1M, &probe);
    drop(big);
    print_snapshot_costs("n1000k", &snap_1m);

    let json = format!(
        "{{\n  \"n_concepts\": {N_CONCEPTS},\n  \"queries_per_round\": {QUERIES},\n  \
         \"rounds\": {ROUNDS},\n  \"search\": {{\n    \
         \"plain_per_query_ns\": {:.0},\n    \"instrumented_per_query_ns\": {:.0},\n    \
         \"overhead_pct\": {overhead_pct:.3},\n    \
         \"retrieve_p50_ns\": {},\n    \"retrieve_p99_ns\": {},\n    \
         \"score_p50_ns\": {},\n    \"score_p99_ns\": {},\n    \
         \"rank_p50_ns\": {},\n    \"rank_p99_ns\": {}\n  }},\n  \"batch\": {{\n    \
         \"batch_size\": {BATCH},\n    \"qps\": {batch_qps:.0}\n  }},\n  \"qa\": {{\n    \
         \"p50_ns\": {},\n    \"p99_ns\": {}\n  }},\n  \"recommend\": {{\n    \
         \"p50_ns\": {},\n    \"p99_ns\": {}\n  }},\n  \"snapshot\": {{\n    \
         \"n50k\": {{\n      {}\n    }},\n    \"n1000k\": {{\n      {}\n    }}\n  }}\n}}\n",
        plain_med / QUERIES as f64 * 1e9,
        instr_med / QUERIES as f64 * 1e9,
        retrieve.p50,
        retrieve.p99,
        score.p50,
        score.p99,
        rank.p50,
        rank.p99,
        qa_snap.p50,
        qa_snap.p99,
        rec_snap.p50,
        rec_snap.p99,
        snapshot_json(&snap_50k),
        snapshot_json(&snap_1m),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(out, &json).expect("write BENCH_serving.json");
    println!("serving/summary: wrote {out}");
}
