//! Serving-path observability bench: on a 50k-concept world, measures the
//! overhead of the instrumented search engine against the uninstrumented
//! one (asserting identical answers first and gating the overhead under a
//! few percent), then reports per-stage latency percentiles straight from
//! the metric registry plus batch/QA/recommendation numbers. Also measures
//! the storage layer at 50k and at paper scale (1M concepts): cold
//! save/load for both snapshot codecs plus *cold start to first answer* —
//! TSV must fully materialize before it can answer a keyword probe, while
//! the binary codec answers zero-copy from a freshly opened view — with
//! byte-identity and answer equality asserted before any timing. The
//! first-answer ratio is the gated metric (`snapshot.*.cold_load_speedup`,
//! absolute floor in `alicoco_bench::compare`). Finally measures the HNSW
//! vector index on a synthetic clustered workload (100k vectors by
//! default, 1M with `ALICOCO_BENCH_ANN_1M=1`): well-formedness is
//! asserted and recall@10 against the exact `scan_knn` oracle is measured
//! *before* any timing, then per-query knn latency percentiles and the
//! build cost are reported as `serving.ann.*` — `recall_at_10` is the
//! gated metric (absolute ≥ 0.9 floor in `alicoco_bench::compare`).
//! Emits `BENCH_serving.json` at the workspace root for the CI perf
//! gate, stamped with the machine's `cpus` so cpu-conditional floors
//! apply.

use std::time::Instant;

use alicoco::snapshot::binary::SnapshotView;
use alicoco::store::{BinaryStore, Store, TsvStore};
use alicoco_ann::{Hnsw, HnswConfig};
use alicoco_apps::{
    CognitiveRecommender, RecommendConfig, ScenarioQa, SearchConfig, SemanticSearch,
};
use alicoco_bench::{median_secs, scale_vocab, scale_world};
use alicoco_obs::Registry;

const N_CONCEPTS: usize = 50_000;
const N_CONCEPTS_1M: usize = 1_000_000;
const QUERIES: usize = 512;
const ROUNDS: usize = 7;
const SNAPSHOT_ROUNDS: usize = 5;
const SNAPSHOT_ROUNDS_1M: usize = 3;
const BATCH: usize = 64;
const MAX_OVERHEAD_PCT: f64 = 5.0;
const ANN_VECTORS: usize = 100_000;
const ANN_VECTORS_1M: usize = 1_000_000;
const ANN_DIM: usize = 32;
const ANN_CLUSTERS: usize = 256;
const ANN_QUERIES: usize = 512;
const ANN_K: usize = 10;
const ANN_EF: usize = 96;

fn queries(n: usize) -> Vec<String> {
    let vocab = scale_vocab();
    (0..n)
        .map(|i| {
            format!(
                "{} {}",
                vocab[(i * 31) % vocab.len()],
                vocab[(i * 17 + 5) % vocab.len()]
            )
        })
        .collect()
}

/// Wall-clock seconds of one full pass over the query set.
fn round_secs(engine: &SemanticSearch, refs: &[&str]) -> f64 {
    let t = Instant::now();
    for q in refs {
        std::hint::black_box(engine.search(q));
    }
    t.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Cold save/load costs of one world under both snapshot codecs.
struct SnapshotCosts {
    tsv_save_secs: f64,
    tsv_load_secs: f64,
    tsv_first_answer_secs: f64,
    tsv_bytes: usize,
    bin_save_secs: f64,
    bin_load_secs: f64,
    bin_open_secs: f64,
    bin_first_answer_secs: f64,
    bin_bytes: usize,
    /// TSV full-materialization load time over binary full-materialization
    /// load time. Informational: both sides pay the same dominant cost
    /// (building 1M+ nodes and the name map), so this ratio is bounded.
    load_speedup: f64,
    /// Cold start to first answer: TSV time-to-first-answer over binary
    /// time-to-first-answer for the same keyword probe. This is the gated
    /// metric (`*.cold_load_speedup`, absolute floor in
    /// `alicoco_bench::compare`): the binary codec's whole point is that a
    /// cold process answers queries from the checksummed view without
    /// materializing the graph, while TSV has no path to any answer short
    /// of a full load.
    cold_load_speedup: f64,
}

/// Cheapest possible cold first answer the TSV codec allows for a
/// one-token keyword probe: a full load (its only path to any data),
/// then a linear scan — deliberately *cheaper* than building a
/// `QueryIndex`, so the comparison is maximally charitable to TSV. The
/// answer set mirrors the persisted concept postings: concepts whose
/// surface contains the token or that an identically-surfaced primitive
/// interprets.
fn tsv_first_answer(tsv_bytes: &[u8], token: &str) -> Vec<u32> {
    let kg = TsvStore.load(tsv_bytes).expect("tsv load");
    let mut ids = Vec::new();
    for c in kg.concept_ids() {
        let node = kg.concept(c);
        if node.name.split(' ').any(|t| t == token)
            || node
                .primitives
                .iter()
                .any(|&p| kg.primitive(p).name == token)
        {
            ids.push(c.index() as u32);
        }
    }
    ids
}

/// Cold first answer from the binary codec: open the view (verifying
/// every section checksum) and walk the lexicographically-ordered
/// postings section to the probe token — no graph, no index.
fn bin_first_answer(bin_bytes: &[u8], token: &str) -> Vec<u32> {
    let view = SnapshotView::open(bin_bytes).expect("binary open");
    view.concept_posting_for(token)
        .expect("postings walk")
        .map(|ids| ids.into_iter().map(|c| c.index() as u32).collect())
        .unwrap_or_default()
}

fn snapshot_costs(kg: &alicoco::AliCoCo, rounds: usize, probe: &str) -> SnapshotCosts {
    let mut tsv_bytes = Vec::new();
    TsvStore.save(kg, &mut tsv_bytes).expect("tsv save");
    let mut bin_bytes = Vec::new();
    BinaryStore.save(kg, &mut bin_bytes).expect("binary save");

    // Correctness gate before any timing: both codecs must agree on the
    // loaded graph, binary -> model -> TSV must reproduce the TSV oracle
    // bytes exactly, and both cold first-answer paths must produce the
    // same non-empty answer for the probe.
    {
        let from_tsv = TsvStore.load(&tsv_bytes).expect("tsv load");
        let from_bin = BinaryStore.load(&bin_bytes).expect("binary load");
        assert_eq!(from_tsv, from_bin, "codecs disagree on the loaded graph");
        let mut again = Vec::new();
        TsvStore.save(&from_bin, &mut again).expect("tsv re-save");
        assert_eq!(again, tsv_bytes, "binary -> model -> TSV lost bytes");
        let scan = tsv_first_answer(&tsv_bytes, probe);
        assert!(!scan.is_empty(), "probe token {probe:?} matches nothing");
        assert_eq!(
            scan,
            bin_first_answer(&bin_bytes, probe),
            "codecs disagree on the first answer for {probe:?}"
        );
    }

    let tsv_save_secs = median_secs(rounds, || {
        let mut out = Vec::new();
        TsvStore.save(kg, &mut out).expect("tsv save");
        out
    });
    let bin_save_secs = median_secs(rounds, || {
        let mut out = Vec::new();
        BinaryStore.save(kg, &mut out).expect("binary save");
        out
    });
    let tsv_load_secs = median_secs(rounds, || TsvStore.load(&tsv_bytes).expect("tsv load"));
    let bin_load_secs = median_secs(rounds, || {
        BinaryStore.load(&bin_bytes).expect("binary load")
    });
    let bin_open_secs = median_secs(rounds, || {
        BinaryStore.open(&bin_bytes).expect("binary open")
    });
    let tsv_first_answer_secs = median_secs(rounds, || tsv_first_answer(&tsv_bytes, probe));
    let bin_first_answer_secs = median_secs(rounds, || bin_first_answer(&bin_bytes, probe));
    SnapshotCosts {
        tsv_save_secs,
        tsv_load_secs,
        tsv_first_answer_secs,
        tsv_bytes: tsv_bytes.len(),
        bin_save_secs,
        bin_load_secs,
        bin_open_secs,
        bin_first_answer_secs,
        bin_bytes: bin_bytes.len(),
        load_speedup: tsv_load_secs / bin_load_secs,
        cold_load_speedup: tsv_first_answer_secs / bin_first_answer_secs,
    }
}

fn print_snapshot_costs(label: &str, c: &SnapshotCosts) {
    println!(
        "serving/snapshot {label}: tsv {:.1} MB load {:.1} ms answer {:.1} ms | \
         binary {:.1} MB load {:.1} ms open {:.2} ms answer {:.2} ms | \
         load speedup {:.1}x, cold first-answer speedup {:.1}x",
        c.tsv_bytes as f64 / 1e6,
        c.tsv_load_secs * 1e3,
        c.tsv_first_answer_secs * 1e3,
        c.bin_bytes as f64 / 1e6,
        c.bin_load_secs * 1e3,
        c.bin_open_secs * 1e3,
        c.bin_first_answer_secs * 1e3,
        c.load_speedup,
        c.cold_load_speedup,
    );
}

/// The JSON object body for one scale's snapshot costs (without braces).
/// `cold_load_speedup` is the gated key (absolute floor in
/// `alicoco_bench::compare`); `load_speedup` is the informational
/// full-materialization ratio.
fn snapshot_json(c: &SnapshotCosts) -> String {
    format!(
        "\"tsv_save_ns\": {:.0},\n      \"tsv_load_ns\": {:.0},\n      \
         \"tsv_first_answer_ns\": {:.0},\n      \
         \"tsv_bytes\": {},\n      \"binary_save_ns\": {:.0},\n      \
         \"binary_load_ns\": {:.0},\n      \"binary_open_ns\": {:.0},\n      \
         \"binary_first_answer_ns\": {:.0},\n      \
         \"binary_bytes\": {},\n      \"load_speedup\": {:.3},\n      \
         \"cold_load_speedup\": {:.3}",
        c.tsv_save_secs * 1e9,
        c.tsv_load_secs * 1e9,
        c.tsv_first_answer_secs * 1e9,
        c.tsv_bytes,
        c.bin_save_secs * 1e9,
        c.bin_load_secs * 1e9,
        c.bin_open_secs * 1e9,
        c.bin_first_answer_secs * 1e9,
        c.bin_bytes,
        c.load_speedup,
        c.cold_load_speedup,
    )
}

/// SplitMix64: a deterministic, dependency-free stream for the synthetic
/// vector workload. Seeded construction makes every run (and every
/// machine) benchmark the identical index.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [-1, 1).
fn unit(state: &mut u64) -> f32 {
    (splitmix(state) >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
}

/// Clustered synthetic embeddings: seeded anchor directions plus per-point
/// noise, mimicking the concept-embedding geometry (trained embeddings of
/// related concepts bunch around shared topics) rather than the
/// adversarially-uniform sphere where any ANN graph looks artificially bad.
fn clustered_vectors(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed;
    let anchors: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| unit(&mut state)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let anchor = &anchors[i % clusters];
            anchor.iter().map(|a| a + 0.3 * unit(&mut state)).collect()
        })
        .collect()
}

/// Build cost, oracle recall, and query latency of the HNSW index on the
/// synthetic clustered workload.
struct AnnCosts {
    n_vectors: usize,
    build_secs: f64,
    recall_at_10: f64,
    p50_ns: u64,
    p99_ns: u64,
}

fn ann_costs(n: usize) -> AnnCosts {
    let vectors = clustered_vectors(n, ANN_DIM, ANN_CLUSTERS, 0x0A11_C0C0);
    let t = Instant::now();
    let mut index = Hnsw::new(ANN_DIM, HnswConfig::default());
    for v in &vectors {
        index.insert(v);
    }
    let build_secs = t.elapsed().as_secs_f64();

    // Queries: perturbed stored vectors, so every query has meaningful
    // near neighbors to recall.
    let mut state = 0x00C0_FFEE;
    let queries: Vec<Vec<f32>> = (0..ANN_QUERIES)
        .map(|_| {
            let id = (splitmix(&mut state) % n as u64) as u32;
            let mut q: Vec<f32> = index.vector(id).to_vec();
            for x in &mut q {
                *x += 0.1 * unit(&mut state);
            }
            q
        })
        .collect();

    // Correctness gate before any timing: every answer set is k-sized,
    // duplicate-free, and in rank order; recall@10 against the exact scan
    // oracle is measured here (and gated via `serving.ann.recall_at_10`).
    let mut recall_sum = 0.0;
    for q in &queries {
        let approx = index.knn(q, ANN_K, ANN_EF);
        assert_eq!(approx.len(), ANN_K, "knn returned fewer than k answers");
        for w in approx.windows(2) {
            assert!(
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "knn answers out of rank order"
            );
        }
        let mut ids: Vec<u32> = approx.iter().map(|a| a.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), approx.len(), "knn returned a duplicate id");
        let exact = index.scan_knn(q, ANN_K);
        let hits = approx
            .iter()
            .filter(|a| exact.iter().any(|e| e.0 == a.0))
            .count();
        recall_sum += hits as f64 / exact.len().max(1) as f64;
    }
    let recall_at_10 = recall_sum / queries.len() as f64;

    let mut latencies: Vec<u64> = Vec::with_capacity(queries.len());
    for q in &queries {
        let t = Instant::now();
        std::hint::black_box(index.knn(q, ANN_K, ANN_EF));
        latencies.push(t.elapsed().as_nanos() as u64);
    }
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
    AnnCosts {
        n_vectors: n,
        build_secs,
        recall_at_10,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
    }
}

fn main() {
    let kg = scale_world(N_CONCEPTS);
    let plain = SemanticSearch::new(&kg, SearchConfig::default());
    let registry = Registry::new();
    let instrumented = SemanticSearch::with_metrics(&kg, SearchConfig::default(), &registry);

    let qs = queries(QUERIES);
    let refs: Vec<&str> = qs.iter().map(String::as_str).collect();

    // Correctness gate before any timing: instrumentation must never
    // change an answer.
    for q in &refs {
        assert_eq!(
            plain.search(q),
            instrumented.search(q),
            "instrumented search diverged on {q:?}"
        );
    }

    // Interleaved rounds so drift (cache warmup, frequency scaling) hits
    // both engines equally; medians damp outlier rounds.
    let mut plain_rounds = Vec::with_capacity(ROUNDS);
    let mut instr_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        plain_rounds.push(round_secs(&plain, &refs));
        instr_rounds.push(round_secs(&instrumented, &refs));
    }
    let plain_med = median(plain_rounds);
    let instr_med = median(instr_rounds);
    let overhead_pct = (instr_med - plain_med) / plain_med * 100.0;
    println!(
        "serving/overhead: {:.2} us/query plain, {:.2} us/query instrumented ({overhead_pct:+.2}%)",
        plain_med / QUERIES as f64 * 1e6,
        instr_med / QUERIES as f64 * 1e6,
    );
    assert!(
        overhead_pct < MAX_OVERHEAD_PCT,
        "metrics overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget"
    );

    // Per-stage percentiles straight from the registry the timed rounds
    // populated.
    let retrieve = registry.histogram("search.retrieve_ns").snapshot();
    let score = registry.histogram("search.score_ns").snapshot();
    let rank = registry.histogram("search.rank_ns").snapshot();
    for (stage, snap) in [("retrieve", &retrieve), ("score", &score), ("rank", &rank)] {
        println!(
            "serving/search_{stage}: p50 {} ns, p90 {} ns, p99 {} ns over {} queries",
            snap.p50, snap.p90, snap.p99, snap.count
        );
    }

    // Batch throughput over the first 64 queries.
    let batch: Vec<&str> = refs[..BATCH].to_vec();
    let t = Instant::now();
    let mut batch_runs = 0usize;
    while batch_runs < 20 {
        std::hint::black_box(instrumented.search_batch(&batch));
        batch_runs += 1;
    }
    let batch_secs = t.elapsed().as_secs_f64() / batch_runs as f64;
    let batch_qps = BATCH as f64 / batch_secs;
    println!("serving/batch: {batch_qps:.0} queries/sec over {BATCH}-query batches");

    // QA and recommendation latency percentiles via their own registries
    // (kept separate so search counts above stay those of the timed rounds).
    let aux = Registry::new();
    let qa = ScenarioQa::with_metrics(&kg, &aux);
    for q in refs.iter().take(256) {
        std::hint::black_box(qa.answer(&format!("what do i need for {q}?")));
    }
    let qa_snap = aux.histogram("qa.answer_ns").snapshot();

    let recommender = CognitiveRecommender::with_metrics(&kg, RecommendConfig::default(), &aux);
    let linked: Vec<alicoco::ItemId> = kg
        .item_ids()
        .filter(|&i| !kg.concepts_for_item(i).is_empty())
        .take(3)
        .collect();
    for _ in 0..256 {
        std::hint::black_box(recommender.recommend(&linked));
    }
    let rec_snap = aux.histogram("recommend.total_ns").snapshot();
    println!(
        "serving/qa: p50 {} ns; serving/recommend: p50 {} ns",
        qa_snap.p50, rec_snap.p50
    );

    // Storage layer: cold save/load for both codecs at the serving scale
    // and at paper scale (1M concepts, streamed world generation). The
    // probe token is a vocab word, so it appears in concept surfaces at
    // every scale.
    let probe = scale_vocab()[0].clone();
    let snap_50k = snapshot_costs(&kg, SNAPSHOT_ROUNDS, &probe);
    print_snapshot_costs("n50k", &snap_50k);
    let big = scale_world(N_CONCEPTS_1M);
    let snap_1m = snapshot_costs(&big, SNAPSHOT_ROUNDS_1M, &probe);
    drop(big);
    print_snapshot_costs("n1000k", &snap_1m);

    // Vector index on the synthetic clustered workload. 100k vectors by
    // default; paper scale (1M) is opt-in because the build alone takes
    // minutes.
    let ann_n = if std::env::var("ALICOCO_BENCH_ANN_1M").is_ok() {
        ANN_VECTORS_1M
    } else {
        ANN_VECTORS
    };
    let ann = ann_costs(ann_n);
    println!(
        "serving/ann: {} vectors, build {:.1} s, recall@10 {:.4}, knn p50 {} ns p99 {} ns",
        ann.n_vectors, ann.build_secs, ann.recall_at_10, ann.p50_ns, ann.p99_ns,
    );

    // Machine context: cpu-conditional floors in `alicoco_bench::compare`
    // (speedups, saturation throughput) key off this stamp, mirroring
    // BENCH_train.json.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let json = format!(
        "{{\n  \"n_concepts\": {N_CONCEPTS},\n  \"cpus\": {cpus},\n  \
         \"queries_per_round\": {QUERIES},\n  \
         \"rounds\": {ROUNDS},\n  \"search\": {{\n    \
         \"plain_per_query_ns\": {:.0},\n    \"instrumented_per_query_ns\": {:.0},\n    \
         \"overhead_pct\": {overhead_pct:.3},\n    \
         \"retrieve_p50_ns\": {},\n    \"retrieve_p99_ns\": {},\n    \
         \"score_p50_ns\": {},\n    \"score_p99_ns\": {},\n    \
         \"rank_p50_ns\": {},\n    \"rank_p99_ns\": {}\n  }},\n  \"batch\": {{\n    \
         \"batch_size\": {BATCH},\n    \"qps\": {batch_qps:.0}\n  }},\n  \"qa\": {{\n    \
         \"p50_ns\": {},\n    \"p99_ns\": {}\n  }},\n  \"recommend\": {{\n    \
         \"p50_ns\": {},\n    \"p99_ns\": {}\n  }},\n  \"snapshot\": {{\n    \
         \"n50k\": {{\n      {}\n    }},\n    \"n1000k\": {{\n      {}\n    }}\n  }},\n  \
         \"serving\": {{\n    \"ann\": {{\n      \
         \"n_vectors\": {},\n      \"dim\": {ANN_DIM},\n      \
         \"queries\": {ANN_QUERIES},\n      \"build_ns\": {:.0},\n      \
         \"recall_at_10\": {:.4},\n      \"p50_ns\": {},\n      \
         \"p99_ns\": {}\n    }}\n  }}\n}}\n",
        plain_med / QUERIES as f64 * 1e9,
        instr_med / QUERIES as f64 * 1e9,
        retrieve.p50,
        retrieve.p99,
        score.p50,
        score.p99,
        rank.p50,
        rank.p99,
        qa_snap.p50,
        qa_snap.p99,
        rec_snap.p50,
        rec_snap.p99,
        snapshot_json(&snap_50k),
        snapshot_json(&snap_1m),
        ann.n_vectors,
        ann.build_secs * 1e9,
        ann.recall_at_10,
        ann.p50_ns,
        ann.p99_ns,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(out, &json).expect("write BENCH_serving.json");
    println!("serving/summary: wrote {out}");
}
