//! Inference-throughput benchmarks for the five construction models —
//! the numbers that matter for production scoring (billions of pairs in the
//! paper's setting).

use alicoco_corpus::Dataset;
use alicoco_mining::congen::{ClassifierConfig, ConceptClassifier};
use alicoco_mining::hypernym::{HypernymDataset, ProjectionConfig, ProjectionModel};
use alicoco_mining::matching::{
    build_matching_dataset, MatchingDataConfig, OursConfig, OursMatcher,
};
use alicoco_mining::resources::{Resources, ResourcesConfig};
use alicoco_mining::tagging::{AmbiguityIndex, ConceptTagger, ContextIndex, TaggerConfig};
use alicoco_mining::vocab_mining::{VocabMiner, VocabMinerConfig};
use alicoco_nn::crf::Crf;
use alicoco_nn::{ParamSet, Tensor};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_models(c: &mut Criterion) {
    let ds = Dataset::tiny();
    let res = Resources::build(&ds, ResourcesConfig::default());
    let mut rng = alicoco_nn::util::seeded_rng(5);

    // Untrained models: inference cost is identical, no need to train.
    let miner = VocabMiner::new(&res, VocabMinerConfig::default());
    let sentence: Vec<String> = [
        "i", "bought", "this", "red", "trench", "coat", "for", "hiking",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    c.bench_function("model/miner_tag_8_tokens", |b| {
        b.iter(|| black_box(miner.tag(&res, black_box(&sentence))))
    });

    let classifier = ConceptClassifier::new(&res, ClassifierConfig::full());
    let concept: Vec<String> = ["warm", "hat", "for", "traveling"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    c.bench_function("model/classifier_score", |b| {
        b.iter(|| black_box(classifier.score(&res, black_box(&concept))))
    });

    let amb = AmbiguityIndex::build(&ds);
    let _ = &amb;
    let ctx = ContextIndex::build(&res, &ds, ["warm", "hat", "for", "traveling"], 3);
    let tagger = ConceptTagger::new(&res, TaggerConfig::full());
    c.bench_function("model/tagger_tag_concept", |b| {
        b.iter(|| black_box(tagger.tag(&res, &ctx, black_box(&concept))))
    });

    let data = build_matching_dataset(&ds, &MatchingDataConfig::default());
    let matcher = OursMatcher::new(&res, OursConfig::default());
    c.bench_function("model/matcher_score_pair", |b| {
        b.iter(|| black_box(matcher.score(&res, &data, black_box(0), black_box(0))))
    });

    let hyp = HypernymDataset::build(&ds, &res, &mut rng);
    let proj = ProjectionModel::new(res.word_vectors.dim(), ProjectionConfig::default());
    c.bench_function("model/projection_score_pair", |b| {
        b.iter(|| black_box(proj.score(black_box(&hyp.vecs[0]), black_box(&hyp.vecs[1]))))
    });

    // CRF decode vs fuzzy-constrained decode on the 41-label space.
    let mut ps = ParamSet::new();
    let crf = Crf::new(&mut ps, "bench", 41, &mut rng);
    let emissions = Tensor::uniform(5, 41, 1.0, &mut rng);
    c.bench_function("model/crf_decode_41_labels", |b| {
        b.iter(|| black_box(crf.decode(black_box(&emissions))))
    });
    let allowed: Vec<Vec<usize>> = (0..5).map(|i| vec![i, i + 1, i + 2]).collect();
    c.bench_function("model/crf_constrained_decode", |b| {
        b.iter(|| black_box(crf.decode_constrained(black_box(&emissions), &allowed)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_models
}
criterion_main!(benches);
