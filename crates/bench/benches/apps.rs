//! Serving-side latency of the §8 applications over a ground-truth-populated
//! net: semantic search, recommendation, QA, and isA-expanded relevance —
//! plus the retrieval-at-scale comparison (linear scan vs. inverted index
//! vs. shard-parallel batch) on a 50k-concept synthetic world.

use alicoco::AliCoCo;
use alicoco_apps::{
    CognitiveRecommender, RecommendConfig, RelevanceScorer, ScenarioQa, SearchConfig,
    SemanticSearch,
};
use alicoco_bench::{median_secs, scale_vocab, scale_world};
use alicoco_corpus::{concept_relevant_item, Dataset};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn ground_truth_kg(ds: &Dataset) -> AliCoCo {
    let mut kg = AliCoCo::new();
    let root = kg.add_class("concept", None);
    let mut domain_class = Vec::new();
    for d in alicoco_corpus::Domain::ALL {
        domain_class.push(kg.add_class(d.name(), Some(root)));
    }
    for (surface, d) in ds.world.lexicon.all_terms() {
        kg.add_primitive(surface, domain_class[d.index()]);
    }
    let cat = domain_class[alicoco_corpus::Domain::Category.index()];
    let mut prim_of_node = std::collections::HashMap::new();
    for id in ds.world.tree.ids().skip(1) {
        prim_of_node.insert(id, kg.add_primitive(ds.world.tree.name(id), cat));
    }
    let item_ids: Vec<_> = ds.items.iter().map(|it| kg.add_item(&it.title)).collect();
    for (it, &iid) in ds.items.iter().zip(&item_ids) {
        kg.link_item_primitive(iid, prim_of_node[&it.category]);
    }
    for spec in ds.concepts.iter().filter(|c| c.good) {
        let cid = kg.add_concept(&spec.text());
        for s in &spec.slots {
            for &p in kg.primitives_by_name(&s.surface).to_vec().iter() {
                kg.link_concept_primitive(cid, p);
            }
        }
        for (ii, it) in ds.items.iter().enumerate().take(300) {
            if concept_relevant_item(&ds.world, spec, it) {
                kg.link_concept_item(cid, item_ids[ii], 0.9);
            }
        }
    }
    kg
}

fn bench_apps(c: &mut Criterion) {
    let ds = Dataset::tiny();
    let kg = ground_truth_kg(&ds);

    let search = SemanticSearch::new(&kg, SearchConfig::default());
    c.bench_function("apps/semantic_search", |b| {
        b.iter(|| black_box(search.search(black_box("outdoor barbecue"))))
    });

    let recommender = CognitiveRecommender::new(&kg, RecommendConfig::default());
    let history: Vec<alicoco::ItemId> = kg
        .item_ids()
        .filter(|&i| !kg.concepts_for_item(i).is_empty())
        .take(3)
        .collect();
    c.bench_function("apps/recommend_3_item_history", |b| {
        b.iter(|| black_box(recommender.recommend(black_box(&history))))
    });
    c.bench_function("apps/recommender_index_build", |b| {
        b.iter(|| black_box(CognitiveRecommender::new(&kg, RecommendConfig::default())))
    });

    let qa = ScenarioQa::new(&kg);
    c.bench_function("apps/question_answering", |b| {
        b.iter(|| black_box(qa.answer(black_box("what do i need for hiking?"))))
    });

    let scorer = RelevanceScorer::build(&kg);
    let q = vec!["top".to_string()];
    let item = kg.item_ids().next().unwrap();
    c.bench_function("apps/relevance_plain", |b| {
        b.iter(|| black_box(scorer.score_plain(black_box(&q), item)))
    });
    c.bench_function("apps/relevance_isa_expanded", |b| {
        b.iter(|| black_box(scorer.score_expanded(black_box(&q), item)))
    });
}

/// The tentpole comparison: on a 50k-concept world, indexed retrieval vs.
/// the reference full scan, and 4-worker sharded batch vs. sequential
/// indexed over a 64-query batch. Results are asserted identical before
/// anything is timed, so the speedups never come from answer drift.
fn bench_search_at_scale(c: &mut Criterion) {
    const N_CONCEPTS: usize = 50_000;
    const BATCH: usize = 64;
    let kg = scale_world(N_CONCEPTS);
    let engine = SemanticSearch::new(
        &kg,
        SearchConfig {
            batch_workers: 4,
            ..Default::default()
        },
    );
    let sequential = SemanticSearch::new(
        &kg,
        SearchConfig {
            batch_workers: 1,
            ..Default::default()
        },
    );

    let vocab = scale_vocab();
    let queries: Vec<String> = (0..BATCH)
        .map(|i| {
            format!(
                "{} {}",
                vocab[(i * 31) % vocab.len()],
                vocab[(i * 17 + 5) % vocab.len()]
            )
        })
        .collect();
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();

    // Correctness gate: indexed == scan per query, batched == sequential.
    for q in &refs {
        assert_eq!(
            engine.search(q),
            engine.search_scan(q),
            "index diverged on {q:?}"
        );
    }
    assert_eq!(engine.search_batch(&refs), sequential.search_batch(&refs));

    c.bench_function("scale/search_linear_scan_50k", |b| {
        b.iter(|| black_box(engine.search_scan(black_box(refs[0]))))
    });
    c.bench_function("scale/search_indexed_50k", |b| {
        b.iter(|| black_box(engine.search(black_box(refs[0]))))
    });
    c.bench_function("scale/search_batch64_seq_50k", |b| {
        b.iter(|| black_box(sequential.search_batch(black_box(&refs))))
    });
    c.bench_function("scale/search_batch64_4workers_50k", |b| {
        b.iter(|| black_box(engine.search_batch(black_box(&refs))))
    });

    // Headline numbers: medians over fixed runs, printed as ratios.
    let scan = median_secs(9, || {
        refs.iter()
            .map(|q| engine.search_scan(q).len())
            .sum::<usize>()
    });
    let indexed = median_secs(9, || {
        refs.iter().map(|q| engine.search(q).len()).sum::<usize>()
    });
    let batch_seq = median_secs(9, || sequential.search_batch(&refs).len());
    let batch_par = median_secs(9, || engine.search_batch(&refs).len());
    println!(
        "scale/summary: indexed is {:.1}x faster than linear scan ({:.2} ms vs {:.2} ms per 64-query batch)",
        scan / indexed,
        indexed * 1e3,
        scan * 1e3,
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "scale/summary: 4-worker batch is {:.2}x faster than sequential indexed \
         ({:.2} ms vs {:.2} ms) on {cores} core(s){}",
        batch_seq / batch_par,
        batch_par * 1e3,
        batch_seq * 1e3,
        if cores == 1 {
            " — sharding needs >1 core to win; expect ~parity here"
        } else {
            ""
        },
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_apps, bench_search_at_scale
}
criterion_main!(benches);
