//! Serving-side latency of the §8 applications over a ground-truth-populated
//! net: semantic search, recommendation, QA, and isA-expanded relevance.

use alicoco::AliCoCo;
use alicoco_apps::{
    CognitiveRecommender, RecommendConfig, RelevanceScorer, ScenarioQa, SearchConfig,
    SemanticSearch,
};
use alicoco_corpus::{concept_relevant_item, Dataset};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn ground_truth_kg(ds: &Dataset) -> AliCoCo {
    let mut kg = AliCoCo::new();
    let root = kg.add_class("concept", None);
    let mut domain_class = Vec::new();
    for d in alicoco_corpus::Domain::ALL {
        domain_class.push(kg.add_class(d.name(), Some(root)));
    }
    for (surface, d) in ds.world.lexicon.all_terms() {
        kg.add_primitive(surface, domain_class[d.index()]);
    }
    let cat = domain_class[alicoco_corpus::Domain::Category.index()];
    let mut prim_of_node = std::collections::HashMap::new();
    for id in ds.world.tree.ids().skip(1) {
        prim_of_node.insert(id, kg.add_primitive(ds.world.tree.name(id), cat));
    }
    let item_ids: Vec<_> = ds.items.iter().map(|it| kg.add_item(&it.title)).collect();
    for (it, &iid) in ds.items.iter().zip(&item_ids) {
        kg.link_item_primitive(iid, prim_of_node[&it.category]);
    }
    for spec in ds.concepts.iter().filter(|c| c.good) {
        let cid = kg.add_concept(&spec.text());
        for s in &spec.slots {
            for &p in kg.primitives_by_name(&s.surface).to_vec().iter() {
                kg.link_concept_primitive(cid, p);
            }
        }
        for (ii, it) in ds.items.iter().enumerate().take(300) {
            if concept_relevant_item(&ds.world, spec, it) {
                kg.link_concept_item(cid, item_ids[ii], 0.9);
            }
        }
    }
    kg
}

fn bench_apps(c: &mut Criterion) {
    let ds = Dataset::tiny();
    let kg = ground_truth_kg(&ds);

    let search = SemanticSearch::new(&kg, SearchConfig::default());
    c.bench_function("apps/semantic_search", |b| {
        b.iter(|| black_box(search.search(black_box("outdoor barbecue"))))
    });

    let recommender = CognitiveRecommender::new(&kg, RecommendConfig::default());
    let history: Vec<alicoco::ItemId> = kg
        .item_ids()
        .filter(|&i| !kg.concepts_for_item(i).is_empty())
        .take(3)
        .collect();
    c.bench_function("apps/recommend_3_item_history", |b| {
        b.iter(|| black_box(recommender.recommend(black_box(&history))))
    });
    c.bench_function("apps/recommender_index_build", |b| {
        b.iter(|| black_box(CognitiveRecommender::new(&kg, RecommendConfig::default())))
    });

    let qa = ScenarioQa::new(&kg);
    c.bench_function("apps/question_answering", |b| {
        b.iter(|| black_box(qa.answer(black_box("what do i need for hiking?"))))
    });

    let scorer = RelevanceScorer::build(&kg);
    let q = vec!["top".to_string()];
    let item = kg.item_ids().next().unwrap();
    c.bench_function("apps/relevance_plain", |b| {
        b.iter(|| black_box(scorer.score_plain(black_box(&q), item)))
    });
    c.bench_function("apps/relevance_isa_expanded", |b| {
        b.iter(|| black_box(scorer.score_expanded(black_box(&q), item)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_apps
}
criterion_main!(benches);
