//! A minimal JSON reader for the `BENCH_*.json` files the benches emit —
//! enough of RFC 8259 for our own output (objects, arrays, strings with
//! basic escapes, numbers, booleans, null) with no external dependency.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64` — bench metrics are measurements).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, like most readers).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is an error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (last duplicate wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render back to JSON text (pretty, two-space indent) so tools can
    /// rewrite `BENCH_*.json` files in place. `parse(render(v)) == v`
    /// for every value this module can hold.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    render_str(out, key);
                    out.push_str(": ");
                    value.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_num(out: &mut String, n: f64) {
    if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/Inf; a measurement that produced one is absent.
        out.push_str("null");
    }
}

fn render_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            members.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs never appear in our metric names;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_documents() {
        let doc = r#"{
            "batch_size": 8,
            "models": [
                {"model": "vocab_miner", "examples_per_sec_1_worker": 1234.56, "parity": true},
                {"model": "tagger", "speedup": 1.5, "note": null}
            ]
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("batch_size").unwrap().as_num(), Some(8.0));
        let Json::Arr(models) = v.get("models").unwrap() else {
            panic!("models must be an array");
        };
        assert_eq!(
            models[0].get("model").unwrap().as_str(),
            Some("vocab_miner")
        );
        assert_eq!(
            models[0].get("examples_per_sec_1_worker").unwrap().as_num(),
            Some(1234.56)
        );
        assert_eq!(models[1].get("note"), Some(&Json::Null));
        assert_eq!(models[0].get("parity"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parses_strings_numbers_and_escapes() {
        assert_eq!(
            Json::parse(r#""a\n\"b\"A""#).unwrap(),
            Json::Str("a\n\"b\"A".to_string())
        );
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(2.0));
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let doc = r#"{
            "meta": {"bench": "serving", "note": "a \"quoted\" name\n"},
            "levels": [
                {"target_qps": 200, "achieved_qps": 199.5, "p99_ns": 120000, "passed": true},
                {"target_qps": 3200, "achieved_qps": 801.25, "passed": false, "note": null}
            ],
            "empty_obj": {},
            "empty_arr": [],
            "negative": -1.5e3
        }"#;
        let v = Json::parse(doc).unwrap();
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Rendering is deterministic: same value, same bytes.
        assert_eq!(v.render(), text);
        // And idempotent through a second roundtrip.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn render_emits_compact_scalars() {
        assert_eq!(Json::Num(8.0).render(), "8\n");
        assert_eq!(Json::Str("a\tb".into()).render(), "\"a\\tb\"\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }
}
