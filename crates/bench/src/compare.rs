//! Perf-regression comparison between two `BENCH_*.json` documents: the
//! checked-in baseline and a fresh run. Metrics are flattened to dotted
//! keys, classified by name into better-direction classes, and gated with
//! a relative tolerance plus per-class absolute noise floors so that
//! microsecond jitter on a fast machine never fails CI.

use crate::json::Json;

/// Which direction of change is a regression for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Latency-like (`*_ns`, `*_secs`): increases regress.
    LowerBetter,
    /// Throughput-like (`*per_sec`, `*qps`, `*speedup`): decreases regress.
    HigherBetter,
    /// Descriptive (counts, sizes, flags): reported but never gated.
    Info,
}

impl Direction {
    /// Classify a flattened metric key by suffix conventions, with the
    /// absolute noise floor below which changes are never regressions.
    pub fn of(key: &str) -> (Direction, f64) {
        if key.ends_with("overhead_pct") {
            // Percentage points: an overhead gate hovering near 0 swings
            // by whole points run to run.
            (Direction::LowerBetter, 2.0)
        } else if key.ends_with("p99_ns") {
            // Tail percentiles are the noisiest latency statistic — a
            // single scheduler hiccup in 4k samples moves p99 by tens of
            // microseconds. Real regressions on slow paths still trip the
            // relative tolerance far above this floor.
            (Direction::LowerBetter, 25_000.0)
        } else if key.ends_with("_ns") {
            (Direction::LowerBetter, 1_000.0)
        } else if key.ends_with("_secs") {
            (Direction::LowerBetter, 1e-3)
        } else if key.ends_with("error_rate") {
            // Error fractions in [0, 1]. A loaded open-loop bench sheds a
            // handful of requests run to run, so give two percentage
            // points of absolute slack — but beyond it a rising error
            // rate is a regression even though the relative change from
            // a ~0 baseline is astronomically large (which is exactly
            // why the generic Info fallback must not swallow this key).
            (Direction::LowerBetter, 0.02)
        } else if key.ends_with("saturation_qps") {
            // Saturation throughput from the load sweep: discrete qps
            // levels make it chunky, so the floor is one whole level of
            // the smallest sweep step rather than 1 qps.
            (Direction::HigherBetter, 25.0)
        } else if key.ends_with("recall_at_10") {
            // Recall fractions in [0, 1] from an approximate index: a
            // point or two of run-to-run jitter is noise, but quality has
            // an unconditional absolute bar too — see [`MIN_RECALL_AT_10`]
            // and the `recall_at_10` arm of the minimum gate in
            // [`compare`], which fails a low value regardless of what the
            // baseline had slipped to.
            (Direction::HigherBetter, 0.02)
        } else if key.ends_with("per_sec") || key.ends_with("qps") {
            (Direction::HigherBetter, 1.0)
        } else if key.ends_with("speedup") {
            // Parallel speedup on a loaded shared runner swings by tenths,
            // so relative changes get a generous floor — but the floor
            // alone would mask a parallel path collapsing toward serial.
            // Speedups therefore also carry an absolute minimum (see
            // [`speedup_minimum`] and the `min_speedup` gate in
            // [`compare`]): a value below the machine-appropriate minimum
            // fails regardless of what the baseline was.
            (Direction::HigherBetter, 0.25)
        } else {
            (Direction::Info, 0.0)
        }
    }
}

/// Minimum acceptable `*speedup` value on a multi-core machine: at 2+
/// workers the engine must deliver a real win, not just avoid regressing
/// a possibly-already-broken baseline.
pub const MIN_SPEEDUP_MULTICORE: f64 = 1.4;

/// Minimum on a single-CPU machine, where the pool runs inline and the
/// honest expectation is parity: the engine must not make more workers
/// *slower* (the failure mode this gate exists to catch), but it cannot
/// beat one core with one core.
pub const MIN_SPEEDUP_PARITY: f64 = 0.9;

/// Absolute floor for `*cold_load_speedup` metrics: binary-vs-TSV *cold
/// start to first answer*. TSV's only path to any answer is a full
/// materializing load; the binary codec opens its checksummed view and
/// answers a keyword probe zero-copy from the persisted postings. Unlike
/// parallel speedups this gate is not about worker count — both paths run
/// on one core — so no machine context applies and the floor holds
/// unconditionally: a cold process over the binary snapshot must reach
/// its first answer at least this much faster than over TSV, or the
/// storage layer has lost its reason to exist.
pub const MIN_COLD_LOAD_SPEEDUP: f64 = 5.0;

/// Absolute floor for `*recall_at_10` metrics: the hybrid-retrieval
/// quality bar. The HNSW index is allowed to be approximate — that is
/// the whole trade — but below 0.9 recall against the exact scan oracle
/// the fused candidate set starts silently dropping answers the paper's
/// semantic-matching task exists to surface, so the gate holds
/// unconditionally: no baseline drift, machine context, or tolerance
/// setting weakens it.
pub const MIN_RECALL_AT_10: f64 = 0.9;

/// Pick the speedup minimum for a current run from its own machine
/// context: the flattened `cpus` key the train and serving benches both
/// record. Runs without the key (older documents) get the conservative
/// parity minimum.
pub fn speedup_minimum(current: &[(String, f64)]) -> f64 {
    let cpus = current
        .iter()
        .find(|(k, _)| k == "cpus")
        .map(|(_, v)| *v)
        .unwrap_or(1.0);
    if cpus >= 2.0 {
        MIN_SPEEDUP_MULTICORE
    } else {
        MIN_SPEEDUP_PARITY
    }
}

/// Flatten a parsed bench document into sorted `(dotted key, value)` pairs.
/// Array elements that are objects with a `"model"` or `"name"` string
/// member are keyed by it (stable across reordering); other elements fall
/// back to their index. Booleans flatten to 0/1 so parity flags are diffed.
pub fn flatten(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(doc, String::new(), &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn walk(v: &Json, prefix: String, out: &mut Vec<(String, f64)>) {
    let join = |suffix: &str| {
        if prefix.is_empty() {
            suffix.to_string()
        } else {
            format!("{prefix}.{suffix}")
        }
    };
    match v {
        Json::Num(n) => out.push((prefix, *n)),
        Json::Bool(b) => out.push((prefix, *b as u8 as f64)),
        Json::Obj(members) => {
            for (k, val) in members {
                walk(val, join(k), out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = item
                    .get("model")
                    .or_else(|| item.get("name"))
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .unwrap_or_else(|| i.to_string());
                walk(item, join(&label), out);
            }
        }
        Json::Null | Json::Str(_) => {}
    }
}

/// Outcome of one metric's baseline-vs-current comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance (or informational).
    Ok,
    /// Worse than baseline beyond tolerance and noise floor.
    Regression,
    /// Better than baseline beyond tolerance — worth refreshing the baseline.
    Improved,
    /// Present in the baseline but missing from the current run.
    MissingInCurrent,
    /// New metric with no baseline; never gated by tolerance (but `speedup`
    /// metrics are still held to the absolute minimum).
    NewInCurrent,
    /// A `speedup` metric below the absolute direction-aware minimum —
    /// fails even when the (possibly already-regressed) baseline tolerates
    /// the value.
    BelowMinimum,
}

/// One row of the comparison table.
#[derive(Clone, Debug)]
pub struct MetricDiff {
    /// Flattened dotted key.
    pub key: String,
    /// Baseline value (`None` for new metrics).
    pub base: Option<f64>,
    /// Current value (`None` when missing).
    pub current: Option<f64>,
    /// Signed relative change in percent, when both sides exist and the
    /// baseline is non-zero.
    pub change_pct: Option<f64>,
    /// Gate outcome.
    pub status: Status,
}

/// Compare flattened baseline and current metrics with a relative
/// `tolerance_pct`. A gated metric regresses iff it moved in the worse
/// direction by more than `max(tolerance_pct% of |baseline|, noise floor)`.
/// Metrics present only in the baseline are flagged (renames must update
/// the baseline); metrics present only in the current run are informational.
///
/// `min_speedup`, when set, is an absolute floor applied to every
/// `*speedup` metric in the current run — including ones with a tolerant
/// or missing baseline. A value below it becomes [`Status::BelowMinimum`],
/// because a speedup the baseline "tolerates" can still mean the parallel
/// path has collapsed; pick the floor with [`speedup_minimum`].
///
/// Two further machine-aware behaviors: `*recall_at_10` metrics carry the
/// unconditional [`MIN_RECALL_AT_10`] floor, and `*saturation_qps`
/// metrics are gated against a baseline pro-rated by the two documents'
/// recorded `cpus` (a smaller runner is held to a proportionally smaller
/// throughput bar, never a larger one).
pub fn compare(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    tolerance_pct: f64,
    min_speedup: Option<f64>,
) -> Vec<MetricDiff> {
    let below_minimum = |key: &str, cur: f64| {
        if key.ends_with("cold_load_speedup") {
            // Single-core storage gate: always enforced, machine-independent.
            cur < MIN_COLD_LOAD_SPEEDUP
        } else if key.ends_with("recall_at_10") {
            // Retrieval-quality gate: always enforced, machine-independent.
            cur < MIN_RECALL_AT_10
        } else {
            key.ends_with("speedup") && min_speedup.is_some_and(|min| cur < min)
        }
    };
    // Saturation throughput scales with cores. When both documents record
    // their machine's `cpus`, gate `*saturation_qps` against the baseline
    // pro-rated to the current machine (capped at 1.0 so a bigger runner
    // never lowers the bar): a 1-cpu runner is not a regression against a
    // 4-cpu baseline, it is a smaller machine. Documents without the
    // stamp keep the old unconditional comparison.
    let cpus_of = |doc: &[(String, f64)]| doc.iter().find(|(k, _)| k == "cpus").map(|(_, v)| *v);
    let saturation_scale = match (cpus_of(baseline), cpus_of(current)) {
        (Some(base), Some(cur)) if base > 0.0 && cur > 0.0 => (cur / base).min(1.0),
        _ => 1.0,
    };
    let mut out = Vec::new();
    let cur_lookup: std::collections::BTreeMap<&str, f64> =
        current.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let base_keys: std::collections::BTreeSet<&str> =
        baseline.iter().map(|(k, _)| k.as_str()).collect();
    for (key, base) in baseline {
        let Some(&cur) = cur_lookup.get(key.as_str()) else {
            out.push(MetricDiff {
                key: key.clone(),
                base: Some(*base),
                current: None,
                change_pct: None,
                status: Status::MissingInCurrent,
            });
            continue;
        };
        let (dir, floor) = Direction::of(key);
        // The reported change stays relative to the real baseline value;
        // only the gate itself uses the cpu-adjusted expectation.
        let change_pct = (*base != 0.0).then(|| (cur - base) / base.abs() * 100.0);
        let gate_base = if key.ends_with("saturation_qps") {
            *base * saturation_scale
        } else {
            *base
        };
        let worse_by = match dir {
            Direction::LowerBetter => cur - gate_base,
            Direction::HigherBetter => gate_base - cur,
            Direction::Info => 0.0,
        };
        let budget = (tolerance_pct / 100.0 * gate_base.abs()).max(floor);
        let status = if below_minimum(key, cur) {
            Status::BelowMinimum
        } else if dir == Direction::Info {
            Status::Ok
        } else if worse_by > budget {
            Status::Regression
        } else if -worse_by > budget {
            Status::Improved
        } else {
            Status::Ok
        };
        out.push(MetricDiff {
            key: key.clone(),
            base: Some(*base),
            current: Some(cur),
            change_pct,
            status,
        });
    }
    for (key, cur) in current {
        if !base_keys.contains(key.as_str()) {
            out.push(MetricDiff {
                key: key.clone(),
                base: None,
                current: Some(*cur),
                change_pct: None,
                status: if below_minimum(key, *cur) {
                    Status::BelowMinimum
                } else {
                    Status::NewInCurrent
                },
            });
        }
    }
    out
}

/// Render the comparison as an aligned text table.
pub fn render_table(diffs: &[MetricDiff]) -> String {
    let fmt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    };
    let mut rows: Vec<[String; 5]> = vec![[
        "metric".into(),
        "baseline".into(),
        "current".into(),
        "change".into(),
        "status".into(),
    ]];
    for d in diffs {
        rows.push([
            d.key.clone(),
            fmt(d.base),
            fmt(d.current),
            d.change_pct
                .map(|p| format!("{p:+.1}%"))
                .unwrap_or_else(|| "-".to_string()),
            match d.status {
                Status::Ok => "ok",
                Status::Regression => "REGRESSION",
                Status::Improved => "improved",
                Status::MissingInCurrent => "MISSING",
                Status::NewInCurrent => "new",
                Status::BelowMinimum => "BELOW-MIN",
            }
            .to_string(),
        ]);
    }
    let mut widths = [0usize; 5];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &rows {
        for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..*w {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn flatten_keys_arrays_by_model_name() {
        let doc = Json::parse(
            r#"{"models": [
                {"model": "tagger", "examples_per_sec_1_worker": 100.0, "parity": true},
                {"model": "miner", "speedup": 2.0}
            ], "batch_size": 8}"#,
        )
        .unwrap();
        let flat = flatten(&doc);
        assert!(flat.contains(&("models.tagger.examples_per_sec_1_worker".to_string(), 100.0)));
        assert!(flat.contains(&("models.tagger.parity".to_string(), 1.0)));
        assert!(flat.contains(&("models.miner.speedup".to_string(), 2.0)));
        assert!(flat.contains(&("batch_size".to_string(), 8.0)));
    }

    #[test]
    fn injected_2x_regression_fails_both_directions() {
        let base = metrics(&[("search.p50_ns", 100_000.0), ("batch.qps", 500.0)]);
        // Latency doubled, throughput halved: both must regress at 15%.
        let cur = metrics(&[("search.p50_ns", 200_000.0), ("batch.qps", 250.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert!(diffs.iter().all(|d| d.status == Status::Regression));
    }

    #[test]
    fn within_tolerance_and_improvements_pass() {
        let base = metrics(&[("search.p50_ns", 100_000.0), ("batch.qps", 500.0)]);
        let cur = metrics(&[("search.p50_ns", 110_000.0), ("batch.qps", 1_000.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert_eq!(diffs[0].status, Status::Ok, "10% latency rise is tolerated");
        assert_eq!(diffs[1].status, Status::Improved);
    }

    #[test]
    fn noise_floors_swallow_tiny_absolute_changes() {
        // 3x worse, but only 300ns in absolute terms — under the 1µs floor.
        let base = metrics(&[("retrieve_ns", 150.0), ("overhead_pct", 0.2)]);
        let cur = metrics(&[("retrieve_ns", 450.0), ("overhead_pct", 1.9)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert!(diffs.iter().all(|d| d.status == Status::Ok));
        // Past the floor, it gates again.
        let cur = metrics(&[("retrieve_ns", 150_000.0), ("overhead_pct", 4.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert!(diffs.iter().all(|d| d.status == Status::Regression));
    }

    #[test]
    fn error_rate_gates_lower_better_with_an_absolute_floor() {
        // The relative change from a near-zero baseline is huge, but the
        // absolute floor absorbs a couple of shed requests...
        let base = metrics(&[("serving.http.error_rate", 0.0)]);
        let cur = metrics(&[("serving.http.error_rate", 0.015)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert_eq!(diffs[0].status, Status::Ok);
        // ...while a real error-rate climb regresses despite any floor.
        let cur = metrics(&[("serving.http.error_rate", 0.10)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert_eq!(diffs[0].status, Status::Regression);
        // The lower-better direction: dropping back to zero improves
        // (or at worst passes), never regresses.
        let base = metrics(&[("serving.http.error_rate", 0.10)]);
        let cur = metrics(&[("serving.http.error_rate", 0.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert_ne!(diffs[0].status, Status::Regression);
    }

    #[test]
    fn saturation_qps_gates_higher_better() {
        let (dir, floor) = Direction::of("serving.http.saturation_qps");
        assert_eq!(dir, Direction::HigherBetter);
        assert!(floor >= 1.0);
        // Throughput collapse is a regression...
        let base = metrics(&[("serving.http.saturation_qps", 1200.0)]);
        let cur = metrics(&[("serving.http.saturation_qps", 600.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert_eq!(diffs[0].status, Status::Regression);
        // ...a climb is an improvement, not a false alarm.
        let cur = metrics(&[("serving.http.saturation_qps", 2400.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert_eq!(diffs[0].status, Status::Improved);
        // One sweep-step of chunkiness stays under the floor.
        let cur = metrics(&[("serving.http.saturation_qps", 1180.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert_eq!(diffs[0].status, Status::Ok);
    }

    #[test]
    fn tail_and_speedup_floors_absorb_scheduler_jitter() {
        // +21% on a 36µs p99 is one slow sample out of 4k; a 0.15 dip on a
        // healthy 1.8x speedup is shared-runner noise. Neither should gate.
        let base = metrics(&[("retrieve_p99_ns", 36_000.0), ("m.speedup", 1.80)]);
        let cur = metrics(&[("retrieve_p99_ns", 43_500.0), ("m.speedup", 1.65)]);
        let diffs = compare(&base, &cur, 15.0, Some(MIN_SPEEDUP_MULTICORE));
        assert!(diffs.iter().all(|d| d.status == Status::Ok), "{diffs:?}");
        // A genuine 2× tail blowup / serialized parallel path still fails.
        let cur = metrics(&[("retrieve_p99_ns", 72_000.0), ("m.speedup", 0.40)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert!(diffs.iter().all(|d| d.status == Status::Regression));
    }

    #[test]
    fn speedup_below_minimum_fails_even_when_the_baseline_tolerates_it() {
        // The regression this gate exists for: the baseline itself had
        // already slipped to 0.95, so a further dip to 0.79 sits inside the
        // 0.25 noise floor and the pure-relative gate calls it Ok. The
        // absolute minimum catches it anyway.
        let base = metrics(&[("m.speedup", 0.95)]);
        let cur = metrics(&[("m.speedup", 0.79)]);
        assert_eq!(compare(&base, &cur, 15.0, None)[0].status, Status::Ok);
        let diffs = compare(&base, &cur, 15.0, Some(MIN_SPEEDUP_PARITY));
        assert_eq!(diffs[0].status, Status::BelowMinimum);
        // On a multi-core machine the bar is a real win, not parity.
        let cur = metrics(&[("m.speedup", 1.1)]);
        let diffs = compare(&base, &cur, 15.0, Some(MIN_SPEEDUP_MULTICORE));
        assert_eq!(diffs[0].status, Status::BelowMinimum);
    }

    #[test]
    fn cold_load_speedup_has_an_unconditional_absolute_floor() {
        // A 4x binary-vs-TSV load at 1M fails even when the baseline had
        // slipped enough for the relative gate to tolerate it, and even
        // with no min_speedup context at all.
        let base = metrics(&[("snapshot.n1000k.cold_load_speedup", 5.5)]);
        let cur = metrics(&[("snapshot.n1000k.cold_load_speedup", 4.0)]);
        let diffs = compare(&base, &cur, 50.0, None);
        assert_eq!(diffs[0].status, Status::BelowMinimum);
        // Above the floor with a tolerant baseline: fine.
        let cur = metrics(&[("snapshot.n1000k.cold_load_speedup", 5.1)]);
        assert_eq!(compare(&base, &cur, 50.0, None)[0].status, Status::Ok);
        // A brand-new key (no baseline) is still held to the floor.
        let cur = metrics(&[("snapshot.n1000k.cold_load_speedup", 3.0)]);
        assert_eq!(
            compare(&metrics(&[]), &cur, 15.0, None)[0].status,
            Status::BelowMinimum
        );
        // The machine-aware parity floor does not weaken it.
        let cur = metrics(&[("snapshot.n1000k.cold_load_speedup", 1.2)]);
        assert_eq!(
            compare(&base, &cur, 50.0, Some(MIN_SPEEDUP_PARITY))[0].status,
            Status::BelowMinimum
        );
    }

    #[test]
    fn new_speedup_metrics_are_still_held_to_the_minimum() {
        // A renamed/new speedup key has no baseline, so tolerance can't gate
        // it — the absolute minimum must.
        let base = metrics(&[]);
        let cur = metrics(&[("m.speedup", 0.5), ("m.examples", 300.0)]);
        let diffs = compare(&base, &cur, 15.0, Some(MIN_SPEEDUP_PARITY));
        assert_eq!(diffs[0].status, Status::BelowMinimum);
        assert_eq!(
            diffs[1].status,
            Status::NewInCurrent,
            "non-speedup stays informational"
        );
        let cur = metrics(&[("m.speedup", 1.9)]);
        assert_eq!(
            compare(&base, &cur, 15.0, Some(MIN_SPEEDUP_MULTICORE))[0].status,
            Status::NewInCurrent
        );
    }

    #[test]
    fn speedup_minimum_follows_the_cpu_context_of_the_current_run() {
        assert_eq!(
            speedup_minimum(&metrics(&[("cpus", 8.0), ("m.speedup", 1.0)])),
            MIN_SPEEDUP_MULTICORE
        );
        assert_eq!(
            speedup_minimum(&metrics(&[("cpus", 1.0), ("m.speedup", 1.0)])),
            MIN_SPEEDUP_PARITY
        );
        // Documents without machine context (serving bench, older schemas)
        // get the conservative parity floor.
        assert_eq!(
            speedup_minimum(&metrics(&[("qps", 100.0)])),
            MIN_SPEEDUP_PARITY
        );
    }

    #[test]
    fn recall_at_10_has_an_unconditional_absolute_floor() {
        let (dir, floor) = Direction::of("serving.ann.recall_at_10");
        assert_eq!(dir, Direction::HigherBetter);
        assert!(floor > 0.0);
        // Run-to-run jitter of an approximate index stays inside the floor...
        let base = metrics(&[("serving.ann.recall_at_10", 0.97)]);
        let cur = metrics(&[("serving.ann.recall_at_10", 0.955)]);
        assert_eq!(compare(&base, &cur, 15.0, None)[0].status, Status::Ok);
        // ...but dipping under 0.9 fails even though the relative change
        // from the baseline is within any tolerance.
        let cur = metrics(&[("serving.ann.recall_at_10", 0.89)]);
        assert_eq!(
            compare(&base, &cur, 50.0, None)[0].status,
            Status::BelowMinimum
        );
        // A brand-new recall key (no baseline) is still held to the floor.
        let cur = metrics(&[("serving.ann.recall_at_10", 0.85)]);
        assert_eq!(
            compare(&metrics(&[]), &cur, 15.0, None)[0].status,
            Status::BelowMinimum
        );
        let cur = metrics(&[("serving.ann.recall_at_10", 0.95)]);
        assert_eq!(
            compare(&metrics(&[]), &cur, 15.0, None)[0].status,
            Status::NewInCurrent
        );
        // A baseline that itself slipped below the floor cannot launder a
        // low current value through the relative gate.
        let base = metrics(&[("serving.ann.recall_at_10", 0.80)]);
        let cur = metrics(&[("serving.ann.recall_at_10", 0.80)]);
        assert_eq!(
            compare(&base, &cur, 15.0, None)[0].status,
            Status::BelowMinimum
        );
    }

    #[test]
    fn saturation_qps_gate_is_cpu_conditional() {
        // Baseline captured on 4 cpus; the current run is a 1-cpu runner.
        // The bar pro-rates to 800 qps: 900 achieved clears it...
        let base = metrics(&[("cpus", 4.0), ("serving.http.saturation_qps", 3200.0)]);
        let cur = metrics(&[("cpus", 1.0), ("serving.http.saturation_qps", 900.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        let sat = diffs
            .iter()
            .find(|d| d.key.ends_with("saturation_qps"))
            .unwrap();
        assert_ne!(sat.status, Status::Regression, "{diffs:?}");
        // ...while a collapse below even the pro-rated bar still fails.
        let cur = metrics(&[("cpus", 1.0), ("serving.http.saturation_qps", 500.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        let sat = diffs
            .iter()
            .find(|d| d.key.ends_with("saturation_qps"))
            .unwrap();
        assert_eq!(sat.status, Status::Regression);
        // A bigger runner never lowers the bar: the scale caps at 1.
        let cur = metrics(&[("cpus", 16.0), ("serving.http.saturation_qps", 1600.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        let sat = diffs
            .iter()
            .find(|d| d.key.ends_with("saturation_qps"))
            .unwrap();
        assert_eq!(sat.status, Status::Regression);
        // Documents without the stamp keep the unconditional comparison.
        let base = metrics(&[("serving.http.saturation_qps", 3200.0)]);
        let cur = metrics(&[("serving.http.saturation_qps", 900.0)]);
        assert_eq!(
            compare(&base, &cur, 15.0, None)[0].status,
            Status::Regression
        );
    }

    #[test]
    fn info_metrics_are_never_gated() {
        let base = metrics(&[("models.tagger.examples", 300.0)]);
        let cur = metrics(&[("models.tagger.examples", 600.0)]);
        assert_eq!(compare(&base, &cur, 15.0, None)[0].status, Status::Ok);
    }

    #[test]
    fn missing_and_new_metrics_are_flagged() {
        let base = metrics(&[("old_ns", 10.0)]);
        let cur = metrics(&[("new_ns", 10.0)]);
        let diffs = compare(&base, &cur, 15.0, None);
        assert_eq!(diffs[0].status, Status::MissingInCurrent);
        assert_eq!(diffs[1].status, Status::NewInCurrent);
    }

    #[test]
    fn table_renders_every_row() {
        let base = metrics(&[("a_ns", 10.0)]);
        let cur = metrics(&[("a_ns", 10.0), ("b_ns", 5.0)]);
        let table = render_table(&compare(&base, &cur, 15.0, None));
        assert!(table.contains("a_ns"));
        assert!(table.contains("new"));
        assert_eq!(table.lines().count(), 3);
    }
}
