//! `serve-load` — open-loop load generator for `alicoco-serve`.
//!
//! Two modes:
//!
//! - `--probe`: one GET per route, each on a fresh connection, all of
//!   which must answer 200. Exit code 1 otherwise. CI smoke uses this
//!   to prove the server actually serves before load starts.
//! - load (default): sweep ascending qps levels (`--qps 200,400,...`),
//!   each for `--secs` seconds across `--clients` keep-alive
//!   connections. Requests are sent on a fixed schedule and latency is
//!   measured from the *scheduled* start, not the send, so queueing
//!   delay under saturation is charged to the server (no coordinated
//!   omission). A level passes when achieved throughput reaches 90% of
//!   target with an error rate at or under 1%; the saturation point is
//!   the highest achieved qps among passing levels.
//!
//! With `--out BENCH_serving.json` the summary is merged into the bench
//! document under a `"serving": {"http": ...}` section (other sections
//! are preserved), where `bench-compare` gates `serving.http.*`.
//!
//! ```text
//! serve-load --addr 127.0.0.1:7411 [--probe] [--clients 4]
//!            [--qps 200,400,800,1600] [--secs 2] [--out FILE]
//!            [--require-zero-5xx]
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use alicoco_bench::json::Json;

const PROBE_PATHS: &[&str] = &[
    "/healthz",
    "/metrics",
    "/search?q=grill&k=3",
    "/qa?q=outdoor+barbecue",
    "/recommend",
    "/relevance?q=grill+barbecue&k=5",
];

/// The load mix: rotate through the real engine routes so the sweep
/// exercises search scoring, QA, and recommendation, not just parsing.
const LOAD_PATHS: &[&str] = &[
    "/search?q=grill&k=5",
    "/qa?q=outdoor+barbecue",
    "/search?q=outdoor+barbecue&k=10",
    "/recommend",
    "/relevance?q=grill+barbecue&k=5",
];

struct Options {
    addr: String,
    probe: bool,
    clients: usize,
    qps_levels: Vec<f64>,
    secs: f64,
    out: Option<String>,
    require_zero_5xx: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        probe: false,
        clients: 4,
        qps_levels: vec![200.0, 400.0, 800.0, 1600.0, 3200.0],
        secs: 2.0,
        out: None,
        require_zero_5xx: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = it.next().ok_or("--addr requires host:port")?.clone(),
            "--probe" => opts.probe = true,
            "--require-zero-5xx" => opts.require_zero_5xx = true,
            "--clients" => {
                let v = it.next().ok_or("--clients requires a count")?;
                opts.clients = v.parse().map_err(|e| format!("bad --clients {v:?}: {e}"))?;
                if opts.clients == 0 {
                    return Err("--clients must be at least 1".to_string());
                }
            }
            "--qps" => {
                let v = it.next().ok_or("--qps requires a comma list")?;
                opts.qps_levels = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("bad qps level {s:?}: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if opts.qps_levels.iter().any(|&q| q.is_nan() || q <= 0.0) {
                    return Err("qps levels must be positive".to_string());
                }
            }
            "--secs" => {
                let v = it.next().ok_or("--secs requires a duration")?;
                opts.secs = v.parse().map_err(|e| format!("bad --secs {v:?}: {e}"))?;
                if opts.secs.is_nan() || opts.secs <= 0.0 {
                    return Err("--secs must be positive".to_string());
                }
            }
            "--out" => opts.out = Some(it.next().ok_or("--out requires a path")?.clone()),
            "--help" | "-h" => {
                return Err(
                    "usage: serve-load --addr HOST:PORT [--probe] [--clients N] \
                     [--qps L1,L2,...] [--secs S] [--out FILE] [--require-zero-5xx]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if opts.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(opts)
}

/// One parsed HTTP response: status, whether the server will close, and
/// the (discarded) body length for accounting.
struct Reply {
    status: u16,
    close: bool,
}

/// A keep-alive client connection that reconnects on demand.
struct Client {
    addr: String,
    stream: Option<TcpStream>,
}

impl Client {
    fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            stream: None,
        }
    }

    fn stream(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect(&self.addr)?;
            s.set_read_timeout(Some(Duration::from_secs(5)))?;
            s.set_write_timeout(Some(Duration::from_secs(5)))?;
            s.set_nodelay(true)?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Send one GET and read exactly one response. On any transport
    /// error the connection is dropped so the next call reconnects.
    fn get(&mut self, path: &str) -> std::io::Result<Reply> {
        let result = self.try_get(path);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn try_get(&mut self, path: &str) -> std::io::Result<Reply> {
        let stream = self.stream()?;
        stream.write_all(format!("GET {path} HTTP/1.1\r\nhost: bench\r\n\r\n").as_bytes())?;
        let reply = read_reply(stream)?;
        if reply.close {
            self.stream = None;
        }
        Ok(reply)
    }
}

fn find_subslice(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

fn read_reply(stream: &mut TcpStream) -> std::io::Result<Reply> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparsable status line"))?;
    let mut content_length: Option<usize> = None;
    let mut close = false;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.eq_ignore_ascii_case("close");
            }
        }
    }
    let content_length = content_length.ok_or_else(|| bad("response missing content-length"))?;
    let mut got = buf.len() - head_end;
    while got < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof mid-body",
            ));
        }
        got += n;
    }
    Ok(Reply { status, close })
}

fn probe(addr: &str) -> ExitCode {
    let mut failed = false;
    for path in PROBE_PATHS {
        let mut client = Client::new(addr);
        match client.get(path) {
            Ok(reply) if reply.status == 200 => println!("probe {path}: 200"),
            Ok(reply) => {
                println!("probe {path}: {} (want 200)", reply.status);
                failed = true;
            }
            Err(e) => {
                println!("probe {path}: transport error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("probe ok: {} routes", PROBE_PATHS.len());
        ExitCode::SUCCESS
    }
}

#[derive(Clone, Debug)]
struct LevelOutcome {
    target_qps: f64,
    achieved_qps: f64,
    p50_ns: u64,
    p99_ns: u64,
    error_rate: f64,
    sent: usize,
    errors: usize,
    status_5xx: usize,
}

impl LevelOutcome {
    fn passed(&self) -> bool {
        self.achieved_qps >= 0.9 * self.target_qps && self.error_rate <= 0.01
    }
}

/// Per-client tallies for one level.
#[derive(Default)]
struct ClientTally {
    latencies_ns: Vec<u64>,
    sent: usize,
    ok: usize,
    errors: usize,
    status_5xx: usize,
}

fn run_level(addr: &str, clients: usize, target_qps: f64, secs: f64) -> LevelOutcome {
    let level_start = Instant::now();
    let deadline = level_start + Duration::from_secs_f64(secs);
    let interval = Duration::from_secs_f64(clients as f64 / target_qps);
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut client = Client::new(addr);
                    // Stagger client schedules across one interval.
                    let t0 = level_start + interval.mul_f64(i as f64 / clients as f64);
                    let mut k = 0u32;
                    loop {
                        let scheduled = t0 + interval * k;
                        if scheduled >= deadline {
                            break;
                        }
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let path = LOAD_PATHS[(i + k as usize) % LOAD_PATHS.len()];
                        tally.sent += 1;
                        match client.get(path) {
                            Ok(reply) if reply.status < 400 => {
                                tally.ok += 1;
                                tally
                                    .latencies_ns
                                    .push(scheduled.elapsed().as_nanos() as u64);
                            }
                            Ok(reply) => {
                                tally.errors += 1;
                                if reply.status >= 500 {
                                    tally.status_5xx += 1;
                                }
                            }
                            Err(_) => tally.errors += 1,
                        }
                        k += 1;
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let elapsed = level_start.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|t| t.latencies_ns.clone())
        .collect();
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let sent: usize = tallies.iter().map(|t| t.sent).sum();
    let ok: usize = tallies.iter().map(|t| t.ok).sum();
    let errors: usize = tallies.iter().map(|t| t.errors).sum();
    LevelOutcome {
        target_qps,
        achieved_qps: ok as f64 / elapsed,
        p50_ns: percentile(0.50),
        p99_ns: percentile(0.99),
        error_rate: if sent == 0 {
            0.0
        } else {
            errors as f64 / sent as f64
        },
        sent,
        errors,
        status_5xx: tallies.iter().map(|t| t.status_5xx).sum(),
    }
}

/// Merge the `serving.http` section into `path` (creating the document
/// if absent), preserving every other section — including sibling
/// members of `"serving"` itself (the serving bench writes
/// `serving.ann` before this sweep runs; replacing the whole object
/// would silently drop it and fail the perf gate's missing-key check).
fn merge_summary(path: &str, http: Vec<(String, Json)>) -> Result<(), String> {
    let mut members = match std::fs::read_to_string(path) {
        Ok(src) => match Json::parse(&src).map_err(|e| format!("{path}: {e}"))? {
            Json::Obj(members) => members,
            other => return Err(format!("{path}: expected a JSON object, got {other:?}")),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{path}: {e}")),
    };
    let mut serving = match members.iter().position(|(k, _)| k == "serving") {
        Some(pos) => match members.remove(pos).1 {
            Json::Obj(existing) => existing,
            // A malformed scalar `"serving"` has nothing worth keeping.
            _ => Vec::new(),
        },
        None => Vec::new(),
    };
    serving.retain(|(k, _)| k != "http");
    serving.push(("http".to_string(), Json::Obj(http)));
    members.push(("serving".to_string(), Json::Obj(serving)));
    std::fs::write(path, Json::Obj(members).render()).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if opts.probe {
        return probe(&opts.addr);
    }

    let mut outcomes: Vec<LevelOutcome> = Vec::new();
    for &target in &opts.qps_levels {
        let outcome = run_level(&opts.addr, opts.clients, target, opts.secs);
        println!(
            "level target={target:.0}qps achieved={:.1}qps p50={}ns p99={}ns errors={}/{} ({:.2}%) 5xx={} {}",
            outcome.achieved_qps,
            outcome.p50_ns,
            outcome.p99_ns,
            outcome.errors,
            outcome.sent,
            outcome.error_rate * 100.0,
            outcome.status_5xx,
            if outcome.passed() { "pass" } else { "saturated" },
        );
        outcomes.push(outcome);
    }

    // Saturation point: the best passing level. Latency and error rate
    // are reported at that level, where the gate expects them stable;
    // the top level's error rate shows behavior under deliberate
    // overload and is reported but kept out of the baseline.
    let saturated = outcomes
        .iter()
        .filter(|o| o.passed())
        .max_by(|a, b| a.achieved_qps.total_cmp(&b.achieved_qps))
        .cloned();
    let overload_error_rate = outcomes.last().map_or(0.0, |o| o.error_rate);
    let total_5xx: usize = outcomes.iter().map(|o| o.status_5xx).sum();
    let summary = match &saturated {
        Some(o) => {
            println!(
                "saturation: {:.1} qps (target {:.0}), p50={}ns p99={}ns error_rate={:.4}",
                o.achieved_qps, o.target_qps, o.p50_ns, o.p99_ns, o.error_rate
            );
            o.clone()
        }
        None => {
            eprintln!("no level passed: server saturated below the lowest target");
            LevelOutcome {
                target_qps: 0.0,
                achieved_qps: 0.0,
                p50_ns: 0,
                p99_ns: 0,
                error_rate: 1.0,
                sent: 0,
                errors: 0,
                status_5xx: 0,
            }
        }
    };

    if let Some(out) = &opts.out {
        let http = vec![
            (
                "saturation_qps".to_string(),
                Json::Num(summary.achieved_qps),
            ),
            ("p50_ns".to_string(), Json::Num(summary.p50_ns as f64)),
            ("p99_ns".to_string(), Json::Num(summary.p99_ns as f64)),
            ("error_rate".to_string(), Json::Num(summary.error_rate)),
            (
                "overload_error_rate".to_string(),
                Json::Num(overload_error_rate),
            ),
        ];
        if let Err(e) = merge_summary(out, http) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("merged serving.http into {out}");
    }

    if opts.require_zero_5xx && total_5xx > 0 {
        eprintln!("{total_5xx} responses were 5xx but --require-zero-5xx was set");
        return ExitCode::FAILURE;
    }
    if saturated.is_none() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_summary_preserves_sibling_serving_sections() {
        let path =
            std::env::temp_dir().join(format!("serve_load_merge_{}.json", std::process::id()));
        let path = path.to_string_lossy().into_owned();
        std::fs::write(
            &path,
            r#"{"cpus": 4, "serving": {"ann": {"recall_at_10": 0.97}, "http": {"p50_ns": 1}}}"#,
        )
        .unwrap();
        merge_summary(&path, vec![("p50_ns".to_string(), Json::Num(2.0))]).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        let flat = alicoco_bench::compare::flatten(&doc);
        assert!(flat.contains(&("cpus".to_string(), 4.0)), "{flat:?}");
        assert!(
            flat.contains(&("serving.ann.recall_at_10".to_string(), 0.97)),
            "sibling serving.ann must survive the merge: {flat:?}"
        );
        assert!(
            flat.contains(&("serving.http.p50_ns".to_string(), 2.0)),
            "http must be replaced, not duplicated: {flat:?}"
        );
        assert_eq!(
            flat.iter()
                .filter(|(k, _)| k == "serving.http.p50_ns")
                .count(),
            1
        );
    }

    #[test]
    fn merge_summary_creates_the_document_when_absent() {
        let path =
            std::env::temp_dir().join(format!("serve_load_create_{}.json", std::process::id()));
        let path = path.to_string_lossy().into_owned();
        std::fs::remove_file(&path).ok();
        merge_summary(&path, vec![("p99_ns".to_string(), Json::Num(7.0))]).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        let flat = alicoco_bench::compare::flatten(&doc);
        assert!(flat.contains(&("serving.http.p99_ns".to_string(), 7.0)));
    }
}
