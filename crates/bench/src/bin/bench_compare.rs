//! `bench-compare` — the CI perf gate. Diffs freshly generated
//! `BENCH_*.json` files at the workspace root against the checked-in
//! baselines in `bench-baseline/` and exits non-zero when a gated metric
//! regressed beyond tolerance.
//!
//! ```text
//! bench-compare [--tolerance <pct>] [--baseline-dir <dir>] [files...]
//! ```
//!
//! Defaults: tolerance 15%, baseline dir `bench-baseline`, files
//! `BENCH_train.json BENCH_serving.json`. A metric present in the baseline
//! but missing from the fresh run also fails (renames must refresh the
//! baseline); new metrics are reported but never gated by tolerance.
//! `*speedup` metrics additionally carry an absolute minimum chosen from
//! the current run's recorded `cpus` (a real win on multi-core machines,
//! parity on a single-CPU runner) — falling below it fails even when the
//! baseline had already slipped.

use std::process::ExitCode;

use alicoco_bench::compare::{compare, render_table, speedup_minimum, Status};
use alicoco_bench::json::Json;

struct Options {
    tolerance_pct: f64,
    baseline_dir: String,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        tolerance_pct: 15.0,
        baseline_dir: "bench-baseline".to_string(),
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance requires a percentage")?;
                opts.tolerance_pct = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad tolerance {v:?}: {e}"))?;
                if opts.tolerance_pct.is_nan() || opts.tolerance_pct < 0.0 {
                    return Err(format!("tolerance must be non-negative, got {v}"));
                }
            }
            "--baseline-dir" => {
                opts.baseline_dir = it.next().ok_or("--baseline-dir requires a path")?.clone();
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench-compare [--tolerance <pct>] [--baseline-dir <dir>] [files...]"
                        .to_string(),
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        opts.files = vec![
            "BENCH_train.json".to_string(),
            "BENCH_serving.json".to_string(),
        ];
    }
    Ok(opts)
}

fn load_flat(path: &str) -> Result<Vec<(String, f64)>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(alicoco_bench::compare::flatten(
        &Json::parse(&src).map_err(|e| format!("{path}: {e}"))?,
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut failures = 0usize;
    for file in &opts.files {
        let name = std::path::Path::new(file)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.clone());
        let baseline_path = format!("{}/{name}", opts.baseline_dir);
        let (base, cur) = match (load_flat(&baseline_path), load_flat(file)) {
            (Ok(b), Ok(c)) => (b, c),
            (b, c) => {
                for err in [b.err(), c.err()].into_iter().flatten() {
                    eprintln!("error: {err}");
                }
                failures += 1;
                continue;
            }
        };
        let min_speedup = speedup_minimum(&cur);
        let diffs = compare(&base, &cur, opts.tolerance_pct, Some(min_speedup));
        println!(
            "== {name} vs {baseline_path} (tolerance {}%, speedup minimum {min_speedup})",
            opts.tolerance_pct
        );
        print!("{}", render_table(&diffs));
        let regressions = diffs
            .iter()
            .filter(|d| {
                matches!(
                    d.status,
                    Status::Regression | Status::MissingInCurrent | Status::BelowMinimum
                )
            })
            .count();
        let improved = diffs
            .iter()
            .filter(|d| d.status == Status::Improved)
            .count();
        if regressions > 0 {
            println!("{name}: {regressions} regression(s)\n");
            failures += 1;
        } else {
            println!(
                "{name}: ok{}\n",
                if improved > 0 {
                    " (improvements found — consider refreshing the baseline)"
                } else {
                    ""
                }
            );
        }
    }
    if failures > 0 {
        eprintln!("perf gate failed: {failures} file(s) with regressions or errors");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_both_bench_files() {
        let opts = parse_args(&[]).unwrap();
        assert_eq!(opts.tolerance_pct, 15.0);
        assert_eq!(opts.baseline_dir, "bench-baseline");
        assert_eq!(opts.files.len(), 2);
    }

    #[test]
    fn flags_override_defaults() {
        let args: Vec<String> = ["--tolerance", "5", "--baseline-dir", "b", "x.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_args(&args).unwrap();
        assert_eq!(opts.tolerance_pct, 5.0);
        assert_eq!(opts.baseline_dir, "b");
        assert_eq!(opts.files, vec!["x.json".to_string()]);
    }

    #[test]
    fn bad_flags_error_out() {
        assert!(parse_args(&["--tolerance".to_string()]).is_err());
        assert!(parse_args(&["--tolerance".to_string(), "-3".to_string()]).is_err());
        assert!(parse_args(&["--bogus".to_string()]).is_err());
    }
}
