//! `ann-gate` — the hybrid-retrieval correctness gate for CI.
//!
//! Loads a concept net with its embedding bundle and holds the fused
//! lexical+vector serving path to its exact oracles:
//!
//! 1. **Index recall** — `knn` against the exact `scan_knn` oracle over
//!    the bundle's concept index, recall@10 averaged over the query set.
//! 2. **Fused parity** — `SemanticSearch::search` (hybrid) against
//!    `search_scan`, the exact fused-score oracle that scores *every*
//!    concept. Candidates are always scored with the exact stored
//!    vectors, so the only possible divergence is the HNSW graph failing
//!    to propose a concept the oracle ranks into the top k.
//! 3. **Lexical-miss coverage** — tokens that appear only in item titles
//!    (zero overlap with any concept surface or primitive name) must
//!    still reach concepts through the vector path; this is the
//!    zero-token-overlap gap the hybrid layer exists to close.
//!
//! Writes a JSON report and exits non-zero when recall or parity falls
//! under `--min-recall` (default 0.9) or lexical-miss coverage is zero.
//!
//! ```text
//! ann-gate [--snapshot FILE] [--out FILE] [--min-recall R] [--queries N]
//! ```
//!
//! Without `--snapshot`, a deterministic scale world is built and its
//! bundle trained in-process; CI builds a snapshot first
//! (`alicoco build net.alcc --embeddings`) and passes it here so the
//! gate also covers the codec round-trip.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use alicoco_ann::AnnBundle;
use alicoco_apps::{SearchConfig, SemanticSearch};
use alicoco_bench::json::Json;
use alicoco_bench::scale_world;
use alicoco_obs::Registry;

const K: usize = 10;
const EF: usize = 64;
const DEFAULT_WORLD: usize = 2_000;
const LEXICAL_MISS_PROBES: usize = 32;

struct Options {
    snapshot: Option<String>,
    out: Option<String>,
    min_recall: f64,
    queries: usize,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        snapshot: None,
        out: None,
        min_recall: 0.9,
        queries: 256,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--snapshot" => {
                opts.snapshot = Some(it.next().ok_or("--snapshot requires a path")?.clone());
            }
            "--out" => opts.out = Some(it.next().ok_or("--out requires a path")?.clone()),
            "--min-recall" => {
                let v = it.next().ok_or("--min-recall requires a fraction")?;
                opts.min_recall = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --min-recall {v:?}: {e}"))?;
                if !(0.0..=1.0).contains(&opts.min_recall) {
                    return Err(format!("--min-recall must be in [0, 1], got {v}"));
                }
            }
            "--queries" => {
                let v = it.next().ok_or("--queries requires a count")?;
                opts.queries = v.parse().map_err(|e| format!("bad --queries {v:?}: {e}"))?;
                if opts.queries == 0 {
                    return Err("--queries must be at least 1".to_string());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: ann-gate [--snapshot FILE] [--out FILE] [--min-recall R] \
                     [--queries N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

fn load(opts: &Options) -> Result<(alicoco::AliCoCo, AnnBundle), String> {
    match &opts.snapshot {
        Some(path) => {
            let registry = Registry::new();
            let (kg, bundle) =
                alicoco_ann::load_file_with_bundle(std::path::Path::new(path), &registry)
                    .map_err(|e| format!("{path}: {e:?}"))?;
            let bundle = bundle.ok_or_else(|| {
                format!("{path}: snapshot carries no embedding bundle — rebuild with --embeddings")
            })?;
            Ok((kg, bundle))
        }
        None => {
            let kg = scale_world(DEFAULT_WORLD);
            let bundle = alicoco_ann::build_default_bundle(&kg);
            Ok((kg, bundle))
        }
    }
}

/// Tokens that occur in item titles but in no concept surface and no
/// primitive name: queries made of these have zero lexical overlap with
/// the concept layer, so only the vector path can answer them. Sorted
/// for a deterministic probe set.
fn item_only_tokens(kg: &alicoco::AliCoCo) -> Vec<String> {
    let mut lexical = std::collections::BTreeSet::new();
    for c in kg.concept_ids() {
        for t in kg.concept(c).name.split_whitespace() {
            lexical.insert(t.to_string());
        }
    }
    for p in kg.primitive_ids() {
        for t in kg.primitive(p).name.split_whitespace() {
            lexical.insert(t.to_string());
        }
    }
    let mut item_only = std::collections::BTreeSet::new();
    for i in kg.item_ids() {
        for t in &kg.item(i).title {
            if !lexical.contains(t) {
                item_only.insert(t.clone());
            }
        }
    }
    item_only.into_iter().take(LEXICAL_MISS_PROBES).collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let (kg, bundle) = match load(&opts) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bundle = Arc::new(bundle);
    println!(
        "ann-gate: {} concepts, {} items, {} token vectors (dim {})",
        bundle.concepts().len(),
        bundle.items().len(),
        bundle.tokens().len(),
        bundle.tokens().dim(),
    );

    // Query set: concept surfaces, striding across the id space so large
    // snapshots sample evenly instead of probing one neighborhood.
    let n_concepts = kg.concept_ids().count();
    let stride = (n_concepts / opts.queries).max(1);
    let queries: Vec<String> = kg
        .concept_ids()
        .step_by(stride)
        .take(opts.queries)
        .map(|c| kg.concept(c).name.clone())
        .collect();

    // 1. Index recall@10 vs the exact scan oracle, plus knn latency.
    let mut recall_sum = 0.0;
    let mut embedded = 0usize;
    let mut latencies: Vec<u64> = Vec::with_capacity(queries.len());
    for q in &queries {
        let Some(vec) = bundle.embed_query(q) else {
            continue;
        };
        embedded += 1;
        let t = Instant::now();
        let approx = bundle.concepts().knn(&vec, K, EF);
        latencies.push(t.elapsed().as_nanos() as u64);
        let exact = bundle.concepts().scan_knn(&vec, K);
        let hits = approx
            .iter()
            .filter(|a| exact.iter().any(|e| e.0 == a.0))
            .count();
        recall_sum += hits as f64 / exact.len().max(1) as f64;
    }
    let recall = if embedded == 0 {
        0.0
    } else {
        recall_sum / embedded as f64
    };
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[((latencies.len() - 1) as f64 * p).round() as usize]
    };
    let (p50_ns, p99_ns) = (pct(0.50), pct(0.99));

    // 2. Fused parity: hybrid search vs the exact fused-score scan.
    let hybrid = SemanticSearch::new(&kg, SearchConfig::default()).with_ann(Arc::clone(&bundle));
    let mut agreements = 0usize;
    for q in &queries {
        let fast: Vec<_> = hybrid.search(q).iter().map(|c| c.concept).collect();
        let oracle: Vec<_> = hybrid.search_scan(q).iter().map(|c| c.concept).collect();
        if fast == oracle {
            agreements += 1;
        }
    }
    let parity = agreements as f64 / queries.len().max(1) as f64;

    // 3. Lexical-miss coverage: item-title-only tokens must reach
    // concepts through the vector path that the purely lexical engine
    // cannot serve at all.
    let plain = SemanticSearch::new(&kg, SearchConfig::default());
    let probes = item_only_tokens(&kg);
    let mut miss_hits = 0usize;
    for token in &probes {
        assert!(
            plain.search(token).is_empty(),
            "probe {token:?} is not lexical-only after all"
        );
        if !hybrid.search(token).is_empty() {
            miss_hits += 1;
        }
    }

    println!(
        "ann-gate: recall@10 {recall:.4} over {embedded} queries (knn p50 {p50_ns} ns, \
         p99 {p99_ns} ns)"
    );
    println!(
        "ann-gate: fused parity {parity:.4} ({agreements}/{} queries identical to the \
         exact scan oracle)",
        queries.len()
    );
    // Name a few probes so a failing run (or a reader wanting a live
    // demo query) can reproduce by hand against `alicoco-serve`.
    let sample = probes
        .iter()
        .take(3)
        .map(|t| format!("{t:?}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "ann-gate: lexical-miss coverage {miss_hits}/{} item-only tokens answered{}",
        probes.len(),
        if sample.is_empty() {
            String::new()
        } else {
            format!(" (e.g. {sample})")
        }
    );

    if let Some(out) = &opts.out {
        let doc = Json::Obj(vec![(
            "ann_gate".to_string(),
            Json::Obj(vec![
                ("queries".to_string(), Json::Num(queries.len() as f64)),
                ("recall_at_10".to_string(), Json::Num(recall)),
                ("fused_parity".to_string(), Json::Num(parity)),
                (
                    "lexical_miss_total".to_string(),
                    Json::Num(probes.len() as f64),
                ),
                ("lexical_miss_hits".to_string(), Json::Num(miss_hits as f64)),
                ("knn_p50_ns".to_string(), Json::Num(p50_ns as f64)),
                ("knn_p99_ns".to_string(), Json::Num(p99_ns as f64)),
            ]),
        )]);
        if let Err(e) = std::fs::write(out, doc.render()) {
            eprintln!("error: {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("ann-gate: wrote {out}");
    }

    let mut failed = false;
    if recall < opts.min_recall {
        eprintln!(
            "ann-gate: recall@10 {recall:.4} is below the {:.2} floor",
            opts.min_recall
        );
        failed = true;
    }
    if parity < opts.min_recall {
        eprintln!(
            "ann-gate: fused parity {parity:.4} diverges from the exact oracle beyond the \
             {:.2} floor",
            opts.min_recall
        );
        failed = true;
    }
    if !probes.is_empty() && miss_hits == 0 {
        eprintln!("ann-gate: no lexical-miss probe reached a concept via the vector path");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides_parse() {
        let opts = parse_args(&[]).unwrap();
        assert!(opts.snapshot.is_none());
        assert_eq!(opts.min_recall, 0.9);
        assert_eq!(opts.queries, 256);
        let args: Vec<String> = [
            "--snapshot",
            "net.alcc",
            "--out",
            "BENCH_ann.json",
            "--min-recall",
            "0.95",
            "--queries",
            "64",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_args(&args).unwrap();
        assert_eq!(opts.snapshot.as_deref(), Some("net.alcc"));
        assert_eq!(opts.out.as_deref(), Some("BENCH_ann.json"));
        assert_eq!(opts.min_recall, 0.95);
        assert_eq!(opts.queries, 64);
    }

    #[test]
    fn bad_arguments_error_out() {
        assert!(parse_args(&["--min-recall".to_string(), "1.5".to_string()]).is_err());
        assert!(parse_args(&["--queries".to_string(), "0".to_string()]).is_err());
        assert!(parse_args(&["--bogus".to_string()]).is_err());
    }

    #[test]
    fn item_only_tokens_exclude_every_concept_and_primitive_surface() {
        let kg = scale_world(500);
        let tokens = item_only_tokens(&kg);
        for t in &tokens {
            for c in kg.concept_ids() {
                assert!(!kg.concept(c).name.split_whitespace().any(|w| w == t));
            }
            for p in kg.primitive_ids() {
                assert!(!kg.primitive(p).name.split_whitespace().any(|w| w == t));
            }
        }
        // Deterministic and sorted.
        let again = item_only_tokens(&kg);
        assert_eq!(tokens, again);
        let mut sorted = tokens.clone();
        sorted.sort();
        assert_eq!(tokens, sorted);
    }
}
