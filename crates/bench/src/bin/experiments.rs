//! Experiment runner: regenerates every table and figure of the paper's
//! evaluation (§7) plus the §8.1.1 search-relevance experiment on the
//! synthetic world.
//!
//! Usage: `cargo run --release -p alicoco-bench --bin experiments -- <exp>`
//! where `<exp>` is one of `table1 table2 table3 table4 table5 table6
//! fig9left fig9right coverage mining search_relevance recommendation ablations all`.

use alicoco::coverage::{evaluate as coverage_eval, CpvVocabulary, FullVocabulary};
use alicoco::Stats;
use alicoco_bench::{f, medium_dataset, resources_for, row};
use alicoco_corpus::Oracle;
use alicoco_mining::congen::{
    candidates_from_patterns, classification_splits, ClassifierConfig, ConceptClassifier,
    PrimitivePools,
};
use alicoco_mining::hypernym::{
    run_active_learning, ActiveLearningConfig, HypernymDataset, ProjectionConfig, ProjectionModel,
    Strategy,
};
use alicoco_mining::matching::{
    build_matching_dataset, evaluate_matcher, Bm25Matcher, DssmMatcher, MatchPyramidMatcher,
    MatchingDataConfig, OursConfig, OursMatcher, Re2Matcher,
};
use alicoco_mining::pipeline::{build_alicoco, PipelineConfig};
use alicoco_mining::tagging::{
    distant_tagging_examples, tagging_splits, AmbiguityIndex, ConceptTagger, ContextIndex,
    TaggerConfig,
};
use alicoco_mining::vocab_mining::{
    corpus_surfaces, distant_supervision, mine_candidates, verify_candidates, KnownLexicon,
    VocabMiner, VocabMinerConfig,
};
use alicoco_nn::util::seeded_rng;
use rand::seq::SliceRandom;
use rand::Rng;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run = |name: &str| arg == name || arg == "all";
    println!("# AliCoCo reproduction experiments\n");
    if run("table2") {
        table2();
    }
    if run("coverage") {
        coverage();
    }
    if run("mining") {
        mining();
    }
    if run("table3") || run("fig9right") {
        table3_fig9right();
    }
    if run("fig9left") {
        fig9left();
    }
    if run("table4") {
        table4();
    }
    if run("table5") {
        table5();
    }
    if run("table6") {
        table6();
    }
    if run("table1") {
        table1();
    }
    if run("search_relevance") {
        search_relevance();
    }
    if run("recommendation") {
        recommendation();
    }
    if run("ablations") {
        ablations();
    }
}

fn dashes(n: usize) -> String {
    row(&vec!["---".to_string(); n])
}

// ---------------------------------------------------------------------------
// Table 2: statistics of the built AliCoCo
// ---------------------------------------------------------------------------

fn table2() {
    println!("## Table 2 — statistics of the constructed AliCoCo\n");
    println!("(Paper: 2.85M primitives, 5.26M e-commerce concepts, >3B items, 98% of items");
    println!("linked. We build the same structure at laptop scale — compare *shape*: every");
    println!("layer and relation kind populated, near-total item linkage, tens of items per");
    println!("concept.)\n");
    let ds = medium_dataset();
    let t0 = std::time::Instant::now();
    let (kg, report) = build_alicoco(&ds, &PipelineConfig::default());
    println!("build time: {:.1?}\n", t0.elapsed());
    println!("{}", Stats::compute(&kg));
    println!("pipeline accounting: {report:#?}\n");
}

// ---------------------------------------------------------------------------
// §7.1 coverage: AliCoCo vs the former CPV ontology
// ---------------------------------------------------------------------------

fn coverage() {
    println!("## §7.1 — user-needs coverage (paper: AliCoCo ~75%, former ontology ~30%)\n");
    let ds = medium_dataset();
    let (kg, _) = build_alicoco(&ds, &PipelineConfig::default());
    let mut rng = seeded_rng(71);
    // Sample 2000 queries, as the paper does daily.
    let mut queries: Vec<Vec<String>> = ds.corpora.queries.clone();
    queries.shuffle(&mut rng);
    queries.truncate(2000);
    let full = coverage_eval(&FullVocabulary::new(&kg), &queries);
    let cpv = coverage_eval(
        &CpvVocabulary::new(&kg, &["Category", "Brand", "Color", "Material"]),
        &queries,
    );
    println!(
        "{}",
        row(&[
            "vocabulary".into(),
            "word coverage".into(),
            "full-query coverage".into()
        ])
    );
    println!("{}", dashes(3));
    println!(
        "{}",
        row(&[
            "AliCoCo (paper ~0.75)".into(),
            f(full.word_coverage),
            f(full.full_query_coverage)
        ])
    );
    println!(
        "{}",
        row(&[
            "CPV ontology (paper ~0.30)".into(),
            f(cpv.word_coverage),
            f(cpv.full_query_coverage)
        ])
    );
    println!();
}

// ---------------------------------------------------------------------------
// §7.2 vocabulary mining rounds
// ---------------------------------------------------------------------------

fn mining() {
    println!("## §7.2 — primitive-concept mining rounds\n");
    println!("(Paper: ~64K candidates per epoch over 5M sentences, ~10K accepted per round,");
    println!("with discoveries diminishing as the vocabulary saturates.)\n");
    let ds = medium_dataset();
    let res = resources_for(&ds);
    let mut rng = seeded_rng(72);
    let (mut known, heldout) = KnownLexicon::sample(&ds, 0.65, &mut rng);
    let oracle = Oracle::new(&ds.world);
    let sentences: Vec<Vec<String>> = ds.corpora.all_sentences().cloned().collect();
    let surfaces = corpus_surfaces(&sentences);
    println!(
        "{}",
        row(&[
            "round".into(),
            "train sents".into(),
            "candidates".into(),
            "accepted".into(),
            "precision".into(),
            "heldout recall".into(),
        ])
    );
    println!("{}", dashes(6));
    for round in 0..3 {
        let data = distant_supervision(&known, &sentences, 2000);
        let mut miner = VocabMiner::new(
            &res,
            VocabMinerConfig {
                train: VocabMinerConfig::default().train.with_epochs(3),
                ..Default::default()
            },
        );
        miner.train(&res, &data, &mut rng);
        let candidates = mine_candidates(&miner, &res, &known, &sentences);
        let (accepted, report) = verify_candidates(&candidates, &oracle, &heldout, &surfaces);
        println!(
            "{}",
            row(&[
                round.to_string(),
                data.len().to_string(),
                report.candidates.to_string(),
                report.accepted.to_string(),
                f(report.precision),
                f(report.heldout_recall),
            ])
        );
        for c in &accepted {
            known.insert(&c.surface, c.domain);
        }
    }
    println!();
}

// ---------------------------------------------------------------------------
// Table 3 + Figure 9 (right): active-learning strategies
// ---------------------------------------------------------------------------

fn table3_fig9right() {
    println!("## Table 3 / Fig 9 (right) — active-learning sampling strategies\n");
    println!("(Paper: UCS reaches the shared target MAP with the fewest labels — 325k vs");
    println!("500k for Random — and the highest best MAP, ~48.8%.)\n");
    let ds = medium_dataset();
    let res = resources_for(&ds);
    let mut rng = seeded_rng(73);
    let data = HypernymDataset::build(&ds, &res, &mut rng);
    let oracle = Oracle::new(&ds.world);
    let base = ActiveLearningConfig {
        k_per_round: 200,
        max_rounds: 14,
        patience: 4,
        pool_negative_ratio: 8,
        projection: ProjectionConfig {
            train: ProjectionConfig::default().train.with_epochs(4),
            ..Default::default()
        },
        ..Default::default()
    };
    let strategies = [
        Strategy::Random,
        Strategy::Us,
        Strategy::Cs,
        Strategy::Ucs { alpha: 0.5 },
    ];
    let outcomes: Vec<_> = strategies
        .iter()
        .map(|&s| {
            run_active_learning(
                &data,
                &oracle,
                &ActiveLearningConfig {
                    strategy: s,
                    ..base.clone()
                },
            )
        })
        .collect();
    // Labels needed to reach a shared target: the paper anchors on the
    // Random strategy's achieved MAP ("when it achieves similar MAP").
    let target = outcomes[0].best_val_map * 0.98;
    println!(
        "{}",
        row(&[
            "strategy".into(),
            "labels@target".into(),
            "total labels".into(),
            "best val MAP".into(),
            "test MRR".into(),
            "test MAP".into(),
            "test P@1".into(),
        ])
    );
    println!("{}", dashes(7));
    for o in &outcomes {
        let labels_at_target = o
            .history
            .iter()
            .find(|(_, m)| *m >= target)
            .map(|(l, _)| l.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{}",
            row(&[
                o.strategy.to_string(),
                labels_at_target,
                o.labeled.to_string(),
                f(o.best_val_map),
                f(o.test.mrr),
                f(o.test.map),
                f(o.test.p_at_1),
            ])
        );
    }
    println!("\n(target MAP for the labels@target column: {target:.4})\n");
}

// ---------------------------------------------------------------------------
// Figure 9 (left): negative-sample ratio sweep
// ---------------------------------------------------------------------------

fn fig9left() {
    println!("## Fig 9 (left) — MAP vs negative-sample ratio\n");
    println!("(Paper: MAP rises with the ratio and plateaus around 100:1; our candidate");
    println!("space is smaller so the plateau arrives earlier — the claim under test is");
    println!("the rise-then-plateau shape.)\n");
    let ds = medium_dataset();
    let res = resources_for(&ds);
    let mut rng = seeded_rng(91);
    let data = HypernymDataset::build(&ds, &res, &mut rng);
    let test_queries = data.ranking_queries(&data.test_pos, 30, &mut rng);
    println!(
        "{}",
        row(&["1:N".into(), "MAP".into(), "MRR".into(), "P@1".into()])
    );
    println!("{}", dashes(4));
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        // Average 3 seeds: single runs are noisy at this scale.
        let (mut map, mut mrr, mut p1) = (0.0, 0.0, 0.0);
        for seed in 0..3u64 {
            let mut run_rng = seeded_rng(910 + seed);
            let triples = data.labeled_pairs(&data.train_pos, n, &mut run_rng);
            let mut model = ProjectionModel::new(
                res.word_vectors.dim(),
                ProjectionConfig {
                    train: ProjectionConfig::default().train.with_epochs(4),
                    seed: 99 + seed,
                    ..Default::default()
                },
            );
            model.train(&data, &triples, &mut run_rng);
            let m = model.evaluate(&data, &test_queries);
            map += m.map / 3.0;
            mrr += m.mrr / 3.0;
            p1 += m.p_at_1 / 3.0;
        }
        println!("{}", row(&[n.to_string(), f(map), f(mrr), f(p1)]));
    }
    println!();
}

// ---------------------------------------------------------------------------
// Table 4: concept-classification ablation
// ---------------------------------------------------------------------------

fn table4() {
    println!("## Table 4 — e-commerce concept classification ablation\n");
    println!("(Paper precision: Baseline 0.870 -> +Wide 0.900 -> +Wide&BERT 0.915 ->");
    println!("+Wide&BERT&Knowledge 0.935. Our trigram LM substitutes BERT.)\n");
    let ds = alicoco_bench::classification_dataset();
    let res = resources_for(&ds);
    let mut rng = seeded_rng(74);
    let (train, _val, test) = classification_splits(&ds, &mut rng);
    let configs: [(&str, ClassifierConfig); 4] = [
        (
            "Baseline (LSTM + Self Attention)",
            ClassifierConfig::baseline(),
        ),
        ("+Wide", ClassifierConfig::with_wide()),
        (
            "+Wide & LM (BERT substitute)",
            ClassifierConfig::with_wide_lm(),
        ),
        ("+Wide & LM & Knowledge", ClassifierConfig::full()),
    ];
    println!(
        "{}",
        row(&[
            "model".into(),
            "precision".into(),
            "recall".into(),
            "accuracy".into()
        ])
    );
    println!("{}", dashes(4));
    for (name, cfg) in configs {
        // Average 3 seeds: single runs are noisy at this data scale.
        let (mut pr, mut rc, mut ac) = (0.0, 0.0, 0.0);
        for seed in 0..3u64 {
            let mut rng = seeded_rng(74 + seed);
            let mut model = ConceptClassifier::new(
                &res,
                ClassifierConfig {
                    train: cfg.train.clone().with_epochs(10),
                    seed: 2020 + seed,
                    ..cfg.clone()
                },
            );
            model.train(&res, &train, &mut rng);
            let m = model.evaluate(&res, &test);
            pr += m.precision / 3.0;
            rc += m.recall / 3.0;
            ac += m.accuracy / 3.0;
        }
        println!("{}", row(&[name.to_string(), f(pr), f(rc), f(ac)]));
    }
    println!();
}

// ---------------------------------------------------------------------------
// Table 5: concept-tagging ablation
// ---------------------------------------------------------------------------

fn table5() {
    println!("## Table 5 — e-commerce concept tagging ablation\n");
    println!("(Paper F1: Baseline 0.8523 -> +FuzzyCRF 0.8703 -> +FuzzyCRF&Knowledge 0.8772.)\n");
    let ds = medium_dataset();
    let res = resources_for(&ds);
    let mut rng = seeded_rng(75);
    let (mut train, _val, test) = tagging_splits(&ds, &mut rng);
    train.extend(distant_tagging_examples(&ds, 400, 7575));
    // The full clean-label regime saturates all three variants (F1 ~0.98);
    // shrink the training set, and — crucially — reproduce the paper's
    // supervision condition: for ambiguous tokens ("village" as Location or
    // Style) "the valid class label ... is not unique", so annotations and
    // distant supervision disagree across examples. Simulate that by
    // replacing each ambiguous single-token label with a *random valid*
    // domain. Strict CRF must average conflicting supervision; fuzzy CRF
    // (eq. 8) sums over all valid paths and is robust to it.
    train.truncate(200);
    let amb = AmbiguityIndex::build(&ds);
    for ex in &mut train {
        for t in 0..ex.tokens.len() {
            let valid = amb.domains_of(&ex.tokens[t]);
            if valid.len() > 1 && alicoco_mining::vocab_mining::is_begin(ex.labels[t]) {
                let pick = valid[rng.gen_range(0..valid.len())];
                ex.labels[t] = alicoco_mining::vocab_mining::b_label(pick);
            }
        }
    }
    let words: alicoco_nn::util::FxHashSet<String> = train
        .iter()
        .chain(test.iter())
        .flat_map(|e| e.tokens.iter().cloned())
        .collect();
    let ctx = ContextIndex::build(&res, &ds, words.iter().map(String::as_str), 3);
    let configs: [(&str, TaggerConfig); 3] = [
        ("Baseline (BiLSTM-CRF)", TaggerConfig::baseline()),
        ("+Fuzzy CRF", TaggerConfig::with_fuzzy()),
        ("+Fuzzy CRF & Knowledge", TaggerConfig::full()),
    ];
    println!(
        "{}",
        row(&[
            "model".into(),
            "precision".into(),
            "recall".into(),
            "F1".into()
        ])
    );
    println!("{}", dashes(4));
    for (name, cfg) in configs {
        // Average 3 seeds.
        let (mut pr, mut rc, mut f1) = (0.0, 0.0, 0.0);
        for seed in 0..3u64 {
            let mut rng = seeded_rng(75 + seed);
            let mut model = ConceptTagger::new(
                &res,
                TaggerConfig {
                    train: cfg.train.clone().with_epochs(2),
                    seed: 31 + seed,
                    ..cfg.clone()
                },
            );
            model.train(&res, &ctx, &amb, &train, &mut rng);
            let m = model.evaluate(&res, &ctx, &test);
            pr += m.precision / 3.0;
            rc += m.recall / 3.0;
            f1 += m.f1 / 3.0;
        }
        println!("{}", row(&[name.to_string(), f(pr), f(rc), f(f1)]));
    }
    println!();
}

// ---------------------------------------------------------------------------
// Table 6: concept-item semantic matching
// ---------------------------------------------------------------------------

fn table6() {
    println!("## Table 6 — concept-item semantic matching\n");
    println!("(Paper AUC/F1/P@10: BM25 -/-/0.7681; DSSM 0.7885/0.6937/0.7971; MatchPyramid");
    println!("0.8127/0.7352/0.7813; RE2 0.8664/0.7052/0.8977; Ours 0.8610/0.7532/0.9015;");
    println!("Ours+Knowledge 0.8713/0.7769/0.9048.)\n");
    let ds = medium_dataset();
    let res = resources_for(&ds);
    let data = build_matching_dataset(&ds, &MatchingDataConfig::default());
    println!(
        "({} concepts, {} train pairs, {} test pairs, {} ranking queries)\n",
        data.concepts.len(),
        data.train.len(),
        data.test.len(),
        data.queries.len()
    );
    println!(
        "{}",
        row(&["model".into(), "AUC".into(), "F1".into(), "P@10".into()])
    );
    println!("{}", dashes(4));

    let bm = Bm25Matcher::build(&res, &data);
    let m = evaluate_matcher(&data, |c, i| bm.score(c, i));
    println!(
        "{}",
        row(&["BM25".into(), f(m.auc), "-".into(), f(m.p_at_10)])
    );

    // The neural baselines are small and under-confident at this data
    // scale; longer training helps them cross the 0.5 F1 threshold.
    let epochs = 5;
    let baseline_epochs = 10;
    {
        let mut rng = seeded_rng(761);
        let mut dssm = DssmMatcher::new(&res, baseline_epochs, 761);
        dssm.train(&res, &data, &mut rng);
        let m = evaluate_matcher(&data, |c, i| dssm.score(&res, &data, c, i));
        println!("{}", row(&["DSSM".into(), f(m.auc), f(m.f1), f(m.p_at_10)]));
    }
    {
        let mut rng = seeded_rng(762);
        let mut mp = MatchPyramidMatcher::new(&res, baseline_epochs, 762);
        mp.train(&res, &data, &mut rng);
        let m = evaluate_matcher(&data, |c, i| mp.score(&res, &data, c, i));
        println!(
            "{}",
            row(&["MatchPyramid".into(), f(m.auc), f(m.f1), f(m.p_at_10)])
        );
    }
    {
        let mut rng = seeded_rng(763);
        let mut re2 = Re2Matcher::new(&res, baseline_epochs, 763);
        re2.train(&res, &data, &mut rng);
        let m = evaluate_matcher(&data, |c, i| re2.score(&res, &data, c, i));
        println!("{}", row(&["RE2".into(), f(m.auc), f(m.f1), f(m.p_at_10)]));
    }
    {
        let mut rng = seeded_rng(764);
        let mut ours = OursMatcher::new(
            &res,
            OursConfig {
                use_knowledge: false,
                train: OursConfig::default().train.with_epochs(epochs),
                ..Default::default()
            },
        );
        ours.train(&res, &data, &mut rng);
        let m = evaluate_matcher(&data, |c, i| ours.score(&res, &data, c, i));
        println!("{}", row(&["Ours".into(), f(m.auc), f(m.f1), f(m.p_at_10)]));
    }
    {
        let mut rng = seeded_rng(764);
        let mut ours = OursMatcher::new(
            &res,
            OursConfig {
                use_knowledge: true,
                train: OursConfig::default().train.with_epochs(epochs),
                ..Default::default()
            },
        );
        ours.train(&res, &data, &mut rng);
        let m = evaluate_matcher(&data, |c, i| ours.score(&res, &data, c, i));
        println!(
            "{}",
            row(&["Ours + Knowledge".into(), f(m.auc), f(m.f1), f(m.p_at_10)])
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Table 1: generation patterns with good/bad examples
// ---------------------------------------------------------------------------

fn table1() {
    println!("## Table 1 — pattern-combination candidates with oracle + classifier verdicts\n");
    let ds = medium_dataset();
    let res = resources_for(&ds);
    let oracle = Oracle::new(&ds.world);
    let mut rng = seeded_rng(11);
    let (train, _, _) = classification_splits(&ds, &mut rng);
    let mut model = ConceptClassifier::new(
        &res,
        ClassifierConfig {
            train: ClassifierConfig::full().train.with_epochs(8),
            ..ClassifierConfig::full()
        },
    );
    model.train(&res, &train, &mut rng);
    let pools = PrimitivePools::from_dataset(&ds);
    let cands = candidates_from_patterns(&pools, 400, &mut rng);
    println!(
        "{}",
        row(&["candidate".into(), "oracle".into(), "classifier".into()])
    );
    println!("{}", dashes(3));
    let mut shown_good = 0;
    let mut shown_bad = 0;
    for c in &cands {
        let good = oracle.label_concept(&c.tokens);
        if (good && shown_good < 6) || (!good && shown_bad < 6) {
            let score = model.score(&res, &c.tokens);
            println!(
                "{}",
                row(&[c.tokens.join(" "), good.to_string(), format!("{score:.3}")])
            );
            if good {
                shown_good += 1;
            } else {
                shown_bad += 1;
            }
        }
        if shown_good >= 6 && shown_bad >= 6 {
            break;
        }
    }
    println!();
}

// ---------------------------------------------------------------------------
// §8.1.1: search relevance with isA expansion
// ---------------------------------------------------------------------------

fn search_relevance() {
    println!("## §8.1.1 — search relevance with isA knowledge\n");
    println!("(Paper: AliCoCo's 10x larger isA inventory improves the relevance model by");
    println!("~1% AUC and cuts bad cases by 4%. Here: BM25 relevance between a category");
    println!("query and item titles, with and without expanding the query with its KG");
    println!("hyponyms — 'jacket is a kind of top'.)\n");
    let ds = medium_dataset();
    let res = resources_for(&ds);
    let mut rng = seeded_rng(81);
    // Queries: internal category nodes ("top", "cookware"); an item is
    // relevant iff its category descends from the query node.
    let tree = &ds.world.tree;
    // Mixed query set: internal category nodes ("cookware" — pure
    // vocabulary gap) and leaf nodes (exact title matches), mirroring the
    // head/tail mix of real queries.
    let mut queries: Vec<usize> = tree
        .ids()
        .filter(|&i| i != 0 && tree.node(i).depth >= 2)
        .collect();
    queries.shuffle(&mut rng);
    queries.truncate(120);
    let docs: Vec<Vec<alicoco_text::TokenId>> = ds
        .items
        .iter()
        .map(|it| res.vocab.encode(&it.title))
        .collect();
    let index = alicoco_text::bm25::Bm25Index::build(&docs, Default::default());

    let mut plain_scores = Vec::new();
    let mut expanded_scores = Vec::new();
    let mut plain_bad = 0usize;
    let mut expanded_bad = 0usize;
    let mut total_queries = 0usize;
    for &q in &queries {
        let name = tree.name(q);
        let plain_q = res
            .vocab
            .encode(&name.split(' ').map(String::from).collect::<Vec<_>>());
        // isA expansion: add the names of all descendants (the KG's hyponyms
        // of the query term).
        let mut expanded_q = plain_q.clone();
        let mut stack = tree.node(q).children.clone();
        while let Some(c) = stack.pop() {
            for tok in tree.name(c).split(' ') {
                if let Some(id) = res.vocab.get(tok) {
                    expanded_q.push(id);
                }
            }
            stack.extend(tree.node(c).children.iter().copied());
        }
        // Sample items: relevant + random.
        let mut rel: Vec<usize> = ds
            .items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.category == q || tree.is_ancestor(q, it.category))
            .map(|(i, _)| i)
            .collect();
        if rel.is_empty() {
            continue;
        }
        total_queries += 1;
        rel.shuffle(&mut rng);
        rel.truncate(10);
        let mut cands: Vec<(usize, bool)> = rel.iter().map(|&i| (i, true)).collect();
        while cands.len() < 30 {
            let i = rng.gen_range(0..ds.items.len());
            let is_rel = ds.items[i].category == q || tree.is_ancestor(q, ds.items[i].category);
            cands.push((i, is_rel));
        }
        for &(i, y) in &cands {
            plain_scores.push((index.score(&plain_q, i) as f32, y));
            expanded_scores.push((index.score(&expanded_q, i) as f32, y));
        }
        // "Bad case": the top-ranked candidate is irrelevant.
        let top_is_relevant = |qv: &Vec<alicoco_text::TokenId>| {
            cands
                .iter()
                .map(|&(i, y)| ((i, index.score(qv, i)), y))
                .min_by(|a, b| alicoco::rank::by_score_then_id(&a.0, &b.0))
                .map(|(_, y)| y)
                .unwrap_or(false)
        };
        if !top_is_relevant(&plain_q) {
            plain_bad += 1;
        }
        if !top_is_relevant(&expanded_q) {
            expanded_bad += 1;
        }
    }
    use alicoco_nn::metrics::roc_auc;
    println!(
        "{}",
        row(&["setting".into(), "AUC".into(), "bad cases".into()])
    );
    println!("{}", dashes(3));
    println!(
        "{}",
        row(&[
            "keyword only".into(),
            f(roc_auc(&plain_scores)),
            format!("{plain_bad}/{total_queries}"),
        ])
    );
    println!(
        "{}",
        row(&[
            "+ isA expansion".into(),
            f(roc_auc(&expanded_scores)),
            format!("{expanded_bad}/{total_queries}"),
        ])
    );
    println!();
}

// ---------------------------------------------------------------------------
// §8.2.1: cognitive recommendation vs item-CF
// ---------------------------------------------------------------------------

fn recommendation() {
    println!("## §8.2.1 — cognitive recommendation vs item-based CF\n");
    println!("(Paper: concept-card recommendation ran in production for a year with high");
    println!("CTR and measurably more novelty than behavior-based recommendation. Here:");
    println!("simulated users browse two items of a scenario; we measure whether the");
    println!("recommender surfaces the right concept (hit@3), how many of the user's");
    println!("*remaining* needed items each method recovers, and novelty.)\n");
    let ds = medium_dataset();
    let (kg, _) = build_alicoco(&ds, &PipelineConfig::default());
    let recommender = alicoco_apps::CognitiveRecommender::new(
        &kg,
        alicoco_apps::RecommendConfig {
            k: 3,
            items_per_card: 10,
            ..Default::default()
        },
    );
    let mut rng = seeded_rng(82);

    let mut users = 0usize;
    let mut concept_hits = 0usize;
    let mut cc_recall = 0.0f64;
    let mut cf_recall = 0.0f64;
    let mut cc_novelty = 0.0f64;
    for cid in kg.concept_ids() {
        let items = kg.items_for_concept(cid);
        if items.len() < 4 {
            continue;
        }
        users += 1;
        let mut pool: Vec<alicoco::ItemId> = items.iter().map(|&(i, _)| i).collect();
        pool.shuffle(&mut rng);
        let history: Vec<alicoco::ItemId> = pool[..2].to_vec();
        let remaining: alicoco_nn::util::FxHashSet<alicoco::ItemId> =
            pool[2..].iter().copied().collect();

        // Cognitive recommendation: concept cards.
        let recs = recommender.recommend(&history);
        if recs.iter().any(|r| r.concept == cid) {
            concept_hits += 1;
        }
        let cc_items: alicoco_nn::util::FxHashSet<alicoco::ItemId> = recs
            .iter()
            .flat_map(|r| r.items.iter().map(|&(i, _)| i))
            .collect();
        cc_recall +=
            cc_items.intersection(&remaining).count() as f64 / remaining.len().max(1) as f64;
        cc_novelty += cc_items.iter().filter(|i| !history.contains(i)).count() as f64
            / cc_items.len().max(1) as f64;

        // Item-CF baseline: items sharing the most primitive properties
        // with the history ("similar to what you viewed").
        let mut hist_prims: alicoco_nn::util::FxHashSet<alicoco::PrimitiveId> = Default::default();
        for &h in &history {
            hist_prims.extend(kg.item(h).primitives.iter().copied());
        }
        let mut scored: Vec<(alicoco::ItemId, usize)> = kg
            .item_ids()
            .filter(|i| !history.contains(i))
            .map(|i| {
                let overlap = kg
                    .item(i)
                    .primitives
                    .iter()
                    .filter(|p| hist_prims.contains(p))
                    .count();
                (i, overlap)
            })
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let cf_items: alicoco_nn::util::FxHashSet<alicoco::ItemId> =
            scored.iter().take(30).map(|&(i, _)| i).collect();
        cf_recall +=
            cf_items.intersection(&remaining).count() as f64 / remaining.len().max(1) as f64;
    }
    if users == 0 {
        println!("(no concepts with enough items — increase world size)\n");
        return;
    }
    let n = users as f64;
    println!(
        "{}",
        row(&[
            "metric".into(),
            "cognitive (concept cards)".into(),
            "item-CF baseline".into()
        ])
    );
    println!("{}", dashes(3));
    println!(
        "{}",
        row(&[
            "need recognized (hit@3)".into(),
            f(concept_hits as f64 / n),
            "-".into()
        ])
    );
    println!(
        "{}",
        row(&[
            "remaining-needs recall".into(),
            f(cc_recall / n),
            f(cf_recall / n)
        ])
    );
    println!(
        "{}",
        row(&[
            "novelty of shown items".into(),
            f(cc_novelty / n),
            "-".into()
        ])
    );
    println!("\n({users} simulated users)\n");
}

// ---------------------------------------------------------------------------
// Extension ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

fn ablations() {
    println!("## Extension ablations\n");
    let ds = medium_dataset();
    let res = resources_for(&ds);
    let mut rng = seeded_rng(99);
    let data = HypernymDataset::build(&ds, &res, &mut rng);

    // (a) UCS alpha sweep.
    println!("### UCS alpha sweep (alpha = confidence share of each batch)\n");
    println!(
        "{}",
        row(&["alpha".into(), "labels".into(), "best val MAP".into()])
    );
    println!("{}", dashes(3));
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let oracle = Oracle::new(&ds.world);
        let out = run_active_learning(
            &data,
            &oracle,
            &ActiveLearningConfig {
                strategy: Strategy::Ucs { alpha },
                k_per_round: 200,
                max_rounds: 10,
                patience: 3,
                projection: ProjectionConfig {
                    train: ProjectionConfig::default().train.with_epochs(3),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        println!(
            "{}",
            row(&[
                format!("{alpha:.2}"),
                out.labeled.to_string(),
                f(out.best_val_map)
            ])
        );
    }

    // (b) Oracle noise sweep: how annotator errors degrade active learning.
    println!("\n### Oracle noise sweep (UCS)\n");
    println!("{}", row(&["noise".into(), "best val MAP".into()]));
    println!("{}", dashes(2));
    for noise in [0.0, 0.05, 0.1, 0.2] {
        let oracle = Oracle::with_noise(&ds.world, noise, 5);
        let out = run_active_learning(
            &data,
            &oracle,
            &ActiveLearningConfig {
                strategy: Strategy::Ucs { alpha: 0.5 },
                k_per_round: 200,
                max_rounds: 8,
                patience: 3,
                projection: ProjectionConfig {
                    train: ProjectionConfig::default().train.with_epochs(3),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        println!("{}", row(&[format!("{noise:.2}"), f(out.best_val_map)]));
    }
    println!();
}
