//! Shared helpers for the experiment runner and criterion benches.

pub mod compare;
pub mod json;

use alicoco::AliCoCo;
use alicoco_corpus::{Dataset, WorldConfig};
use alicoco_mining::resources::{Resources, ResourcesConfig};
use std::time::Instant;

/// The "paper-scale" (for this reproduction) evaluation world: the default
/// configuration — 3000 items, 1200 labeled concepts.
pub fn medium_dataset() -> Dataset {
    Dataset::generate(WorldConfig::default())
}

/// A small dataset for fast benches.
pub fn small_dataset() -> Dataset {
    Dataset::tiny()
}

/// A concept-heavy world for the classification ablation (Table 4): more
/// labeled concepts stabilize the comparison.
pub fn classification_dataset() -> Dataset {
    Dataset::generate(WorldConfig {
        num_good_concepts: 1500,
        num_bad_concepts: 1500,
        ..WorldConfig::default()
    })
}

/// Build shared resources with default sizing.
pub fn resources_for(ds: &Dataset) -> Resources {
    Resources::build(ds, ResourcesConfig::default())
}

/// Render a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Format an f64 with 4 decimals.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// 60 distinct base words for the synthetic at-scale worlds.
pub const SCALE_BASE: &[&str] = &[
    "outdoor", "barbecue", "summer", "beach", "grill", "party", "yoga", "indoor", "camping",
    "picnic", "winter", "gift", "hiking", "garden", "travel", "kids", "retro", "festival",
    "wedding", "office", "budget", "luxury", "vintage", "portable", "family", "night", "morning",
    "spring", "autumn", "rain", "snow", "city", "lake", "forest", "desert", "island", "sports",
    "music", "art", "cooking", "baking", "fishing", "cycling", "running", "climbing", "reading",
    "gaming", "crafts", "pets", "garage", "balcony", "rooftop", "street", "market", "school",
    "holiday", "birthday", "romantic", "minimal", "cozy",
];

/// 240 distinct single-word tokens ("outdoor0" … "cozy3").
pub fn scale_vocab() -> Vec<String> {
    SCALE_BASE
        .iter()
        .flat_map(|w| (0..4).map(move |v| format!("{w}{v}")))
        .collect()
}

/// A deterministic synthetic world big enough that full-layer scans hurt:
/// `n_concepts` *distinct* two-word concepts over a 240-token vocabulary
/// (concept `i` gets the base-240 digit pair of `i`, so names never
/// collide and `add_concept` cannot dedup them away), each interpreted by
/// its two word primitives, with a thin item layer.
pub fn scale_world(n_concepts: usize) -> AliCoCo {
    let vocab = scale_vocab();
    assert!(
        n_concepts <= vocab.len() * vocab.len(),
        "digit pairs must stay distinct"
    );
    let mut kg = AliCoCo::new();
    let root = kg.add_class("concept", None);
    let classes: Vec<_> = (0..4)
        .map(|d| kg.add_class(&format!("domain{d}"), Some(root)))
        .collect();
    let prims: Vec<_> = vocab
        .iter()
        .enumerate()
        .map(|(i, w)| kg.add_primitive(w, classes[i % classes.len()]))
        .collect();
    let items: Vec<_> = (0..n_concepts / 4)
        .map(|i| {
            kg.add_item(&[
                vocab[i % vocab.len()].clone(),
                vocab[(i * 7 + 3) % vocab.len()].clone(),
            ])
        })
        .collect();
    for i in 0..n_concepts {
        let (a, b) = (i % vocab.len(), i / vocab.len());
        let c = kg.add_concept(&format!("{} {}", vocab[a], vocab[b]));
        kg.link_concept_primitive(c, prims[a]);
        kg.link_concept_primitive(c, prims[b]);
        if i % 3 == 0 {
            kg.link_concept_item(c, items[i % items.len()], 0.5 + (i % 50) as f32 / 100.0);
        }
    }
    assert_eq!(kg.num_concepts(), n_concepts, "synthetic names collided");
    kg
}

/// Median wall-clock seconds of `runs` executions of `f`.
pub fn median_secs<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}
