//! Shared helpers for the experiment runner and criterion benches.

pub mod compare;
pub mod json;

use alicoco_corpus::{Dataset, WorldConfig};
use alicoco_mining::resources::{Resources, ResourcesConfig};
use std::time::Instant;

/// The "paper-scale" (for this reproduction) evaluation world: the default
/// configuration — 3000 items, 1200 labeled concepts.
pub fn medium_dataset() -> Dataset {
    Dataset::generate(WorldConfig::default())
}

/// A small dataset for fast benches.
pub fn small_dataset() -> Dataset {
    Dataset::tiny()
}

/// A concept-heavy world for the classification ablation (Table 4): more
/// labeled concepts stabilize the comparison.
pub fn classification_dataset() -> Dataset {
    Dataset::generate(WorldConfig {
        num_good_concepts: 1500,
        num_bad_concepts: 1500,
        ..WorldConfig::default()
    })
}

/// Build shared resources with default sizing.
pub fn resources_for(ds: &Dataset) -> Resources {
    Resources::build(ds, ResourcesConfig::default())
}

/// Render a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Format an f64 with 4 decimals.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

// The at-scale synthetic world generator lives in `alicoco_corpus::scale`
// (streaming, 1M+ capable); re-exported here so benches keep their import.
pub use alicoco_corpus::scale::{scale_vocab, scale_world, SCALE_BASE};

/// Median wall-clock seconds of `runs` executions of `f`.
pub fn median_secs<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}
