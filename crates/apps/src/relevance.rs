//! Search relevance with isA knowledge (§8.1.1): expanding a query (or the
//! matching vocabulary) with the concept net's hypernym relations closes
//! vocabulary gaps — "if a user searches for a top, items titled only
//! 'jacket' are relevant because jacket isA top".

use std::sync::Arc;

use alicoco::{AliCoCo, PrimitiveId};
use alicoco_ann::AnnBundle;
use alicoco_nn::util::FxHashSet;
use alicoco_obs::{Counter, Histogram, Registry, SpanTimer};
use alicoco_text::bm25::{Bm25Index, Bm25Metrics, Bm25Params};
use alicoco_text::vocab::{TokenId, Vocab};

/// Weight of the vector cosine in the fused item score, and how many
/// nearest items the HNSW index proposes per query.
const VECTOR_WEIGHT: f64 = 0.5;
const ANN_K: usize = 16;
const ANN_EF: usize = 64;

/// Pre-registered `relevance.*` metric handles.
#[derive(Clone, Debug)]
struct RelevanceMetrics {
    queries: Arc<Counter>,
    expanded_terms: Arc<Counter>,
    expand_ns: Arc<Histogram>,
    retrieve_ns: Arc<Histogram>,
}

impl RelevanceMetrics {
    fn register(reg: &Registry) -> Self {
        RelevanceMetrics {
            queries: reg.counter("relevance.queries"),
            expanded_terms: reg.counter("relevance.expanded_terms"),
            expand_ns: reg.histogram("relevance.expand_ns"),
            retrieve_ns: reg.histogram("relevance.retrieve_ns"),
        }
    }
}

/// A relevance scorer over item titles with optional isA expansion.
pub struct RelevanceScorer<'kg> {
    kg: &'kg AliCoCo,
    vocab: Vocab,
    index: Bm25Index,
    ann: Option<Arc<AnnBundle>>,
    metrics: Option<RelevanceMetrics>,
}

impl<'kg> RelevanceScorer<'kg> {
    /// Build the title index over all items in the net.
    pub fn build(kg: &'kg AliCoCo) -> Self {
        let mut vocab = Vocab::new();
        let mut docs: Vec<Vec<TokenId>> = Vec::with_capacity(kg.num_items());
        for iid in kg.item_ids() {
            let doc = kg.item(iid).title.iter().map(|t| vocab.add(t)).collect();
            docs.push(doc);
        }
        let index = Bm25Index::build(&docs, Bm25Params::default());
        RelevanceScorer {
            kg,
            vocab,
            index,
            ann: None,
            metrics: None,
        }
    }

    /// Attach a retrieval bundle: [`Self::top_items`] additionally embeds
    /// the query, unions the HNSW nearest *items* into the BM25 candidate
    /// set, and scores the union `bm25 + VECTOR_WEIGHT · max(0, cos)` —
    /// so a query word that titles no item can still retrieve the items
    /// of the concept it embeds next to.
    #[must_use]
    pub fn with_ann(mut self, bundle: Arc<AnnBundle>) -> Self {
        self.ann = Some(bundle);
        self
    }

    /// Build the scorer recording `relevance.*` (and the underlying
    /// `bm25.*`) metrics into `metrics`.
    pub fn with_metrics(kg: &'kg AliCoCo, metrics: &Registry) -> Self {
        let mut scorer = Self::build(kg);
        scorer.index.set_metrics(Bm25Metrics::register(metrics));
        scorer.metrics = Some(RelevanceMetrics::register(metrics));
        scorer
    }

    fn encode(&self, words: &[String]) -> Vec<TokenId> {
        words.iter().map(|w| self.vocab.get_or_unk(w)).collect()
    }

    /// The transitive hyponym closure of a primitive (all its descendants in
    /// the isA graph).
    fn hyponym_closure(&self, root: PrimitiveId) -> Vec<PrimitiveId> {
        let mut seen: FxHashSet<PrimitiveId> = FxHashSet::default();
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(p) = stack.pop() {
            for &h in &self.kg.primitive(p).hyponyms {
                if seen.insert(h) {
                    out.push(h);
                    stack.push(h);
                }
            }
        }
        out
    }

    /// Expand query words with the names of hyponyms of any matching
    /// primitive concept.
    pub fn expand_query(&self, words: &[String]) -> Vec<String> {
        let _span = self
            .metrics
            .as_ref()
            .map(|m| SpanTimer::new(Arc::clone(&m.expand_ns)));
        let mut out: Vec<String> = words.to_vec();
        let mut seen: FxHashSet<String> = words.iter().cloned().collect();
        // Try single words and the full phrase as primitive surfaces.
        let mut surfaces: Vec<String> = words.to_vec();
        if words.len() > 1 {
            surfaces.push(words.join(" "));
        }
        for surface in surfaces {
            for &p in self.kg.primitives_by_name(&surface) {
                for h in self.hyponym_closure(p) {
                    for tok in self.kg.primitive(h).name.split(' ') {
                        if seen.insert(tok.to_string()) {
                            out.push(tok.to_string());
                        }
                    }
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.expanded_terms.add((out.len() - words.len()) as u64);
        }
        out
    }

    /// BM25 score of an item for a query, keyword-only.
    pub fn score_plain(&self, words: &[String], item: alicoco::ItemId) -> f64 {
        self.index.score(&self.encode(words), item.index())
    }

    /// BM25 score with isA query expansion.
    pub fn score_expanded(&self, words: &[String], item: alicoco::ItemId) -> f64 {
        let expanded = self.expand_query(words);
        self.index.score(&self.encode(&expanded), item.index())
    }

    /// Top-`k` items for a query, keyword-only: candidates come from the
    /// BM25 postings (items sharing no query term are never touched) and
    /// the best `k` are kept in a bounded heap with the workspace ranking
    /// order (score descending, item id ascending).
    pub fn top_items(&self, words: &[String], k: usize) -> Vec<(alicoco::ItemId, f64)> {
        let _span = self.metrics.as_ref().map(|m| {
            m.queries.inc();
            SpanTimer::new(Arc::clone(&m.retrieve_ns))
        });
        let qvec = self
            .ann
            .as_ref()
            .and_then(|b| b.embed_query(&words.join(" ")));
        let mut top = alicoco::rank::TopK::new(k);
        if let (Some(bundle), Some(q)) = (&self.ann, &qvec) {
            // Hybrid: fuse `bm25 + VECTOR_WEIGHT · max(0, cos)` over the
            // union of BM25 candidates and the HNSW nearest items.
            let mut fused: alicoco_nn::util::FxHashMap<usize, f64> = self
                .index
                .candidate_scores(&self.encode(words))
                .into_iter()
                .collect();
            for (id, _) in bundle.items().knn(q, ANN_K.max(k), ANN_EF) {
                fused.entry(id as usize).or_insert(0.0);
            }
            for (doc, bm25) in fused {
                let cos = bundle.items().sim_to(doc as u32, q);
                let score = bm25 + VECTOR_WEIGHT * f64::from(cos.max(0.0));
                top.push(alicoco::ItemId::from_index(doc), score);
            }
        } else {
            for (doc, score) in self.index.candidate_scores(&self.encode(words)) {
                top.push(alicoco::ItemId::from_index(doc), score);
            }
        }
        top.into_sorted_vec()
    }

    /// Top-`k` items with isA query expansion — the §8.1.1 serving path:
    /// expand, then retrieve from postings only.
    pub fn top_items_expanded(&self, words: &[String], k: usize) -> Vec<(alicoco::ItemId, f64)> {
        let expanded = self.expand_query(words);
        self.top_items(&expanded, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// "jacket isA top": a query for "top" must reach an item titled only
    /// "jacket" after expansion.
    fn sample_kg() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let cat = kg.add_class("Category", Some(root));
        let top = kg.add_primitive("top", cat);
        let jacket = kg.add_primitive("jacket", cat);
        let hoodie = kg.add_primitive("hoodie", cat);
        kg.add_primitive_is_a(jacket, top);
        kg.add_primitive_is_a(hoodie, top);
        kg.add_item(&["warm".into(), "jacket".into()]);
        kg.add_item(&["grey".into(), "hoodie".into()]);
        kg.add_item(&["ceramic".into(), "pot".into()]);
        kg
    }

    #[test]
    fn expansion_adds_hyponyms() {
        let kg = sample_kg();
        let scorer = RelevanceScorer::build(&kg);
        let expanded = scorer.expand_query(&["top".to_string()]);
        assert!(expanded.contains(&"jacket".to_string()));
        assert!(expanded.contains(&"hoodie".to_string()));
        assert!(!expanded.contains(&"pot".to_string()));
    }

    #[test]
    fn expanded_query_reaches_hyponym_titled_items() {
        let kg = sample_kg();
        let scorer = RelevanceScorer::build(&kg);
        let q = vec!["top".to_string()];
        let jacket_item = kg.item_ids().next().unwrap();
        assert_eq!(
            scorer.score_plain(&q, jacket_item),
            0.0,
            "keyword-only misses the jacket"
        );
        assert!(
            scorer.score_expanded(&q, jacket_item) > 0.0,
            "isA expansion must recover the jacket item"
        );
    }

    #[test]
    fn expansion_does_not_leak_to_unrelated_items() {
        let kg = sample_kg();
        let scorer = RelevanceScorer::build(&kg);
        let q = vec!["top".to_string()];
        let pot_item = kg.item_ids().nth(2).unwrap();
        assert_eq!(scorer.score_expanded(&q, pot_item), 0.0);
    }

    #[test]
    fn top_items_retrieval_agrees_with_per_item_scores() {
        let kg = sample_kg();
        let scorer = RelevanceScorer::build(&kg);
        let q = vec!["top".to_string()];
        // Keyword-only: no item titled "top" exists, nothing retrieved.
        assert!(scorer.top_items(&q, 5).is_empty());
        // Expanded: jacket and hoodie items surface; the pot never does.
        let hits = scorer.top_items_expanded(&q, 5);
        assert_eq!(hits.len(), 2);
        for &(item, score) in &hits {
            assert!((score - scorer.score_expanded(&q, item)).abs() < 1e-12);
            assert!(score > 0.0);
        }
        // Bounded k keeps only the best.
        assert_eq!(scorer.top_items_expanded(&q, 1).len(), 1);
    }

    #[test]
    fn instrumented_scorer_matches_and_counts() {
        let kg = sample_kg();
        let plain = RelevanceScorer::build(&kg);
        let reg = Registry::new();
        let wired = RelevanceScorer::with_metrics(&kg, &reg);
        let q = vec!["top".to_string()];
        assert_eq!(
            wired.top_items_expanded(&q, 5),
            plain.top_items_expanded(&q, 5)
        );
        assert_eq!(reg.counter("relevance.queries").get(), 1);
        // "top" expands to at least jacket + hoodie.
        assert!(reg.counter("relevance.expanded_terms").get() >= 2);
        assert_eq!(reg.histogram("relevance.expand_ns").count(), 1);
        assert_eq!(reg.histogram("relevance.retrieve_ns").count(), 1);
        // The underlying BM25 index records too.
        assert_eq!(reg.counter("bm25.queries").get(), 1);
        assert!(reg.counter("bm25.postings_scanned").get() > 0);
    }

    /// Hybrid retrieval: a query word titling no item retrieves the items
    /// whose embeddings sit next to it (trained over concept surfaces and
    /// item titles together).
    #[test]
    fn vector_candidates_recover_title_misses() {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let event = kg.add_class("Event", Some(root));
        let bbq = kg.add_primitive("barbecue", event);
        let c = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c, bbq);
        let grill = kg.add_item(&["charcoal".into(), "grill".into()]);
        kg.link_concept_item(c, grill, 0.9);
        let c2 = kg.add_concept("indoor yoga");
        let mat = kg.add_item(&["yoga".into(), "mat".into()]);
        kg.link_concept_item(c2, mat, 0.8);
        let q = vec!["barbecue".to_string()];
        // "barbecue" titles no item: keyword BM25 retrieves nothing.
        let plain = RelevanceScorer::build(&kg);
        assert!(plain.top_items(&q, 5).is_empty());
        let bundle = Arc::new(alicoco_ann::build_default_bundle(&kg));
        let fused = RelevanceScorer::build(&kg).with_ann(bundle);
        let hits = fused.top_items(&q, 5);
        assert!(!hits.is_empty(), "vector candidates must surface items");
        assert_eq!(hits[0].0, grill, "the barbecue-linked item ranks first");
        // Lexical hits keep their BM25 evidence and gain the bonus.
        let direct = fused.top_items(&["charcoal".to_string()], 5);
        assert_eq!(direct[0].0, grill);
        let plain_direct = plain.top_items(&["charcoal".to_string()], 5);
        assert!(direct[0].1 >= plain_direct[0].1);
    }

    #[test]
    fn multiword_surfaces_expand() {
        let mut kg = sample_kg();
        let cat = kg.class_by_name("Category").unwrap();
        let coat = kg.add_primitive("trench coat", cat);
        let top = kg.primitives_by_name("top")[0];
        kg.add_primitive_is_a(coat, top);
        let scorer = RelevanceScorer::build(&kg);
        let expanded = scorer.expand_query(&["top".to_string()]);
        assert!(expanded.contains(&"trench".to_string()));
        assert!(expanded.contains(&"coat".to_string()));
    }
}
