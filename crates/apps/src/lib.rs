#![warn(missing_docs)]
//! # alicoco-apps
//!
//! Downstream applications of the AliCoCo concept net, as described in §8
//! of the paper — the pieces that turn the knowledge graph into product
//! features:
//!
//! - [`search`] — semantic search: keyword queries trigger concept cards
//!   with the items a scenario needs (§8.1, Figure 2a),
//! - [`recommend`] — cognitive recommendation: infer user needs from
//!   browsing history and recommend concept cards with novelty, plus
//!   human-readable recommendation reasons (§8.2, Figure 2b/c),
//! - [`qa`] — scenario question answering: "what should I prepare for
//!   hosting next week's barbecue?" → a shopping checklist (§8.1.2),
//! - [`relevance`] — search relevance with isA expansion: "jacket is a kind
//!   of top" closes query–title vocabulary gaps (§8.1.1).
//!
//! Everything here operates on a read-only [`alicoco::AliCoCo`] — these are
//! serving-side features, independent of the construction pipeline.

pub mod qa;
pub mod recommend;
pub mod relevance;
pub mod search;

pub use qa::{Answer, ScenarioQa};
pub use recommend::{CognitiveRecommender, RecommendConfig, Recommendation};
pub use relevance::RelevanceScorer;
pub use search::{ConceptCard, SearchConfig, SemanticSearch};
