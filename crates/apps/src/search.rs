//! Semantic search over the concept net (§8.1): map a keyword query to
//! e-commerce concept cards — "items you will need for outdoor barbecue" —
//! rather than bare keyword item matching.
//!
//! Retrieval is index-driven: a [`QueryIndex`] built at construction maps
//! every concept-surface token and interpreting-primitive surface to its
//! concepts, so a query only scores the union of its words' posting lists
//! (the exact set of concepts that can score above zero) and keeps the
//! best `k` in a bounded heap. [`SemanticSearch::search_scan`] retains the
//! original full-scan ranking as the reference implementation; property
//! tests assert the two agree card-for-card.

use std::sync::Arc;

use alicoco::query::QueryIndex;
use alicoco::rank::TopK;
use alicoco::{AliCoCo, ConceptId, ItemId};
use alicoco_nn::util::FxHashSet;
use alicoco_obs::{Counter, Histogram, Registry, StageClock};

/// Pre-registered `search.*` metric handles: registered once at engine
/// construction so the query path never takes the registry lock.
#[derive(Clone, Debug)]
struct SearchMetrics {
    requests: Arc<Counter>,
    candidates_examined: Arc<Counter>,
    postings_hit: Arc<Counter>,
    retrieve_ns: Arc<Histogram>,
    score_ns: Arc<Histogram>,
    rank_ns: Arc<Histogram>,
    batch_queries: Arc<Counter>,
    batch_ns: Arc<Histogram>,
}

impl SearchMetrics {
    fn register(reg: &Registry) -> Self {
        SearchMetrics {
            requests: reg.counter("search.requests"),
            candidates_examined: reg.counter("search.candidates_examined"),
            postings_hit: reg.counter("search.postings_hit"),
            retrieve_ns: reg.histogram("search.retrieve_ns"),
            score_ns: reg.histogram("search.score_ns"),
            rank_ns: reg.histogram("search.rank_ns"),
            batch_queries: reg.counter("search.batch_queries"),
            batch_ns: reg.histogram("search.batch_ns"),
        }
    }
}

/// A rendered concept card (Figure 2a/b): the concept, its interpretation,
/// and suggested items.
#[derive(Clone, Debug, PartialEq)]
pub struct ConceptCard {
    /// Concept.
    pub concept: ConceptId,
    /// Concept surface form.
    pub name: String,
    /// `(domain, primitive surface)` interpretation pairs.
    pub interpretation: Vec<(String, String)>,
    /// Suggested items with edge probabilities, best first.
    pub items: Vec<(ItemId, f32)>,
    /// Query-match score.
    pub score: f64,
}

/// Configuration for concept retrieval.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Max cards returned.
    pub k: usize,
    /// Items shown per card.
    pub items_per_card: usize,
    /// Weight of primitive-level matches relative to surface overlap.
    pub primitive_weight: f64,
    /// Bonus for cards that have items to show.
    pub stocked_bonus: f64,
    /// Worker threads used by [`SemanticSearch::search_batch`].
    pub batch_workers: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            k: 3,
            items_per_card: 10,
            primitive_weight: 0.3,
            stocked_bonus: 0.1,
            batch_workers: 4,
        }
    }
}

/// The semantic-search engine: retrieval is order-free over concept surfaces
/// and their interpreting primitives, which is what makes the query
/// "barbecue outdoor" trigger the concept "outdoor barbecue" (Figure 2a).
pub struct SemanticSearch<'kg> {
    kg: &'kg AliCoCo,
    index: QueryIndex<'kg>,
    cfg: SearchConfig,
    metrics: Option<SearchMetrics>,
}

impl<'kg> SemanticSearch<'kg> {
    /// Build the engine (constructs the inverted token index once).
    pub fn new(kg: &'kg AliCoCo, cfg: SearchConfig) -> Self {
        SemanticSearch {
            kg,
            index: QueryIndex::build(kg),
            cfg,
            metrics: None,
        }
    }

    /// Build the engine recording `search.*` metrics into `metrics`.
    /// Handles are registered here, once; per-query instrumentation is a
    /// handful of relaxed atomics and three clock reads, keeping the
    /// instrumented path within the overhead budget (DESIGN.md §8).
    pub fn with_metrics(kg: &'kg AliCoCo, cfg: SearchConfig, metrics: &Registry) -> Self {
        let mut engine = Self::new(kg, cfg);
        engine.metrics = Some(SearchMetrics::register(metrics));
        engine
    }

    /// Build the engine around a prebuilt [`QueryIndex`] — the fast-start
    /// path when token postings come straight out of a binary snapshot's
    /// postings sections (`QueryIndex::from_postings`) instead of being
    /// re-tokenized from every surface at construction.
    pub fn from_index(kg: &'kg AliCoCo, index: QueryIndex<'kg>, cfg: SearchConfig) -> Self {
        SemanticSearch {
            kg,
            index,
            cfg,
            metrics: None,
        }
    }

    /// [`from_index`](Self::from_index) with `search.*` metrics wired.
    pub fn from_index_with_metrics(
        kg: &'kg AliCoCo,
        index: QueryIndex<'kg>,
        cfg: SearchConfig,
        metrics: &Registry,
    ) -> Self {
        let mut engine = Self::from_index(kg, index, cfg);
        engine.metrics = Some(SearchMetrics::register(metrics));
        engine
    }

    /// The token index the engine retrieves from.
    pub fn index(&self) -> &QueryIndex<'kg> {
        &self.index
    }

    /// Score a single concept against query words.
    fn score_concept(&self, cid: ConceptId, words: &FxHashSet<&str>) -> f64 {
        let c = self.kg.concept(cid);
        let concept_words: FxHashSet<&str> = c.name.split(' ').collect();
        let overlap = words.intersection(&concept_words).count() as f64;
        let mut score = overlap / concept_words.len().max(1) as f64;
        let prim_hits = c
            .primitives
            .iter()
            .filter(|&&p| words.contains(self.kg.primitive(p).name.as_str()))
            .count() as f64;
        score += self.cfg.primitive_weight * prim_hits;
        if score > 0.0 && !c.items.is_empty() {
            score += self.cfg.stocked_bonus;
        }
        score
    }

    /// Retrieve concept cards for a keyword query.
    ///
    /// Only concepts on the posting lists of the query's words are scored
    /// — any other concept has zero surface overlap and zero primitive
    /// hits, so it cannot score above zero — and the best `k` are kept in
    /// a bounded heap (`O(c log k)` over `c` candidates).
    pub fn search(&self, query: &str) -> Vec<ConceptCard> {
        self.search_top(query, self.cfg.k)
    }

    /// [`search`](Self::search) with a per-call result cap instead of the
    /// configured `cfg.k` — the HTTP layer maps its `k=` query parameter
    /// here so one shared engine serves callers with different page
    /// sizes. `search_top(q, cfg.k)` is exactly `search(q)`.
    pub fn search_top(&self, query: &str, k: usize) -> Vec<ConceptCard> {
        let words: FxHashSet<&str> = query.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let mut clock = StageClock::started(self.metrics.is_some());
        let (candidates, postings) = self.index.concept_candidates_counted(words.iter().copied());
        if let Some(m) = &self.metrics {
            m.requests.inc();
            m.postings_hit.add(postings as u64);
            m.candidates_examined.add(candidates.len() as u64);
            clock.lap(&m.retrieve_ns);
        }
        let mut top = TopK::new(k);
        for cid in candidates {
            let score = self.score_concept(cid, &words);
            if score > 0.0 {
                top.push(cid, score);
            }
        }
        if let Some(m) = &self.metrics {
            clock.lap(&m.score_ns);
        }
        let cards = top
            .into_sorted_vec()
            .into_iter()
            .map(|(cid, score)| self.card(cid, score))
            .collect();
        if let Some(m) = &self.metrics {
            clock.lap(&m.rank_ns);
        }
        cards
    }

    /// Reference ranking: score every concept in the net, sort, truncate.
    /// Kept as the oracle the indexed [`search`](Self::search) is verified
    /// against (and benchmarked over).
    pub fn search_scan(&self, query: &str) -> Vec<ConceptCard> {
        let words: FxHashSet<&str> = query.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(ConceptId, f64)> = self
            .kg
            .concept_ids()
            .map(|cid| (cid, self.score_concept(cid, &words)))
            .filter(|&(_, s)| s > 0.0)
            .collect();
        scored.sort_by(alicoco::rank::by_score_then_id);
        scored.truncate(self.cfg.k);
        scored
            .into_iter()
            .map(|(cid, score)| self.card(cid, score))
            .collect()
    }

    /// Search many queries, sharding the batch across scoped worker
    /// threads. Results are returned in query order and are identical to
    /// calling [`search`](Self::search) per query; `cfg.batch_workers`
    /// caps the thread count (a batch of one, or one worker, degenerates
    /// to the sequential path).
    pub fn search_batch(&self, queries: &[&str]) -> Vec<Vec<ConceptCard>> {
        let mut clock = StageClock::started(self.metrics.is_some());
        let workers = self.cfg.batch_workers.max(1).min(queries.len().max(1));
        let results = if workers <= 1 {
            queries.iter().map(|q| self.search(q)).collect()
        } else {
            let mut results: Vec<Vec<ConceptCard>> = Vec::new();
            results.resize_with(queries.len(), Vec::new);
            let chunk = queries.len().div_ceil(workers);
            std::thread::scope(|s| {
                for (qs, out) in queries.chunks(chunk).zip(results.chunks_mut(chunk)) {
                    s.spawn(move || {
                        for (q, slot) in qs.iter().zip(out.iter_mut()) {
                            *slot = self.search(q);
                        }
                    });
                }
            });
            results
        };
        if let Some(m) = &self.metrics {
            m.batch_queries.add(queries.len() as u64);
            clock.lap(&m.batch_ns);
        }
        results
    }

    /// Render the card for a concept.
    pub fn card(&self, cid: ConceptId, score: f64) -> ConceptCard {
        let c = self.kg.concept(cid);
        let interpretation = c
            .primitives
            .iter()
            .map(|&p| {
                let prim = self.kg.primitive(p);
                let domain = self.kg.class(self.kg.class_domain(prim.class)).name.clone();
                (domain, prim.name.clone())
            })
            .collect();
        let mut items = self.kg.items_for_concept(cid);
        items.truncate(self.cfg.items_per_card);
        ConceptCard {
            concept: cid,
            name: c.name.clone(),
            interpretation,
            items,
            score,
        }
    }

    /// Keyword fallback (the pre-AliCoCo experience): items ranked by how
    /// many distinct query words their title contains (ties broken by
    /// ascending item id), retrieved from the title-token postings.
    pub fn keyword_items(&self, query: &str, k: usize) -> Vec<ItemId> {
        let words: FxHashSet<&str> = query.split_whitespace().collect();
        let mut seen: FxHashSet<ItemId> = FxHashSet::default();
        let mut top = TopK::new(k);
        for &w in &words {
            for &i in self.index.items_by_token(w) {
                if seen.insert(i) {
                    let title = &self.kg.item(i).title;
                    let hits = words
                        .iter()
                        .filter(|w| title.iter().any(|t| t == *w))
                        .count() as f64;
                    top.push(i, hits);
                }
            }
        }
        top.into_sorted_vec().into_iter().map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kg() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let loc = kg.add_class("Location", Some(root));
        let event = kg.add_class("Event", Some(root));
        let outdoor = kg.add_primitive("outdoor", loc);
        let bbq = kg.add_primitive("barbecue", event);
        let c1 = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c1, outdoor);
        kg.link_concept_primitive(c1, bbq);
        let c2 = kg.add_concept("indoor yoga");
        let _ = c2;
        let grill = kg.add_item(&["brand".into(), "grill".into()]);
        let charcoal = kg.add_item(&["best".into(), "charcoal".into()]);
        kg.link_concept_item(c1, grill, 0.9);
        kg.link_concept_item(c1, charcoal, 0.8);
        kg
    }

    #[test]
    fn order_free_query_triggers_concept_card() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let cards = s.search("barbecue outdoor");
        assert_eq!(cards.len(), 1);
        let card = &cards[0];
        assert_eq!(card.name, "outdoor barbecue");
        assert_eq!(card.items.len(), 2);
        assert!(card.items[0].1 >= card.items[1].1);
        assert!(card
            .interpretation
            .contains(&("Event".to_string(), "barbecue".to_string())));
    }

    #[test]
    fn search_top_with_cfg_k_is_search() {
        let kg = sample_kg();
        let cfg = SearchConfig::default();
        let s = SemanticSearch::new(&kg, cfg);
        assert_eq!(
            s.search("barbecue outdoor"),
            s.search_top("barbecue outdoor", cfg.k)
        );
        // A tighter per-call cap truncates without reordering.
        let one = s.search_top("barbecue outdoor", 1);
        assert!(one.len() <= 1);
        assert_eq!(one, s.search("barbecue outdoor")[..one.len()].to_vec());
    }

    #[test]
    fn partial_match_still_scores() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let cards = s.search("barbecue");
        assert_eq!(cards.len(), 1);
        assert!(cards[0].score > 0.0);
    }

    #[test]
    fn unrelated_query_returns_nothing() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        assert!(s.search("quantum physics").is_empty());
        assert!(s.search("").is_empty());
    }

    #[test]
    fn indexed_search_matches_reference_scan() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        for q in [
            "barbecue outdoor",
            "barbecue",
            "indoor",
            "outdoor grill",
            "nothing here",
        ] {
            assert_eq!(s.search(q), s.search_scan(q), "query {q:?}");
        }
    }

    #[test]
    fn keyword_fallback_matches_titles() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let items = s.keyword_items("charcoal", 10);
        assert_eq!(items.len(), 1);
        assert_eq!(
            kg.item(items[0]).title,
            vec!["best".to_string(), "charcoal".to_string()]
        );
    }

    /// Regression: items covering more query words must outrank earlier-id
    /// items that merely contain one word (the old implementation returned
    /// the first `k` matches in arena order).
    #[test]
    fn keyword_items_rank_by_title_overlap_not_arena_order() {
        let mut kg = sample_kg();
        // Earlier-arena items each match one word; this one matches both.
        let both = kg.add_item(&["best".into(), "grill".into()]);
        let items =
            SemanticSearch::new(&kg, SearchConfig::default()).keyword_items("best grill", 2);
        assert_eq!(items[0], both, "two-word match must rank first");
        assert_eq!(items.len(), 2);
        // Tie on one word each: lower item id wins.
        let tied =
            SemanticSearch::new(&kg, SearchConfig::default()).keyword_items("brand charcoal", 10);
        assert_eq!(tied.len(), 2);
        assert!(
            tied[0] < tied[1],
            "equal overlap breaks ties by ascending id"
        );
    }

    #[test]
    fn k_truncates_results() {
        let mut kg = sample_kg();
        for i in 0..10 {
            kg.add_concept(&format!("barbecue idea {i}"));
        }
        let s = SemanticSearch::new(
            &kg,
            SearchConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(s.search("barbecue").len(), 2);
    }

    #[test]
    fn instrumented_search_returns_identical_cards() {
        let kg = sample_kg();
        let plain = SemanticSearch::new(&kg, SearchConfig::default());
        let reg = Registry::new();
        let wired = SemanticSearch::with_metrics(&kg, SearchConfig::default(), &reg);
        for q in ["barbecue outdoor", "indoor", "", "nothing here"] {
            assert_eq!(wired.search(q), plain.search(q), "query {q:?}");
        }
        // Empty queries short-circuit before the request counter.
        assert_eq!(reg.counter("search.requests").get(), 3);
        assert!(reg.counter("search.candidates_examined").get() > 0);
        assert!(reg.counter("search.postings_hit").get() > 0);
        assert_eq!(reg.histogram("search.retrieve_ns").count(), 3);
        assert_eq!(reg.histogram("search.score_ns").count(), 3);
        assert_eq!(reg.histogram("search.rank_ns").count(), 3);
        let batch = wired.search_batch(&["barbecue", "outdoor"]);
        assert_eq!(batch.len(), 2);
        assert_eq!(reg.counter("search.batch_queries").get(), 2);
        assert_eq!(reg.histogram("search.batch_ns").count(), 1);
        assert_eq!(reg.counter("search.requests").get(), 5);
    }

    #[test]
    fn engine_from_snapshot_postings_matches_fresh_build() {
        let kg = sample_kg();
        let mut bytes = Vec::new();
        alicoco::snapshot::binary::save(&kg, &mut bytes).unwrap();
        let view = alicoco::snapshot::binary::SnapshotView::open(&bytes).unwrap();
        let index = QueryIndex::from_postings(
            &kg,
            view.concept_postings()
                .unwrap()
                .into_iter()
                .map(|(t, ids)| (t.to_string(), ids)),
            view.item_postings()
                .unwrap()
                .into_iter()
                .map(|(t, ids)| (t.to_string(), ids)),
        );
        let fast = SemanticSearch::from_index(&kg, index, SearchConfig::default());
        let fresh = SemanticSearch::new(&kg, SearchConfig::default());
        for q in ["barbecue outdoor", "indoor", "grill", "nothing here", ""] {
            assert_eq!(fast.search(q), fresh.search(q), "query {q:?}");
        }
        assert_eq!(
            fast.keyword_items("charcoal grill", 5),
            fresh.keyword_items("charcoal grill", 5)
        );
    }

    #[test]
    fn batch_search_equals_per_query_search() {
        let mut kg = sample_kg();
        for i in 0..20 {
            kg.add_concept(&format!("barbecue idea {i}"));
        }
        let s = SemanticSearch::new(
            &kg,
            SearchConfig {
                batch_workers: 3,
                ..Default::default()
            },
        );
        let queries: Vec<&str> = vec![
            "barbecue",
            "indoor yoga",
            "",
            "idea 7",
            "outdoor",
            "grill",
            "barbecue idea",
        ];
        let batched = s.search_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(&batched) {
            assert_eq!(got, &s.search(q), "query {q:?}");
        }
    }
}
