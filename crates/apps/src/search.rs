//! Semantic search over the concept net (§8.1): map a keyword query to
//! e-commerce concept cards — "items you will need for outdoor barbecue" —
//! rather than bare keyword item matching.

use alicoco::{AliCoCo, ConceptId, ItemId};
use alicoco_nn::util::FxHashSet;

/// A rendered concept card (Figure 2a/b): the concept, its interpretation,
/// and suggested items.
#[derive(Clone, Debug)]
pub struct ConceptCard {
    /// Concept.
    pub concept: ConceptId,
    /// Concept surface form.
    pub name: String,
    /// `(domain, primitive surface)` interpretation pairs.
    pub interpretation: Vec<(String, String)>,
    /// Suggested items with edge probabilities, best first.
    pub items: Vec<(ItemId, f32)>,
    /// Query-match score.
    pub score: f64,
}

/// Configuration for concept retrieval.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Max cards returned.
    pub k: usize,
    /// Items shown per card.
    pub items_per_card: usize,
    /// Weight of primitive-level matches relative to surface overlap.
    pub primitive_weight: f64,
    /// Bonus for cards that have items to show.
    pub stocked_bonus: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { k: 3, items_per_card: 10, primitive_weight: 0.3, stocked_bonus: 0.1 }
    }
}

/// The semantic-search engine: retrieval is order-free over concept surfaces
/// and their interpreting primitives, which is what makes the query
/// "barbecue outdoor" trigger the concept "outdoor barbecue" (Figure 2a).
pub struct SemanticSearch<'kg> {
    kg: &'kg AliCoCo,
    cfg: SearchConfig,
}

impl<'kg> SemanticSearch<'kg> {
    /// Create a new instance.
    pub fn new(kg: &'kg AliCoCo, cfg: SearchConfig) -> Self {
        SemanticSearch { kg, cfg }
    }

    /// Score a single concept against query words.
    fn score_concept(&self, cid: ConceptId, words: &FxHashSet<&str>) -> f64 {
        let c = self.kg.concept(cid);
        let concept_words: FxHashSet<&str> = c.name.split(' ').collect();
        let overlap = words.intersection(&concept_words).count() as f64;
        let mut score = overlap / concept_words.len().max(1) as f64;
        let prim_hits = c
            .primitives
            .iter()
            .filter(|&&p| words.contains(self.kg.primitive(p).name.as_str()))
            .count() as f64;
        score += self.cfg.primitive_weight * prim_hits;
        if score > 0.0 && !c.items.is_empty() {
            score += self.cfg.stocked_bonus;
        }
        score
    }

    /// Retrieve concept cards for a keyword query.
    pub fn search(&self, query: &str) -> Vec<ConceptCard> {
        let words: FxHashSet<&str> = query.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(ConceptId, f64)> = self
            .kg
            .concept_ids()
            .map(|cid| (cid, self.score_concept(cid, &words)))
            .filter(|&(_, s)| s > 0.0)
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        scored.truncate(self.cfg.k);
        scored.into_iter().map(|(cid, score)| self.card(cid, score)).collect()
    }

    /// Render the card for a concept.
    pub fn card(&self, cid: ConceptId, score: f64) -> ConceptCard {
        let c = self.kg.concept(cid);
        let interpretation = c
            .primitives
            .iter()
            .map(|&p| {
                let prim = self.kg.primitive(p);
                let domain = self.kg.class(self.kg.class_domain(prim.class)).name.clone();
                (domain, prim.name.clone())
            })
            .collect();
        let mut items = self.kg.items_for_concept(cid);
        items.truncate(self.cfg.items_per_card);
        ConceptCard { concept: cid, name: c.name.clone(), interpretation, items, score }
    }

    /// Keyword fallback (the pre-AliCoCo experience): items whose title
    /// contains any query word.
    pub fn keyword_items(&self, query: &str, k: usize) -> Vec<ItemId> {
        let words: FxHashSet<&str> = query.split_whitespace().collect();
        self.kg
            .item_ids()
            .filter(|&i| self.kg.item(i).title.iter().any(|t| words.contains(t.as_str())))
            .take(k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kg() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let loc = kg.add_class("Location", Some(root));
        let event = kg.add_class("Event", Some(root));
        let outdoor = kg.add_primitive("outdoor", loc);
        let bbq = kg.add_primitive("barbecue", event);
        let c1 = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c1, outdoor);
        kg.link_concept_primitive(c1, bbq);
        let c2 = kg.add_concept("indoor yoga");
        let _ = c2;
        let grill = kg.add_item(&["brand".into(), "grill".into()]);
        let charcoal = kg.add_item(&["best".into(), "charcoal".into()]);
        kg.link_concept_item(c1, grill, 0.9);
        kg.link_concept_item(c1, charcoal, 0.8);
        kg
    }

    #[test]
    fn order_free_query_triggers_concept_card() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let cards = s.search("barbecue outdoor");
        assert_eq!(cards.len(), 1);
        let card = &cards[0];
        assert_eq!(card.name, "outdoor barbecue");
        assert_eq!(card.items.len(), 2);
        assert!(card.items[0].1 >= card.items[1].1);
        assert!(card
            .interpretation
            .contains(&("Event".to_string(), "barbecue".to_string())));
    }

    #[test]
    fn partial_match_still_scores() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let cards = s.search("barbecue");
        assert_eq!(cards.len(), 1);
        assert!(cards[0].score > 0.0);
    }

    #[test]
    fn unrelated_query_returns_nothing() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        assert!(s.search("quantum physics").is_empty());
        assert!(s.search("").is_empty());
    }

    #[test]
    fn keyword_fallback_matches_titles() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let items = s.keyword_items("charcoal", 10);
        assert_eq!(items.len(), 1);
        assert_eq!(kg.item(items[0]).title, vec!["best".to_string(), "charcoal".to_string()]);
    }

    #[test]
    fn k_truncates_results() {
        let mut kg = sample_kg();
        for i in 0..10 {
            kg.add_concept(&format!("barbecue idea {i}"));
        }
        let s = SemanticSearch::new(&kg, SearchConfig { k: 2, ..Default::default() });
        assert_eq!(s.search("barbecue").len(), 2);
    }
}
