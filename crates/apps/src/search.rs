//! Semantic search over the concept net (§8.1): map a keyword query to
//! e-commerce concept cards — "items you will need for outdoor barbecue" —
//! rather than bare keyword item matching.
//!
//! Retrieval is index-driven: a [`QueryIndex`] built at construction maps
//! every concept-surface token and interpreting-primitive surface to its
//! concepts, so a query only scores the union of its words' posting lists
//! (the exact set of concepts that can score above zero) and keeps the
//! best `k` in a bounded heap. [`SemanticSearch::search_scan`] retains the
//! original full-scan ranking as the reference implementation; property
//! tests assert the two agree card-for-card.
//!
//! ## Hybrid retrieval
//!
//! With an [`AnnBundle`] attached ([`SemanticSearch::with_ann`]) the
//! candidate set becomes the *union* of the lexical posting lists and the
//! HNSW nearest concepts of the embedded query, and every candidate is
//! scored `lexical + vector_weight · max(0, cos)` using the exact stored
//! vector — the approximate index only proposes candidates, it never
//! scores them. This closes the zero-token-overlap gap: "charcoal" has no
//! surface or primitive in common with "outdoor barbecue", but its
//! embedding (trained over item titles too) does. Without a bundle the
//! engine is byte-for-byte the lexical engine it always was.

use std::sync::Arc;

use alicoco::query::QueryIndex;
use alicoco::rank::TopK;
use alicoco::{AliCoCo, ConceptId, ItemId};
use alicoco_ann::AnnBundle;
use alicoco_nn::util::FxHashSet;
use alicoco_obs::{Counter, Histogram, Registry, StageClock};

/// Pre-registered `search.*` metric handles: registered once at engine
/// construction so the query path never takes the registry lock.
#[derive(Clone, Debug)]
struct SearchMetrics {
    requests: Arc<Counter>,
    candidates_examined: Arc<Counter>,
    postings_hit: Arc<Counter>,
    ann_candidates: Arc<Counter>,
    retrieve_ns: Arc<Histogram>,
    score_ns: Arc<Histogram>,
    rank_ns: Arc<Histogram>,
    batch_queries: Arc<Counter>,
    batch_ns: Arc<Histogram>,
}

impl SearchMetrics {
    fn register(reg: &Registry) -> Self {
        SearchMetrics {
            requests: reg.counter("search.requests"),
            candidates_examined: reg.counter("search.candidates_examined"),
            postings_hit: reg.counter("search.postings_hit"),
            ann_candidates: reg.counter("search.ann_candidates"),
            retrieve_ns: reg.histogram("search.retrieve_ns"),
            score_ns: reg.histogram("search.score_ns"),
            rank_ns: reg.histogram("search.rank_ns"),
            batch_queries: reg.counter("search.batch_queries"),
            batch_ns: reg.histogram("search.batch_ns"),
        }
    }
}

/// A rendered concept card (Figure 2a/b): the concept, its interpretation,
/// and suggested items.
#[derive(Clone, Debug, PartialEq)]
pub struct ConceptCard {
    /// Concept.
    pub concept: ConceptId,
    /// Concept surface form.
    pub name: String,
    /// `(domain, primitive surface)` interpretation pairs.
    pub interpretation: Vec<(String, String)>,
    /// Suggested items with edge probabilities, best first.
    pub items: Vec<(ItemId, f32)>,
    /// Query-match score.
    pub score: f64,
}

/// Configuration for concept retrieval.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Max cards returned.
    pub k: usize,
    /// Items shown per card.
    pub items_per_card: usize,
    /// Weight of primitive-level matches relative to surface overlap.
    pub primitive_weight: f64,
    /// Bonus for cards that have items to show.
    pub stocked_bonus: f64,
    /// Worker threads used by [`SemanticSearch::search_batch`].
    pub batch_workers: usize,
    /// Weight of the (non-negative) cosine between the embedded query and
    /// a concept's stored vector when an [`AnnBundle`] is attached.
    pub vector_weight: f64,
    /// Nearest concepts proposed by the HNSW index per query (the index
    /// proposes at least `max(ann_k, k)` so a tight `k` never starves the
    /// union).
    pub ann_k: usize,
    /// `ef` beam width for the HNSW search.
    pub ann_ef: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            k: 3,
            items_per_card: 10,
            primitive_weight: 0.3,
            stocked_bonus: 0.1,
            batch_workers: 4,
            vector_weight: 0.6,
            ann_k: 16,
            ann_ef: 64,
        }
    }
}

/// The semantic-search engine: retrieval is order-free over concept surfaces
/// and their interpreting primitives, which is what makes the query
/// "barbecue outdoor" trigger the concept "outdoor barbecue" (Figure 2a).
pub struct SemanticSearch<'kg> {
    kg: &'kg AliCoCo,
    index: QueryIndex<'kg>,
    cfg: SearchConfig,
    ann: Option<Arc<AnnBundle>>,
    metrics: Option<SearchMetrics>,
}

impl<'kg> SemanticSearch<'kg> {
    /// Build the engine (constructs the inverted token index once).
    pub fn new(kg: &'kg AliCoCo, cfg: SearchConfig) -> Self {
        SemanticSearch {
            kg,
            index: QueryIndex::build(kg),
            cfg,
            ann: None,
            metrics: None,
        }
    }

    /// Attach a retrieval bundle: queries are additionally embedded and
    /// the HNSW nearest concepts join the lexical candidate union (module
    /// docs, "Hybrid retrieval").
    #[must_use]
    pub fn with_ann(mut self, bundle: Arc<AnnBundle>) -> Self {
        self.ann = Some(bundle);
        self
    }

    /// Build the engine recording `search.*` metrics into `metrics`.
    /// Handles are registered here, once; per-query instrumentation is a
    /// handful of relaxed atomics and three clock reads, keeping the
    /// instrumented path within the overhead budget (DESIGN.md §8).
    pub fn with_metrics(kg: &'kg AliCoCo, cfg: SearchConfig, metrics: &Registry) -> Self {
        let mut engine = Self::new(kg, cfg);
        engine.metrics = Some(SearchMetrics::register(metrics));
        engine
    }

    /// Build the engine around a prebuilt [`QueryIndex`] — the fast-start
    /// path when token postings come straight out of a binary snapshot's
    /// postings sections (`QueryIndex::from_postings`) instead of being
    /// re-tokenized from every surface at construction.
    pub fn from_index(kg: &'kg AliCoCo, index: QueryIndex<'kg>, cfg: SearchConfig) -> Self {
        SemanticSearch {
            kg,
            index,
            cfg,
            ann: None,
            metrics: None,
        }
    }

    /// [`from_index`](Self::from_index) with `search.*` metrics wired.
    pub fn from_index_with_metrics(
        kg: &'kg AliCoCo,
        index: QueryIndex<'kg>,
        cfg: SearchConfig,
        metrics: &Registry,
    ) -> Self {
        let mut engine = Self::from_index(kg, index, cfg);
        engine.metrics = Some(SearchMetrics::register(metrics));
        engine
    }

    /// The token index the engine retrieves from.
    pub fn index(&self) -> &QueryIndex<'kg> {
        &self.index
    }

    /// Score a single concept against query words.
    fn score_concept(&self, cid: ConceptId, words: &FxHashSet<&str>) -> f64 {
        let c = self.kg.concept(cid);
        let concept_words: FxHashSet<&str> = c.name.split(' ').collect();
        let overlap = words.intersection(&concept_words).count() as f64;
        let mut score = overlap / concept_words.len().max(1) as f64;
        let prim_hits = c
            .primitives
            .iter()
            .filter(|&&p| words.contains(self.kg.primitive(p).name.as_str()))
            .count() as f64;
        score += self.cfg.primitive_weight * prim_hits;
        if score > 0.0 && !c.items.is_empty() {
            score += self.cfg.stocked_bonus;
        }
        score
    }

    /// Embed the query through the attached bundle, if any. `None` when
    /// no bundle is attached or no query token is in the vocabulary.
    fn query_vector(&self, query: &str) -> Option<Vec<f32>> {
        self.ann.as_ref()?.embed_query(query)
    }

    /// The vector half of the fused score: `vector_weight · max(0, cos)`
    /// against the concept's **exact stored vector** (the approximate
    /// index only proposes candidates; it never scores them).
    fn vector_bonus(&self, cid: ConceptId, qvec: Option<&[f32]>) -> f64 {
        match (&self.ann, qvec) {
            (Some(bundle), Some(q)) => {
                let cos = bundle.concepts().sim_to(cid.index() as u32, q);
                self.cfg.vector_weight * f64::from(cos.max(0.0))
            }
            _ => 0.0,
        }
    }

    /// Fused score of one concept: lexical plus vector bonus.
    fn fused_score(&self, cid: ConceptId, words: &FxHashSet<&str>, qvec: Option<&[f32]>) -> f64 {
        self.score_concept(cid, words) + self.vector_bonus(cid, qvec)
    }

    /// Nearest-concept ids proposed by the HNSW index for an embedded
    /// query, mapped back to [`ConceptId`]s (index slot `i` is the concept
    /// with ordinal `i` — the bundle is built over concepts in id order).
    fn ann_candidates(&self, qvec: Option<&[f32]>, k: usize) -> Vec<ConceptId> {
        match (&self.ann, qvec) {
            (Some(bundle), Some(q)) => bundle
                .concepts()
                .knn(q, self.cfg.ann_k.max(k), self.cfg.ann_ef)
                .into_iter()
                .map(|(id, _)| ConceptId::from_index(id as usize))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Retrieve concept cards for a keyword query.
    ///
    /// Only concepts on the posting lists of the query's words are scored
    /// — any other concept has zero surface overlap and zero primitive
    /// hits, so it cannot score above zero — and the best `k` are kept in
    /// a bounded heap (`O(c log k)` over `c` candidates).
    pub fn search(&self, query: &str) -> Vec<ConceptCard> {
        self.search_top(query, self.cfg.k)
    }

    /// [`search`](Self::search) with a per-call result cap instead of the
    /// configured `cfg.k` — the HTTP layer maps its `k=` query parameter
    /// here so one shared engine serves callers with different page
    /// sizes. `search_top(q, cfg.k)` is exactly `search(q)`.
    pub fn search_top(&self, query: &str, k: usize) -> Vec<ConceptCard> {
        let words: FxHashSet<&str> = query.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let mut clock = StageClock::started(self.metrics.is_some());
        let (mut candidates, postings) =
            self.index.concept_candidates_counted(words.iter().copied());
        let qvec = self.query_vector(query);
        let ann = self.ann_candidates(qvec.as_deref(), k);
        if !ann.is_empty() {
            let lexical: FxHashSet<ConceptId> = candidates.iter().copied().collect();
            candidates.extend(ann.iter().filter(|cid| !lexical.contains(cid)));
        }
        if let Some(m) = &self.metrics {
            m.requests.inc();
            m.postings_hit.add(postings as u64);
            m.ann_candidates.add(ann.len() as u64);
            m.candidates_examined.add(candidates.len() as u64);
            clock.lap(&m.retrieve_ns);
        }
        let mut top = TopK::new(k);
        for cid in candidates {
            let score = self.fused_score(cid, &words, qvec.as_deref());
            if score > 0.0 {
                top.push(cid, score);
            }
        }
        if let Some(m) = &self.metrics {
            clock.lap(&m.score_ns);
        }
        let cards = top
            .into_sorted_vec()
            .into_iter()
            .map(|(cid, score)| self.card(cid, score))
            .collect();
        if let Some(m) = &self.metrics {
            clock.lap(&m.rank_ns);
        }
        cards
    }

    /// Reference ranking: score every concept in the net with the **full
    /// fused score** (lexical + vector bonus when a bundle is attached),
    /// sort, truncate. This is the exact oracle the hybrid
    /// [`search`](Self::search) is recall-gated against: the only way the
    /// two can disagree is the HNSW index failing to propose a concept
    /// whose fused score makes the top `k`.
    pub fn search_scan(&self, query: &str) -> Vec<ConceptCard> {
        let words: FxHashSet<&str> = query.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let qvec = self.query_vector(query);
        let mut scored: Vec<(ConceptId, f64)> = self
            .kg
            .concept_ids()
            .map(|cid| (cid, self.fused_score(cid, &words, qvec.as_deref())))
            .filter(|&(_, s)| s > 0.0)
            .collect();
        scored.sort_by(alicoco::rank::by_score_then_id);
        scored.truncate(self.cfg.k);
        scored
            .into_iter()
            .map(|(cid, score)| self.card(cid, score))
            .collect()
    }

    /// Search many queries, sharding the batch across scoped worker
    /// threads. Results are returned in query order and are identical to
    /// calling [`search`](Self::search) per query; `cfg.batch_workers`
    /// caps the thread count (a batch of one, or one worker, degenerates
    /// to the sequential path).
    pub fn search_batch(&self, queries: &[&str]) -> Vec<Vec<ConceptCard>> {
        let mut clock = StageClock::started(self.metrics.is_some());
        let workers = self.cfg.batch_workers.max(1).min(queries.len().max(1));
        let results = if workers <= 1 {
            queries.iter().map(|q| self.search(q)).collect()
        } else {
            let mut results: Vec<Vec<ConceptCard>> = Vec::new();
            results.resize_with(queries.len(), Vec::new);
            let chunk = queries.len().div_ceil(workers);
            std::thread::scope(|s| {
                for (qs, out) in queries.chunks(chunk).zip(results.chunks_mut(chunk)) {
                    s.spawn(move || {
                        for (q, slot) in qs.iter().zip(out.iter_mut()) {
                            *slot = self.search(q);
                        }
                    });
                }
            });
            results
        };
        if let Some(m) = &self.metrics {
            m.batch_queries.add(queries.len() as u64);
            clock.lap(&m.batch_ns);
        }
        results
    }

    /// Render the card for a concept.
    pub fn card(&self, cid: ConceptId, score: f64) -> ConceptCard {
        let c = self.kg.concept(cid);
        let interpretation = c
            .primitives
            .iter()
            .map(|&p| {
                let prim = self.kg.primitive(p);
                let domain = self.kg.class(self.kg.class_domain(prim.class)).name.clone();
                (domain, prim.name.clone())
            })
            .collect();
        let mut items = self.kg.items_for_concept(cid);
        items.truncate(self.cfg.items_per_card);
        ConceptCard {
            concept: cid,
            name: c.name.clone(),
            interpretation,
            items,
            score,
        }
    }

    /// Keyword fallback (the pre-AliCoCo experience): items ranked by how
    /// many distinct query words their title contains (ties broken by
    /// ascending item id), retrieved from the title-token postings.
    pub fn keyword_items(&self, query: &str, k: usize) -> Vec<ItemId> {
        let words: FxHashSet<&str> = query.split_whitespace().collect();
        let mut seen: FxHashSet<ItemId> = FxHashSet::default();
        let mut top = TopK::new(k);
        for &w in &words {
            for &i in self.index.items_by_token(w) {
                if seen.insert(i) {
                    let title = &self.kg.item(i).title;
                    let hits = words
                        .iter()
                        .filter(|w| title.iter().any(|t| t == *w))
                        .count() as f64;
                    top.push(i, hits);
                }
            }
        }
        top.into_sorted_vec().into_iter().map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kg() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let loc = kg.add_class("Location", Some(root));
        let event = kg.add_class("Event", Some(root));
        let outdoor = kg.add_primitive("outdoor", loc);
        let bbq = kg.add_primitive("barbecue", event);
        let c1 = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c1, outdoor);
        kg.link_concept_primitive(c1, bbq);
        let c2 = kg.add_concept("indoor yoga");
        let _ = c2;
        let grill = kg.add_item(&["brand".into(), "grill".into()]);
        let charcoal = kg.add_item(&["best".into(), "charcoal".into()]);
        kg.link_concept_item(c1, grill, 0.9);
        kg.link_concept_item(c1, charcoal, 0.8);
        kg
    }

    #[test]
    fn order_free_query_triggers_concept_card() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let cards = s.search("barbecue outdoor");
        assert_eq!(cards.len(), 1);
        let card = &cards[0];
        assert_eq!(card.name, "outdoor barbecue");
        assert_eq!(card.items.len(), 2);
        assert!(card.items[0].1 >= card.items[1].1);
        assert!(card
            .interpretation
            .contains(&("Event".to_string(), "barbecue".to_string())));
    }

    #[test]
    fn search_top_with_cfg_k_is_search() {
        let kg = sample_kg();
        let cfg = SearchConfig::default();
        let s = SemanticSearch::new(&kg, cfg);
        assert_eq!(
            s.search("barbecue outdoor"),
            s.search_top("barbecue outdoor", cfg.k)
        );
        // A tighter per-call cap truncates without reordering.
        let one = s.search_top("barbecue outdoor", 1);
        assert!(one.len() <= 1);
        assert_eq!(one, s.search("barbecue outdoor")[..one.len()].to_vec());
    }

    #[test]
    fn partial_match_still_scores() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let cards = s.search("barbecue");
        assert_eq!(cards.len(), 1);
        assert!(cards[0].score > 0.0);
    }

    #[test]
    fn unrelated_query_returns_nothing() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        assert!(s.search("quantum physics").is_empty());
        assert!(s.search("").is_empty());
    }

    #[test]
    fn indexed_search_matches_reference_scan() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        for q in [
            "barbecue outdoor",
            "barbecue",
            "indoor",
            "outdoor grill",
            "nothing here",
        ] {
            assert_eq!(s.search(q), s.search_scan(q), "query {q:?}");
        }
    }

    #[test]
    fn keyword_fallback_matches_titles() {
        let kg = sample_kg();
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let items = s.keyword_items("charcoal", 10);
        assert_eq!(items.len(), 1);
        assert_eq!(
            kg.item(items[0]).title,
            vec!["best".to_string(), "charcoal".to_string()]
        );
    }

    /// Regression: items covering more query words must outrank earlier-id
    /// items that merely contain one word (the old implementation returned
    /// the first `k` matches in arena order).
    #[test]
    fn keyword_items_rank_by_title_overlap_not_arena_order() {
        let mut kg = sample_kg();
        // Earlier-arena items each match one word; this one matches both.
        let both = kg.add_item(&["best".into(), "grill".into()]);
        let items =
            SemanticSearch::new(&kg, SearchConfig::default()).keyword_items("best grill", 2);
        assert_eq!(items[0], both, "two-word match must rank first");
        assert_eq!(items.len(), 2);
        // Tie on one word each: lower item id wins.
        let tied =
            SemanticSearch::new(&kg, SearchConfig::default()).keyword_items("brand charcoal", 10);
        assert_eq!(tied.len(), 2);
        assert!(
            tied[0] < tied[1],
            "equal overlap breaks ties by ascending id"
        );
    }

    #[test]
    fn k_truncates_results() {
        let mut kg = sample_kg();
        for i in 0..10 {
            kg.add_concept(&format!("barbecue idea {i}"));
        }
        let s = SemanticSearch::new(
            &kg,
            SearchConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(s.search("barbecue").len(), 2);
    }

    #[test]
    fn instrumented_search_returns_identical_cards() {
        let kg = sample_kg();
        let plain = SemanticSearch::new(&kg, SearchConfig::default());
        let reg = Registry::new();
        let wired = SemanticSearch::with_metrics(&kg, SearchConfig::default(), &reg);
        for q in ["barbecue outdoor", "indoor", "", "nothing here"] {
            assert_eq!(wired.search(q), plain.search(q), "query {q:?}");
        }
        // Empty queries short-circuit before the request counter.
        assert_eq!(reg.counter("search.requests").get(), 3);
        assert!(reg.counter("search.candidates_examined").get() > 0);
        assert!(reg.counter("search.postings_hit").get() > 0);
        assert_eq!(reg.histogram("search.retrieve_ns").count(), 3);
        assert_eq!(reg.histogram("search.score_ns").count(), 3);
        assert_eq!(reg.histogram("search.rank_ns").count(), 3);
        let batch = wired.search_batch(&["barbecue", "outdoor"]);
        assert_eq!(batch.len(), 2);
        assert_eq!(reg.counter("search.batch_queries").get(), 2);
        assert_eq!(reg.histogram("search.batch_ns").count(), 1);
        assert_eq!(reg.counter("search.requests").get(), 5);
    }

    #[test]
    fn engine_from_snapshot_postings_matches_fresh_build() {
        let kg = sample_kg();
        let mut bytes = Vec::new();
        alicoco::snapshot::binary::save(&kg, &mut bytes).unwrap();
        let view = alicoco::snapshot::binary::SnapshotView::open(&bytes).unwrap();
        let index = QueryIndex::from_postings(
            &kg,
            view.concept_postings()
                .unwrap()
                .into_iter()
                .map(|(t, ids)| (t.to_string(), ids)),
            view.item_postings()
                .unwrap()
                .into_iter()
                .map(|(t, ids)| (t.to_string(), ids)),
        );
        let fast = SemanticSearch::from_index(&kg, index, SearchConfig::default());
        let fresh = SemanticSearch::new(&kg, SearchConfig::default());
        for q in ["barbecue outdoor", "indoor", "grill", "nothing here", ""] {
            assert_eq!(fast.search(q), fresh.search(q), "query {q:?}");
        }
        assert_eq!(
            fast.keyword_items("charcoal grill", 5),
            fresh.keyword_items("charcoal grill", 5)
        );
    }

    /// The tentpole acceptance property: a query with **zero** token
    /// overlap with every concept surface and primitive still resolves to
    /// the right concept through the vector half of the hybrid union.
    #[test]
    fn lexical_miss_query_reaches_concept_via_vectors() {
        let mut kg = sample_kg();
        // Stock "indoor yoga" so the training corpus separates the two
        // concepts' item vocabularies.
        let c2 = kg.concept_by_name("indoor yoga").unwrap();
        let mat = kg.add_item(&["yoga".into(), "mat".into()]);
        kg.link_concept_item(c2, mat, 0.7);
        let bundle = Arc::new(alicoco_ann::build_default_bundle(&kg));
        // "charcoal" appears only in an item title: the lexical engine is
        // structurally blind to it…
        let lexical = SemanticSearch::new(&kg, SearchConfig::default());
        assert!(lexical.search("charcoal").is_empty());
        // …but the fused union proposes the barbecue concept.
        let s = SemanticSearch::new(&kg, SearchConfig::default()).with_ann(Arc::clone(&bundle));
        let cards = s.search("charcoal");
        assert!(!cards.is_empty(), "fused path must propose a concept");
        assert_eq!(cards[0].name, "outdoor barbecue");
        // The hybrid ranking agrees with the fused exact-scan oracle.
        for q in ["charcoal", "barbecue outdoor", "yoga", "nothing here", ""] {
            assert_eq!(s.search(q), s.search_scan(q), "query {q:?}");
        }
        // Vector evidence is additive: a lexically-matching query keeps
        // its card, and the fused score is at least the lexical one.
        let fused = s.search("barbecue outdoor");
        let plain = lexical.search("barbecue outdoor");
        assert_eq!(fused[0].name, plain[0].name);
        assert!(fused[0].score >= plain[0].score);
    }

    #[test]
    fn hybrid_search_counts_ann_candidates() {
        let kg = sample_kg();
        let bundle = Arc::new(alicoco_ann::build_default_bundle(&kg));
        let reg = Registry::new();
        let wired =
            SemanticSearch::with_metrics(&kg, SearchConfig::default(), &reg).with_ann(bundle);
        let _ = wired.search("charcoal");
        assert!(reg.counter("search.ann_candidates").get() > 0);
        // Unknown-token queries embed to nothing and propose nothing.
        let before = reg.counter("search.ann_candidates").get();
        assert!(wired.search("zzz unknown").is_empty());
        assert_eq!(reg.counter("search.ann_candidates").get(), before);
    }

    #[test]
    fn batch_search_equals_per_query_search() {
        let mut kg = sample_kg();
        for i in 0..20 {
            kg.add_concept(&format!("barbecue idea {i}"));
        }
        let s = SemanticSearch::new(
            &kg,
            SearchConfig {
                batch_workers: 3,
                ..Default::default()
            },
        );
        let queries: Vec<&str> = vec![
            "barbecue",
            "indoor yoga",
            "",
            "idea 7",
            "outdoor",
            "grill",
            "barbecue idea",
        ];
        let batched = s.search_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(&batched) {
            assert_eq!(got, &s.search(q), "query {q:?}");
        }
    }
}
