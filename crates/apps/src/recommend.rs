//! Cognitive recommendation (§8.2): trigger concept cards from a user's
//! browsing history — recommending *needs*, not lookalike items — plus
//! human-readable recommendation reasons (§8.2.2).

use std::sync::Arc;

use alicoco::query::QueryIndex;
use alicoco::rank::TopK;
use alicoco::{AliCoCo, ConceptId, ItemId, PrimitiveId};
use alicoco_ann::AnnBundle;
use alicoco_nn::util::{FxHashMap, FxHashSet};
use alicoco_obs::{Counter, Histogram, Registry, SpanTimer};

/// Pre-registered `recommend.*` metric handles.
#[derive(Clone, Debug)]
struct RecommendMetrics {
    requests: Arc<Counter>,
    history_items: Arc<Counter>,
    candidates: Arc<Counter>,
    total_ns: Arc<Histogram>,
}

impl RecommendMetrics {
    fn register(reg: &Registry) -> Self {
        RecommendMetrics {
            requests: reg.counter("recommend.requests"),
            history_items: reg.counter("recommend.history_items"),
            candidates: reg.counter("recommend.candidates"),
            total_ns: reg.histogram("recommend.total_ns"),
        }
    }
}

/// A scored recommendation with its explanation.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// Concept.
    pub concept: ConceptId,
    /// Concept surface form.
    pub name: String,
    /// Affinity.
    pub affinity: f64,
    /// Reason.
    pub reason: Reason,
    /// Items to display on the card, excluding already-viewed ones.
    pub items: Vec<(ItemId, f32)>,
}

/// Why this concept was recommended (§8.2.2: concepts are "perfect
/// recommendation reasons" because they are clear and brief).
#[derive(Clone, Debug, PartialEq)]
pub enum Reason {
    /// A viewed item is directly linked to the concept.
    ViewedItem {
        /// The viewed item that triggered the card.
        item: ItemId,
    },
    /// Viewed items share interpreting primitives with the concept.
    SharedNeed {
        /// The shared primitive concepts.
        primitives: Vec<PrimitiveId>,
    },
    /// A viewed item's embedding is close to the concept's — the hybrid
    /// trigger for concepts sharing neither links nor primitives with the
    /// history.
    SimilarIntent {
        /// The viewed item whose vector triggered the card.
        item: ItemId,
    },
}

impl Reason {
    /// Render the reason as user-facing text.
    pub fn text(&self, kg: &AliCoCo, concept: &str) -> String {
        match self {
            Reason::ViewedItem { item } => format!(
                "because you viewed \"{}\" — everything for {}",
                kg.item(*item).title.join(" "),
                concept
            ),
            Reason::SharedNeed { primitives } => {
                let names: Vec<&str> = primitives
                    .iter()
                    .map(|&p| kg.primitive(p).name.as_str())
                    .collect();
                format!(
                    "matches your interest in {} — {}",
                    names.join(", "),
                    concept
                )
            }
            Reason::SimilarIntent { item } => format!(
                "close to what \"{}\" is for — {}",
                kg.item(*item).title.join(" "),
                concept
            ),
        }
    }
}

/// Tuning for the recommender.
#[derive(Clone, Copy, Debug)]
pub struct RecommendConfig {
    /// Max recommendations returned.
    pub k: usize,
    /// Items per card.
    pub items_per_card: usize,
    /// Vote weight of a direct item->concept link.
    pub direct_weight: f64,
    /// Vote weight of each shared primitive.
    pub shared_weight: f64,
    /// Vote weight of the cosine between a viewed item's embedding and a
    /// concept's, when an [`AnnBundle`] is attached. Deliberately below
    /// `shared_weight`·votes so vector evidence refines but never outranks
    /// graph evidence.
    pub vector_weight: f64,
    /// Nearest concepts proposed per history item by the HNSW index.
    pub ann_k: usize,
    /// `ef` beam width for the HNSW search.
    pub ann_ef: usize,
}

impl Default for RecommendConfig {
    fn default() -> Self {
        RecommendConfig {
            k: 3,
            items_per_card: 8,
            direct_weight: 1.0,
            shared_weight: 0.2,
            vector_weight: 0.1,
            ann_k: 8,
            ann_ef: 64,
        }
    }
}

/// The user-needs recommender.
pub struct CognitiveRecommender<'kg> {
    kg: &'kg AliCoCo,
    cfg: RecommendConfig,
    /// Shared serving index (primitive → concepts postings).
    index: QueryIndex<'kg>,
    ann: Option<Arc<AnnBundle>>,
    metrics: Option<RecommendMetrics>,
}

impl<'kg> CognitiveRecommender<'kg> {
    /// Create a new instance.
    pub fn new(kg: &'kg AliCoCo, cfg: RecommendConfig) -> Self {
        CognitiveRecommender {
            kg,
            cfg,
            index: QueryIndex::build(kg),
            ann: None,
            metrics: None,
        }
    }

    /// Attach a retrieval bundle: each viewed item's stored embedding
    /// votes (weight `cfg.vector_weight · max(0, cos)`) for its nearest
    /// concepts in the HNSW index, so a history can trigger a concept it
    /// shares neither item links nor primitives with.
    #[must_use]
    pub fn with_ann(mut self, bundle: Arc<AnnBundle>) -> Self {
        self.ann = Some(bundle);
        self
    }

    /// Create an instance recording `recommend.*` metrics into `metrics`.
    pub fn with_metrics(kg: &'kg AliCoCo, cfg: RecommendConfig, metrics: &Registry) -> Self {
        let mut engine = Self::new(kg, cfg);
        engine.metrics = Some(RecommendMetrics::register(metrics));
        engine
    }

    /// Recommend concept cards for a browsing history.
    pub fn recommend(&self, history: &[ItemId]) -> Vec<Recommendation> {
        let _span = self.metrics.as_ref().map(|m| {
            m.requests.inc();
            m.history_items.add(history.len() as u64);
            SpanTimer::new(Arc::clone(&m.total_ns))
        });
        let mut votes: FxHashMap<ConceptId, f64> = FxHashMap::default();
        let mut direct_trigger: FxHashMap<ConceptId, ItemId> = FxHashMap::default();
        let mut shared: FxHashMap<ConceptId, FxHashSet<PrimitiveId>> = FxHashMap::default();
        let mut vector_trigger: FxHashMap<ConceptId, ItemId> = FxHashMap::default();
        for &item in history {
            for &cid in self.kg.concepts_for_item(item) {
                *votes.entry(cid).or_insert(0.0) += self.cfg.direct_weight;
                direct_trigger.entry(cid).or_insert(item);
            }
            for &p in &self.kg.item(item).primitives {
                for &cid in self.index.concepts_by_primitive(p) {
                    *votes.entry(cid).or_insert(0.0) += self.cfg.shared_weight;
                    shared.entry(cid).or_default().insert(p);
                }
            }
            if let Some(bundle) = &self.ann {
                // The viewed item's stored embedding votes for its nearest
                // concepts; zero-or-negative cosines never vote, so a
                // zero-vector item (all-unknown title) adds nothing.
                let qv = bundle.items().vector(item.index() as u32);
                for (id, cos) in bundle.concepts().knn(qv, self.cfg.ann_k, self.cfg.ann_ef) {
                    if cos > 0.0 {
                        let cid = ConceptId::from_index(id as usize);
                        *votes.entry(cid).or_insert(0.0) += self.cfg.vector_weight * f64::from(cos);
                        vector_trigger.entry(cid).or_insert(item);
                    }
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.candidates.add(votes.len() as u64);
        }
        let mut top = TopK::new(self.cfg.k);
        for (cid, v) in votes {
            top.push(cid, v);
        }
        let ranked = top.into_sorted_vec();
        let viewed: FxHashSet<ItemId> = history.iter().copied().collect();
        ranked
            .into_iter()
            .map(|(cid, affinity)| {
                // Reason preference mirrors evidence strength: a direct
                // link beats shared primitives beats vector proximity.
                let reason = match (direct_trigger.get(&cid), shared.get(&cid)) {
                    (Some(&item), _) => Reason::ViewedItem { item },
                    (None, Some(s)) if !s.is_empty() => {
                        let mut prims: Vec<PrimitiveId> = s.iter().copied().collect();
                        prims.sort();
                        Reason::SharedNeed { primitives: prims }
                    }
                    _ => match vector_trigger.get(&cid) {
                        Some(&item) => Reason::SimilarIntent { item },
                        None => Reason::SharedNeed {
                            primitives: Vec::new(),
                        },
                    },
                };
                // Novelty (§8.2.1): never re-show viewed items.
                let items: Vec<(ItemId, f32)> = self
                    .kg
                    .items_for_concept(cid)
                    .into_iter()
                    .filter(|(i, _)| !viewed.contains(i))
                    .take(self.cfg.items_per_card)
                    .collect();
                Recommendation {
                    concept: cid,
                    name: self.kg.concept(cid).name.clone(),
                    affinity,
                    reason,
                    items,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kg() -> (AliCoCo, ItemId, ItemId, ConceptId) {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let event = kg.add_class("Event", Some(root));
        let bbq = kg.add_primitive("barbecue", event);
        let c = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c, bbq);
        let grill = kg.add_item(&["grill".into()]);
        let charcoal = kg.add_item(&["charcoal".into()]);
        kg.link_concept_item(c, grill, 0.9);
        kg.link_concept_item(c, charcoal, 0.8);
        kg.link_item_primitive(grill, bbq);
        (kg, grill, charcoal, c)
    }

    #[test]
    fn direct_link_triggers_recommendation_with_reason() {
        let (kg, grill, charcoal, c) = sample_kg();
        let rec = CognitiveRecommender::new(&kg, RecommendConfig::default());
        let out = rec.recommend(&[grill]);
        assert_eq!(out.len(), 1);
        let r = &out[0];
        assert_eq!(r.concept, c);
        assert_eq!(r.reason, Reason::ViewedItem { item: grill });
        let text = r.reason.text(&kg, &r.name);
        assert!(text.contains("grill"), "reason text: {text}");
        // Novelty: viewed grill is excluded; charcoal remains.
        assert_eq!(r.items.len(), 1);
        assert_eq!(r.items[0].0, charcoal);
    }

    #[test]
    fn shared_primitive_triggers_indirect_recommendation() {
        let (mut kg, _, _, c) = sample_kg();
        // A new item that shares the "barbecue" primitive but is not linked
        // to the concept.
        let bbq = kg.primitives_by_name("barbecue")[0];
        let skewers = kg.add_item(&["skewers".into()]);
        kg.link_item_primitive(skewers, bbq);
        let rec = CognitiveRecommender::new(&kg, RecommendConfig::default());
        let out = rec.recommend(&[skewers]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].concept, c);
        match &out[0].reason {
            Reason::SharedNeed { primitives } => assert_eq!(primitives, &vec![bbq]),
            other => panic!("expected shared-need reason, got {other:?}"),
        }
    }

    #[test]
    fn empty_history_yields_nothing() {
        let (kg, _, _, _) = sample_kg();
        let rec = CognitiveRecommender::new(&kg, RecommendConfig::default());
        assert!(rec.recommend(&[]).is_empty());
    }

    #[test]
    fn instrumented_recommendations_match_and_count() {
        let (kg, grill, _, c) = sample_kg();
        let reg = Registry::new();
        let rec = CognitiveRecommender::with_metrics(&kg, RecommendConfig::default(), &reg);
        let out = rec.recommend(&[grill]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].concept, c);
        let _ = rec.recommend(&[]);
        assert_eq!(reg.counter("recommend.requests").get(), 2);
        assert_eq!(reg.counter("recommend.history_items").get(), 1);
        assert_eq!(reg.counter("recommend.candidates").get(), 1);
        assert_eq!(reg.histogram("recommend.total_ns").count(), 2);
    }

    /// Hybrid retrieval: an item with no concept link and no primitive can
    /// still trigger the concept its embedding sits next to, with a
    /// vector-proximity reason — and graph evidence still outranks it.
    #[test]
    fn vector_proximity_triggers_unlinked_concepts() {
        let (mut kg, grill, _, c) = sample_kg();
        // "skewers" shares barbecue vocabulary through its concept-item
        // corpus co-occurrence only: no link, no primitive.
        let skewers = kg.add_item(&["charcoal".into(), "skewers".into()]);
        let bundle = Arc::new(alicoco_ann::build_default_bundle(&kg));
        let plain = CognitiveRecommender::new(&kg, RecommendConfig::default());
        assert!(
            plain.recommend(&[skewers]).is_empty(),
            "graph-only recommender has no evidence for this history"
        );
        let rec = CognitiveRecommender::new(&kg, RecommendConfig::default()).with_ann(bundle);
        let out = rec.recommend(&[skewers]);
        assert!(!out.is_empty(), "vector votes must surface a concept");
        assert_eq!(out[0].concept, c);
        assert_eq!(out[0].reason, Reason::SimilarIntent { item: skewers });
        let text = out[0].reason.text(&kg, &out[0].name);
        assert!(text.contains("skewers"), "reason text: {text}");
        // A direct link still outranks pure vector proximity.
        let fused = rec.recommend(&[grill]);
        assert_eq!(fused[0].concept, c);
        assert_eq!(fused[0].reason, Reason::ViewedItem { item: grill });
    }

    #[test]
    fn direct_links_outrank_shared_primitives() {
        let (mut kg, grill, _, c_direct) = sample_kg();
        let event = kg.class_by_name("Event").unwrap();
        let picnic = kg.add_primitive("picnic", event);
        let c_indirect = kg.add_concept("park picnic");
        kg.link_concept_primitive(c_indirect, picnic);
        kg.link_item_primitive(grill, picnic);
        let rec = CognitiveRecommender::new(&kg, RecommendConfig::default());
        let out = rec.recommend(&[grill]);
        assert!(out.len() >= 2);
        assert_eq!(out[0].concept, c_direct, "direct link must rank first");
    }
}
