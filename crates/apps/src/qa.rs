//! Scenario question answering (§8.1.2): "What should I prepare for hosting
//! next week's barbecue?" — parse the question, locate the scenario
//! concept, and answer with a shopping checklist.

use std::sync::Arc;

use alicoco::query::QueryIndex;
use alicoco::rank::{by_score_then_id, TopK};
use alicoco::{AliCoCo, ConceptId, ItemId};
use alicoco_ann::AnnBundle;
use alicoco_nn::util::FxHashSet;
use alicoco_obs::{Counter, Histogram, Registry, SpanTimer};

/// Weight of the vector cosine in the fused resolution score, and how
/// many nearest concepts the HNSW index proposes per question. QA keeps
/// fixed fusion knobs (unlike [`crate::SearchConfig`]) because question
/// resolution wants one concept, not a tunable ranking.
const VECTOR_WEIGHT: f64 = 0.5;
const ANN_K: usize = 8;
const ANN_EF: usize = 64;

/// Pre-registered `qa.*` metric handles.
#[derive(Clone, Debug)]
struct QaMetrics {
    requests: Arc<Counter>,
    answered: Arc<Counter>,
    sibling_fallbacks: Arc<Counter>,
    candidates: Arc<Counter>,
    answer_ns: Arc<Histogram>,
}

impl QaMetrics {
    fn register(reg: &Registry) -> Self {
        QaMetrics {
            requests: reg.counter("qa.requests"),
            answered: reg.counter("qa.answered"),
            sibling_fallbacks: reg.counter("qa.sibling_fallbacks"),
            candidates: reg.counter("qa.candidates"),
            answer_ns: reg.histogram("qa.answer_ns"),
        }
    }
}

/// A structured answer to a scenario question.
#[derive(Clone, Debug)]
pub struct Answer {
    /// The scenario concept the question resolved to.
    pub concept: ConceptId,
    /// Concept name.
    pub concept_name: String,
    /// Checklist: distinct leading items grouped by their first primitive
    /// property when available.
    pub checklist: Vec<ChecklistEntry>,
}

#[derive(Clone, Debug)]
/// Checklist entry.
pub struct ChecklistEntry {
    /// Item.
    pub item: ItemId,
    /// Title.
    pub title: String,
    /// Confidence.
    pub confidence: f32,
}

/// Question words stripped before resolution.
const QUESTION_WORDS: &[&str] = &[
    "what", "should", "i", "prepare", "for", "hosting", "next", "week", "weeks", "s", "a", "an",
    "the", "do", "need", "my", "to", "buy", "how", "get", "ready",
];

/// The QA engine: strips question scaffolding, resolves remaining content
/// words against the concept layer (via primitives, so "barbecue" resolves
/// even when the concept is "outdoor barbecue"). Resolution scores only
/// the concepts on the content words' posting lists — the full concept
/// layer is never scanned.
pub struct ScenarioQa<'kg> {
    kg: &'kg AliCoCo,
    index: QueryIndex<'kg>,
    ann: Option<Arc<AnnBundle>>,
    metrics: Option<QaMetrics>,
}

impl<'kg> ScenarioQa<'kg> {
    /// Create a new instance (builds the serving index once).
    pub fn new(kg: &'kg AliCoCo) -> Self {
        ScenarioQa {
            kg,
            index: QueryIndex::build(kg),
            ann: None,
            metrics: None,
        }
    }

    /// Attach a retrieval bundle: content words are embedded and the HNSW
    /// nearest concepts join the lexical candidates with a
    /// `VECTOR_WEIGHT · max(0, cos)` fused bonus, so a question whose
    /// content words never appear in a concept surface ("what do I need
    /// for charcoal?") can still resolve.
    #[must_use]
    pub fn with_ann(mut self, bundle: Arc<AnnBundle>) -> Self {
        self.ann = Some(bundle);
        self
    }

    /// Create an instance recording `qa.*` metrics into `metrics`.
    pub fn with_metrics(kg: &'kg AliCoCo, metrics: &Registry) -> Self {
        let mut engine = Self::new(kg);
        engine.metrics = Some(QaMetrics::register(metrics));
        engine
    }

    /// Extract content words from a natural question.
    pub fn content_words(question: &str) -> Vec<String> {
        question
            .to_lowercase()
            .split(|c: char| !c.is_alphanumeric() && c != '-')
            .filter(|w| !w.is_empty() && !QUESTION_WORDS.contains(w))
            .map(String::from)
            .collect()
    }

    /// Score one concept against the question's content words.
    fn match_score(&self, cid: ConceptId, word_set: &FxHashSet<&str>) -> f64 {
        let c = self.kg.concept(cid);
        let surf: FxHashSet<&str> = c.name.split(' ').collect();
        let overlap = word_set.intersection(&surf).count() as f64;
        let prim = c
            .primitives
            .iter()
            .filter(|&&p| word_set.contains(self.kg.primitive(p).name.as_str()))
            .count() as f64;
        overlap + 0.5 * prim
    }

    /// Answer a scenario question, if a concept resolves.
    ///
    /// Resolution prefers concepts with suggested items; when the best match
    /// has none, the checklist falls back to items of *sibling* concepts —
    /// concepts sharing an interpreting primitive — so "barbecue" can still
    /// be answered through "garden barbecue".
    pub fn answer(&self, question: &str) -> Option<Answer> {
        let span = self
            .metrics
            .as_ref()
            .map(|m| SpanTimer::new(Arc::clone(&m.answer_ns)));
        let out = self.answer_impl(question);
        if let Some(m) = &self.metrics {
            m.requests.inc();
            if out.is_some() {
                m.answered.inc();
            }
        }
        if let Some(s) = span {
            s.stop();
        }
        out
    }

    fn answer_impl(&self, question: &str) -> Option<Answer> {
        let words = Self::content_words(question);
        if words.is_empty() {
            return None;
        }
        let word_set: FxHashSet<&str> = words.iter().map(String::as_str).collect();
        // Only concepts on the content words' posting lists can have a
        // positive lexical score; with a bundle attached the HNSW nearest
        // concepts of the embedded question join the candidate union and
        // everything is scored lexical + vector. Keep the single best
        // (ties resolve to the lowest concept id, as a full in-order scan
        // would).
        let mut best = TopK::new(1);
        let mut candidates = self.index.concept_candidates(word_set.iter().copied());
        let qvec = self
            .ann
            .as_ref()
            .and_then(|b| b.embed_query(&words.join(" ")));
        if let (Some(bundle), Some(q)) = (&self.ann, &qvec) {
            let lexical: FxHashSet<ConceptId> = candidates.iter().copied().collect();
            candidates.extend(
                bundle
                    .concepts()
                    .knn(q, ANN_K, ANN_EF)
                    .into_iter()
                    .map(|(id, _)| ConceptId::from_index(id as usize))
                    .filter(|cid| !lexical.contains(cid)),
            );
        }
        if let Some(m) = &self.metrics {
            m.candidates.add(candidates.len() as u64);
        }
        for cid in candidates {
            let mut base = self.match_score(cid, &word_set);
            if let (Some(bundle), Some(q)) = (&self.ann, &qvec) {
                let cos = bundle.concepts().sim_to(cid.index() as u32, q);
                base += VECTOR_WEIGHT * f64::from(cos.max(0.0));
            }
            if base > 0.0 {
                // Stocked concepts get a bonus so they win ties.
                let stocked = !self.kg.concept(cid).items.is_empty();
                best.push(cid, base + if stocked { 0.25 } else { 0.0 });
            }
        }
        let (cid, _) = best.into_sorted_vec().into_iter().next()?;
        let mut items = self.kg.items_for_concept(cid);
        if items.is_empty() {
            if let Some(m) = &self.metrics {
                m.sibling_fallbacks.inc();
            }
            // Sibling fallback: union of items from concepts sharing a
            // primitive, discounted. Restrict to the primitives that matched
            // the question ("barbecue"), not incidental ones ("beach") —
            // otherwise a beach-barbecue question borrows swimsuits.
            let mut prims: FxHashSet<_> = self
                .kg
                .concept(cid)
                .primitives
                .iter()
                .copied()
                .filter(|&p| word_set.contains(self.kg.primitive(p).name.as_str()))
                .collect();
            if prims.is_empty() {
                prims = self.kg.concept(cid).primitives.iter().copied().collect();
            }
            // Sibling concepts come straight off the primitive postings
            // (sorted so the borrowing order is concept-id deterministic).
            let mut siblings: Vec<ConceptId> = {
                let mut set: FxHashSet<ConceptId> = FxHashSet::default();
                for &p in &prims {
                    set.extend(self.index.concepts_by_primitive(p).iter().copied());
                }
                set.remove(&cid);
                set.into_iter().collect()
            };
            siblings.sort();
            let mut seen: FxHashSet<ItemId> = FxHashSet::default();
            for other in siblings {
                for (item, w) in self.kg.items_for_concept(other) {
                    if seen.insert(item) {
                        items.push((item, w * 0.8));
                    }
                }
            }
            items.sort_by(by_score_then_id);
        }
        if items.is_empty() {
            return None;
        }
        let checklist = items
            .into_iter()
            .take(8)
            .map(|(item, confidence)| ChecklistEntry {
                item,
                title: self.kg.item(item).title.join(" "),
                confidence,
            })
            .collect();
        Some(Answer {
            concept: cid,
            concept_name: self.kg.concept(cid).name.clone(),
            checklist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kg() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let event = kg.add_class("Event", Some(root));
        let bbq = kg.add_primitive("barbecue", event);
        let c = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c, bbq);
        let grill = kg.add_item(&["pro".into(), "grill".into()]);
        let charcoal = kg.add_item(&["oak".into(), "charcoal".into()]);
        kg.link_concept_item(c, grill, 0.95);
        kg.link_concept_item(c, charcoal, 0.85);
        kg
    }

    #[test]
    fn content_word_extraction_strips_scaffolding() {
        let words =
            ScenarioQa::content_words("What should I prepare for hosting next week's barbecue?");
        assert_eq!(words, vec!["barbecue".to_string()]);
    }

    #[test]
    fn barbecue_question_yields_checklist() {
        let kg = sample_kg();
        let qa = ScenarioQa::new(&kg);
        let a = qa
            .answer("What should I prepare for hosting next week's barbecue?")
            .expect("question resolves");
        assert_eq!(a.concept_name, "outdoor barbecue");
        assert_eq!(a.checklist.len(), 2);
        assert!(a.checklist[0].confidence >= a.checklist[1].confidence);
        assert!(a.checklist.iter().any(|e| e.title.contains("grill")));
        assert!(a.checklist.iter().any(|e| e.title.contains("charcoal")));
    }

    #[test]
    fn unresolvable_question_returns_none() {
        let kg = sample_kg();
        let qa = ScenarioQa::new(&kg);
        assert!(qa
            .answer("what should i buy for quantum entanglement?")
            .is_none());
        assert!(qa.answer("what should i do?").is_none());
    }

    #[test]
    fn concepts_without_items_or_siblings_cannot_answer() {
        let mut kg = sample_kg();
        kg.add_concept("indoor knitting");
        let qa = ScenarioQa::new(&kg);
        assert!(qa.answer("what do i need for indoor knitting?").is_none());
    }

    #[test]
    fn instrumented_answers_match_and_count() {
        let mut kg = sample_kg();
        let bbq = kg.primitives_by_name("barbecue")[0];
        let beach = kg.add_concept("beach barbecue");
        kg.link_concept_primitive(beach, bbq);
        let reg = Registry::new();
        let plain = ScenarioQa::new(&kg);
        let wired = ScenarioQa::with_metrics(&kg, &reg);
        for q in [
            "what should i prepare for a barbecue?",
            "what do i need for a beach barbecue?",
            "what should i buy for quantum entanglement?",
        ] {
            assert_eq!(
                wired.answer(q).map(|a| a.concept),
                plain.answer(q).map(|a| a.concept),
                "question {q:?}"
            );
        }
        assert_eq!(reg.counter("qa.requests").get(), 3);
        assert_eq!(reg.counter("qa.answered").get(), 2);
        assert_eq!(reg.counter("qa.sibling_fallbacks").get(), 1);
        assert!(reg.counter("qa.candidates").get() >= 2);
        assert_eq!(reg.histogram("qa.answer_ns").count(), 3);
    }

    /// Hybrid retrieval: a question whose only content word appears in an
    /// item title (never in a concept surface or primitive) resolves
    /// through the vector candidates.
    #[test]
    fn lexical_miss_question_resolves_via_vectors() {
        let kg = sample_kg();
        let plain = ScenarioQa::new(&kg);
        assert!(
            plain.answer("what do i need for charcoal?").is_none(),
            "lexical-only QA is blind to item-title tokens"
        );
        let bundle = Arc::new(alicoco_ann::build_default_bundle(&kg));
        let qa = ScenarioQa::new(&kg).with_ann(bundle);
        let a = qa
            .answer("what do i need for charcoal?")
            .expect("vector candidates must resolve the question");
        assert_eq!(a.concept_name, "outdoor barbecue");
        assert!(!a.checklist.is_empty());
        // Lexically resolvable questions still resolve identically.
        assert_eq!(
            qa.answer("what should i prepare for a barbecue?")
                .map(|a| a.concept),
            plain
                .answer("what should i prepare for a barbecue?")
                .map(|a| a.concept)
        );
        // Unknown vocabulary still fails closed.
        assert!(qa
            .answer("what should i buy for quantum entanglement?")
            .is_none());
    }

    #[test]
    fn unstocked_concept_borrows_sibling_items() {
        let mut kg = sample_kg();
        // "beach barbecue" shares the "barbecue" primitive with the stocked
        // "outdoor barbecue" but has no items of its own.
        let bbq = kg.primitives_by_name("barbecue")[0];
        let beach = kg.add_concept("beach barbecue");
        kg.link_concept_primitive(beach, bbq);
        let qa = ScenarioQa::new(&kg);
        let a = qa
            .answer("what do i need for a beach barbecue?")
            .expect("resolves");
        assert_eq!(a.concept_name, "beach barbecue");
        assert!(
            !a.checklist.is_empty(),
            "sibling fallback produced no items"
        );
        assert!(a.checklist.iter().any(|e| e.title.contains("grill")));
    }
}
