//! Property tests for the serving layer: on random worlds, the inverted-
//! index retrieval path must return exactly the cards (content and order)
//! of the reference full-scan ranking, and sharded batch search must be
//! indistinguishable from searching each query on its own.

use alicoco::AliCoCo;
use alicoco_apps::search::{SearchConfig, SemanticSearch};
use proptest::prelude::*;

/// Shared vocabulary so random queries actually collide with random
/// concept surfaces, primitive names, and item titles.
const VOCAB: &[&str] = &[
    "outdoor", "barbecue", "summer", "beach", "grill", "party", "yoga", "indoor", "camping",
    "picnic", "winter", "gift",
];

fn word(i: u8) -> &'static str {
    VOCAB[i as usize % VOCAB.len()]
}

#[derive(Clone, Debug)]
struct WorldSpec {
    primitives: Vec<(u8, u8)>,        // (vocab word, class index)
    concepts: Vec<(u8, u8)>,          // two-word surface
    items: Vec<(u8, u8)>,             // two-word title
    concept_prims: Vec<(u8, u8)>,     // concept idx, primitive idx
    concept_items: Vec<(u8, u8, u8)>, // concept idx, item idx, weight 0..=100
}

fn world_strategy() -> impl Strategy<Value = WorldSpec> {
    (
        prop::collection::vec((0u8..12, 0u8..3), 1..10),
        prop::collection::vec((0u8..12, 0u8..12), 1..14),
        prop::collection::vec((0u8..12, 0u8..12), 1..10),
        prop::collection::vec((0u8..14, 0u8..10), 0..16),
        prop::collection::vec((0u8..14, 0u8..10, 0u8..=100), 0..16),
    )
        .prop_map(
            |(primitives, concepts, items, concept_prims, concept_items)| WorldSpec {
                primitives,
                concepts,
                items,
                concept_prims,
                concept_items,
            },
        )
}

fn build_world(spec: &WorldSpec) -> AliCoCo {
    let mut kg = AliCoCo::new();
    let root = kg.add_class("concept", None);
    let classes: Vec<_> = (0..3)
        .map(|i| kg.add_class(&format!("domain{i}"), Some(root)))
        .collect();
    let prims: Vec<_> = spec
        .primitives
        .iter()
        .map(|&(w, c)| kg.add_primitive(word(w), classes[c as usize % classes.len()]))
        .collect();
    let concepts: Vec<_> = spec
        .concepts
        .iter()
        .map(|&(a, b)| kg.add_concept(&format!("{} {}", word(a), word(b))))
        .collect();
    let items: Vec<_> = spec
        .items
        .iter()
        .map(|&(a, b)| kg.add_item(&[word(a).to_string(), word(b).to_string()]))
        .collect();
    for &(c, p) in &spec.concept_prims {
        kg.link_concept_primitive(
            concepts[c as usize % concepts.len()],
            prims[p as usize % prims.len()],
        );
    }
    for &(c, i, w) in &spec.concept_items {
        kg.link_concept_item(
            concepts[c as usize % concepts.len()],
            items[i as usize % items.len()],
            w as f32 / 100.0,
        );
    }
    kg
}

fn query_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..16, 1..4) // indices past VOCAB give miss words
}

fn render_query(q: &[u8]) -> String {
    q.iter()
        .map(|&i| {
            if (i as usize) < VOCAB.len() {
                VOCAB[i as usize]
            } else {
                "unrelated"
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole equivalence: posting-list retrieval + bounded heap
    /// returns exactly the cards of the full-scan sort, in order.
    #[test]
    fn indexed_search_equals_reference_scan(
        spec in world_strategy(),
        query in query_strategy(),
        k in 1usize..6,
    ) {
        let kg = build_world(&spec);
        let s = SemanticSearch::new(&kg, SearchConfig { k, ..Default::default() });
        let q = render_query(&query);
        prop_assert_eq!(s.search(&q), s.search_scan(&q), "query {:?}", q);
    }

    /// Sharded batch search returns per-query results in query order.
    #[test]
    fn batch_search_equals_sequential(
        spec in world_strategy(),
        queries in prop::collection::vec(query_strategy(), 1..10),
        workers in 1usize..5,
    ) {
        let kg = build_world(&spec);
        let s = SemanticSearch::new(
            &kg,
            SearchConfig { batch_workers: workers, ..Default::default() },
        );
        let rendered: Vec<String> = queries.iter().map(|q| render_query(q)).collect();
        let refs: Vec<&str> = rendered.iter().map(String::as_str).collect();
        let batched = s.search_batch(&refs);
        prop_assert_eq!(batched.len(), refs.len());
        for (q, got) in refs.iter().zip(batched) {
            prop_assert_eq!(got, s.search(q), "query {:?}", q);
        }
    }

    /// The keyword fallback ranks by distinct-word title overlap with the
    /// id tie-break, never exceeds k, and only returns real matches.
    #[test]
    fn keyword_items_ranking_invariants(
        spec in world_strategy(),
        query in query_strategy(),
        k in 1usize..6,
    ) {
        let kg = build_world(&spec);
        let s = SemanticSearch::new(&kg, SearchConfig::default());
        let q = render_query(&query);
        let hits = s.keyword_items(&q, k);
        prop_assert!(hits.len() <= k);
        let words: std::collections::HashSet<&str> = q.split_whitespace().collect();
        let overlap = |i: alicoco::ItemId| {
            words.iter().filter(|w| kg.item(i).title.iter().any(|t| t == *w)).count()
        };
        for w in hits.windows(2) {
            let (a, b) = (overlap(w[0]), overlap(w[1]));
            prop_assert!(a > b || (a == b && w[0] < w[1]), "not ranked: {:?}", hits);
        }
        for &i in &hits {
            prop_assert!(overlap(i) > 0);
        }
    }
}
