//! Property and concurrency tests for the observability primitives:
//!
//! - histogram quantile estimates are always bounded by the true recorded
//!   min/max and monotone in the quantile,
//! - histogram merge is associative (shard-local histograms can be folded
//!   in any order),
//! - counters and histograms lose no increments under `std::thread::scope`
//!   hammering.

use alicoco_obs::{Counter, Histogram, HistogramSnapshot, Registry};
use proptest::prelude::*;

fn filled(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Merge order for the associativity property: ((a ⊕ b) ⊕ c) vs
/// (a ⊕ (b ⊕ c)), both materialized into fresh histograms.
fn merge_left(a: &[u64], b: &[u64], c: &[u64]) -> HistogramSnapshot {
    let ab = filled(a);
    ab.merge_from(&filled(b));
    ab.merge_from(&filled(c));
    ab.snapshot()
}

fn merge_right(a: &[u64], b: &[u64], c: &[u64]) -> HistogramSnapshot {
    let bc = filled(b);
    bc.merge_from(&filled(c));
    let out = filled(a);
    out.merge_from(&bc);
    out.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantile estimates can never escape the recorded value range, at
    /// any quantile, for any value distribution (including extreme
    /// magnitudes that exercise the open-ended top bucket).
    #[test]
    fn quantiles_bounded_by_true_extrema(
        values in prop::collection::vec(0u64..u64::MAX, 1..200),
        shift in 0u32..40,
    ) {
        // Shift spreads mass across very different bucket ranges.
        let values: Vec<u64> = values.iter().map(|v| v >> shift).collect();
        let h = filled(&values);
        let lo = *values.iter().min().expect("non-empty");
        let hi = *values.iter().max().expect("non-empty");
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = h.quantile(q);
            prop_assert!(
                (lo..=hi).contains(&est),
                "q={} estimate {} outside true range [{}, {}]", q, est, lo, hi
            );
        }
        prop_assert_eq!(h.quantile(0.0), lo, "q=0 is the exact min");
        prop_assert_eq!(h.quantile(1.0), hi, "q=1 is the exact max");
    }

    /// Larger quantiles never produce smaller estimates.
    #[test]
    fn quantiles_monotone_in_q(
        values in prop::collection::vec(0u64..u64::MAX, 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 2..12),
    ) {
        let h = filled(&values);
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut prev = h.quantile(qs[0]);
        for &q in &qs[1..] {
            let cur = h.quantile(q);
            prop_assert!(
                cur >= prev,
                "quantile({}) = {} < earlier estimate {}", q, cur, prev
            );
            prev = cur;
        }
    }

    /// Histogram merge is associative: bucket counts, count, sum, min,
    /// max, and therefore every derived percentile agree regardless of
    /// fold order.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1u64 << 48, 0..60),
        b in prop::collection::vec(0u64..1u64 << 48, 0..60),
        c in prop::collection::vec(0u64..1u64 << 48, 0..60),
    ) {
        prop_assert_eq!(merge_left(&a, &b, &c), merge_right(&a, &b, &c));
        // Commutes too (same fold algebra).
        prop_assert_eq!(merge_left(&a, &b, &c), merge_left(&c, &a, &b));
    }

    /// A merged histogram reports the same aggregate state as one
    /// histogram fed every value directly.
    #[test]
    fn merge_equals_single_histogram(
        a in prop::collection::vec(0u64..1u64 << 48, 0..60),
        b in prop::collection::vec(0u64..1u64 << 48, 0..60),
    ) {
        let merged = filled(&a);
        merged.merge_from(&filled(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged.snapshot(), filled(&all).snapshot());
    }
}

/// Counters shared across scoped threads lose no increments: the final
/// total is exactly `threads * increments`, not "close to".
#[test]
fn counter_hammer_loses_no_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let reg = Registry::new();
    let counter = reg.counter("hammer.hits");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c: std::sync::Arc<Counter> = reg.counter("hammer.hits");
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}

/// Histograms are hammer-safe too: total recorded count and sum are exact
/// under concurrent recording from scoped threads.
#[test]
fn histogram_hammer_loses_no_records() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = Registry::new();
    let hist = reg.histogram("hammer.lat_ns");
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = reg.histogram("hammer.lat_ns");
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    // Sum of 0..THREADS*PER_THREAD.
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.sum(), n * (n - 1) / 2);
    assert_eq!(hist.min(), Some(0));
    assert_eq!(hist.max(), Some(n - 1));
}

/// Registration races resolve to one shared metric per name: concurrent
/// get-or-register from many threads never splits a counter.
#[test]
fn concurrent_registration_converges() {
    const THREADS: usize = 8;
    let reg = Registry::new();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let reg = reg.clone();
            s.spawn(move || {
                for name in ["race.a", "race.b", "race.c"] {
                    reg.counter(name).inc();
                    reg.histogram(name).record(1);
                }
            });
        }
    });
    for name in ["race.a", "race.b", "race.c"] {
        assert_eq!(reg.counter(name).get(), THREADS as u64, "{name}");
        assert_eq!(reg.histogram(name).count(), THREADS as u64, "{name}");
    }
}
