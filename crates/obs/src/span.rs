//! RAII wall-clock guards: whole-operation spans and multi-stage laps.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;

/// A raw elapsed-time reader for call sites that aggregate timings
/// themselves (summing per-batch phases, stamping a struct field) rather
/// than recording into a histogram. This is the workspace's only
/// sanctioned way to touch the wall clock outside `crates/obs` — the
/// AL009 lint flags direct `Instant::now()` reads elsewhere, so timing
/// stays out of deterministic paths and has one owner.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    last: Instant,
}

impl Stopwatch {
    /// Start (or restart) the watch now.
    pub fn start() -> Self {
        Stopwatch {
            last: Instant::now(),
        }
    }

    /// Time since start (or the last [`lap_ns`](Stopwatch::lap_ns)).
    pub fn elapsed(&self) -> Duration {
        self.last.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        self.last.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// How much of `budget` is left, saturating at zero. Deadline loops
    /// (graceful-shutdown drains, bounded waits) use this instead of
    /// subtracting `Duration`s themselves — `budget - elapsed` panics on
    /// underflow, and panic-free crates cannot afford that edge.
    pub fn remaining(&self, budget: Duration) -> Duration {
        budget.saturating_sub(self.elapsed())
    }

    /// Nanoseconds since the previous lap (or start), restarting the lap —
    /// one clock read covers both the end of one phase and the start of
    /// the next.
    pub fn lap_ns(&mut self) -> u64 {
        let now = Instant::now();
        let ns = now
            .duration_since(self.last)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        self.last = now;
        ns
    }
}

/// Times a span of work and records elapsed nanoseconds into a histogram
/// when dropped (or explicitly [`stop`](SpanTimer::stop)ped). Early
/// returns and `?` propagation still record — the guard owns the clock.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Option<Arc<Histogram>>,
    start: Instant,
}

impl SpanTimer {
    /// Start timing into `hist`.
    pub fn new(hist: Arc<Histogram>) -> Self {
        SpanTimer {
            hist: Some(hist),
            start: Instant::now(),
        }
    }

    /// Stop now, record, and return the elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(h) = self.hist.take() {
            h.record(ns);
        }
        ns
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record_duration(self.start.elapsed());
        }
    }
}

/// A lap clock for splitting one request into stages without re-reading
/// the wall clock between histogram and caller: each [`lap`] records the
/// time since the previous lap (or construction) and restarts.
///
/// Built disabled, it never touches the clock — the hot path pays one
/// branch, which is what keeps the instrumented/uninstrumented overhead
/// gate honest.
#[derive(Debug)]
pub struct StageClock {
    last: Option<Instant>,
}

impl StageClock {
    /// Start the clock; `enabled = false` makes every lap a no-op.
    pub fn started(enabled: bool) -> Self {
        StageClock {
            last: enabled.then(Instant::now),
        }
    }

    /// Record the stage ending now into `hist` and restart the lap.
    #[inline]
    pub fn lap(&mut self, hist: &Histogram) {
        if let Some(prev) = self.last {
            let now = Instant::now();
            hist.record_duration(now.duration_since(prev));
            self.last = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_laps_are_monotone_and_resetting() {
        let mut sw = Stopwatch::start();
        std::hint::black_box(1 + 1);
        let before_laps = sw.elapsed_ns();
        let a = sw.lap_ns();
        let b = sw.lap_ns();
        // The first lap covers at least the span measured before it, and
        // each lap restarts the watch, so the second starts near zero.
        assert!(a >= before_laps);
        assert!(b <= a + sw.elapsed_ns() + 1_000_000_000);
        assert!(sw.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn remaining_saturates_at_zero() {
        let sw = Stopwatch::start();
        assert!(sw.remaining(Duration::from_secs(3600)) > Duration::ZERO);
        assert_eq!(sw.remaining(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn span_records_once_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _span = SpanTimer::new(Arc::clone(&h));
            std::hint::black_box(1 + 1);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_records_exactly_once() {
        let h = Arc::new(Histogram::new());
        let span = SpanTimer::new(Arc::clone(&h));
        let ns = span.stop();
        assert_eq!(
            h.count(),
            1,
            "stop consumed the guard; drop must not re-record"
        );
        assert_eq!(h.sum(), ns, "stop must record exactly the returned span");
    }

    #[test]
    fn disabled_stage_clock_records_nothing() {
        let h = Histogram::new();
        let mut clock = StageClock::started(false);
        clock.lap(&h);
        clock.lap(&h);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn enabled_stage_clock_records_every_lap() {
        let h = Histogram::new();
        let mut clock = StageClock::started(true);
        clock.lap(&h);
        clock.lap(&h);
        clock.lap(&h);
        assert_eq!(h.count(), 3);
    }
}
