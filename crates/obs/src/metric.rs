//! Scalar metrics: lock-free counters and gauges.
//!
//! Both are plain atomics recorded with `Ordering::Relaxed`: metric
//! arithmetic needs atomicity (no lost increments), not ordering with
//! respect to other memory — readers only ever see a slightly stale
//! value, never a torn one.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// Cloned handles (via `Arc` from [`crate::Registry::counter`]) all point
/// at the same cell; increments from any thread are never lost.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Create a counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-written level: queue depth, loss of the latest epoch, a
/// configuration knob surfaced for dashboards. Stored as `f64` bits in an
/// atomic word, so writes are torn-free without a lock.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Create a gauge reading `0.0`.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add a delta (compare-and-swap loop; gauges are not hot-path).
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        g.add(-0.5);
        assert_eq!(g.get(), 1.0);
        g.set(-7.25);
        assert_eq!(g.get(), -7.25);
    }
}
