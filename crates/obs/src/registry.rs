//! The shared metric table and its deterministic JSON export.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};
use crate::span::SpanTimer;

/// Take a read lock, recovering the guard if a panicking writer poisoned
/// it (metric state is monotone counters — a poisoned map is still valid).
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Take a write lock, recovering from poisoning (see [`read_lock`]).
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// A thread-safe name → metric table. `Clone` is a cheap `Arc` copy, so
/// one registry threads through an entire process: serving engines,
/// training loops, and the CLI all record into the same export.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short-lived lock
/// and should happen once at construction; the returned `Arc` handles are
/// lock-free to record into. Names are dot-separated lowercase paths with
/// a unit suffix on duration histograms (`search.retrieve_ns`) — see
/// DESIGN.md §8 for the scheme.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        {
            let map = read_lock(&self.inner.counters);
            if let Some(c) = map.get(name) {
                return Arc::clone(c);
            }
        }
        let mut map = write_lock(&self.inner.counters);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        {
            let map = read_lock(&self.inner.gauges);
            if let Some(g) = map.get(name) {
                return Arc::clone(g);
            }
        }
        let mut map = write_lock(&self.inner.gauges);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        {
            let map = read_lock(&self.inner.histograms);
            if let Some(h) = map.get(name) {
                return Arc::clone(h);
            }
        }
        let mut map = write_lock(&self.inner.histograms);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Start an RAII span recording into histogram `name` on drop.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::new(self.histogram(name))
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        read_lock(&self.inner.counters).is_empty()
            && read_lock(&self.inner.gauges).is_empty()
            && read_lock(&self.inner.histograms).is_empty()
    }

    /// Export every metric as a pretty-printed JSON object.
    ///
    /// Deterministic by construction: metrics live in `BTreeMap`s, so keys
    /// stream out sorted and two exports of the same state are
    /// byte-identical — no hash-order dependence anywhere (the AL005
    /// property the snapshot format also guarantees).
    pub fn export_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        {
            let map = read_lock(&self.inner.counters);
            for (i, (name, c)) in map.iter().enumerate() {
                push_sep(&mut out, i);
                out.push_str("    ");
                push_json_string(&mut out, name);
                out.push_str(&format!(": {}", c.get()));
            }
            close_obj(&mut out, map.is_empty());
        }
        out.push_str(",\n  \"gauges\": {");
        {
            let map = read_lock(&self.inner.gauges);
            for (i, (name, g)) in map.iter().enumerate() {
                push_sep(&mut out, i);
                out.push_str("    ");
                push_json_string(&mut out, name);
                out.push_str(&format!(": {}", json_f64(g.get())));
            }
            close_obj(&mut out, map.is_empty());
        }
        out.push_str(",\n  \"histograms\": {");
        {
            let map = read_lock(&self.inner.histograms);
            for (i, (name, h)) in map.iter().enumerate() {
                push_sep(&mut out, i);
                let s = h.snapshot();
                out.push_str("    ");
                push_json_string(&mut out, name);
                out.push_str(&format!(
                    ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                    s.count,
                    s.sum,
                    s.min.map_or("null".to_string(), |v| v.to_string()),
                    s.max.map_or("null".to_string(), |v| v.to_string()),
                    json_f64(s.mean),
                    s.p50,
                    s.p90,
                    s.p99,
                ));
                for (bi, b) in s.buckets.iter().enumerate() {
                    if bi > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("[{}, {}, {}]", b.lower, b.upper, b.count));
                }
                out.push_str("]}");
            }
            close_obj(&mut out, map.is_empty());
        }
        out.push_str("\n}\n");
        out
    }
}

fn push_sep(out: &mut String, i: usize) {
    out.push_str(if i == 0 { "\n" } else { ",\n" });
}

fn close_obj(out: &mut String, empty: bool) {
    out.push_str(if empty { "}" } else { "\n  }" });
}

/// Render an `f64` as a JSON number (JSON has no NaN/Inf; clamp to null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Ensure a decimal point so the value re-parses as floating point.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Append a JSON string literal (quotes, `\`, and control bytes escaped).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
        // Clones share the table.
        let reg2 = reg.clone();
        assert_eq!(reg2.counter("x.hits").get(), 2);
    }

    #[test]
    fn export_is_sorted_and_deterministic() {
        let reg = Registry::new();
        reg.counter("z.last").add(3);
        reg.counter("a.first").add(1);
        reg.gauge("m.level").set(0.5);
        reg.histogram("h.lat_ns").record(1000);
        let a = reg.export_json();
        let b = reg.export_json();
        assert_eq!(a, b, "repeated export must be byte-identical");
        let first = a.find("a.first").expect("a.first exported");
        let last = a.find("z.last").expect("z.last exported");
        assert!(first < last, "counter keys must stream sorted");
        assert!(a.contains("\"p50\": 1000"));
        assert!(a.contains("\"m.level\": 0.5"));
    }

    #[test]
    fn empty_registry_exports_valid_skeleton() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        let json = reg.export_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
