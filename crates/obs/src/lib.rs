#![warn(missing_docs)]
//! # alicoco-obs
//!
//! Dependency-free observability for the AliCoCo serving and training
//! stack. The paper's system (§8) lives or dies by online latency, and a
//! reproduction that aims at production scale needs the same feedback
//! loop: every hot path records into this crate, the `suite` binary can
//! export a metrics snapshot per run, and CI gates on the numbers.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost.** Recording is a handful of `Relaxed` atomic
//!    operations — no locks, no allocation, no formatting. Handles
//!    ([`Counter`], [`Gauge`], [`Histogram`]) are pre-registered
//!    `Arc`s so the name lookup happens once at construction, never per
//!    request. The serving bench enforces an end-to-end overhead budget
//!    (instrumented search within 5% of uninstrumented).
//! 2. **Thread safety.** Every metric is shared freely across
//!    `std::thread::scope` workers; increments are never lost (hammer
//!    tests assert exact totals).
//! 3. **Determinism.** [`Registry::export_json`] iterates `BTreeMap`s, so
//!    two exports of the same state are byte-identical and key order never
//!    depends on hash iteration (the same AL005 discipline the snapshot
//!    format follows).
//!
//! The pieces:
//!
//! - [`Counter`] — monotone `u64` event count,
//! - [`Gauge`] — last-written `f64` level,
//! - [`Histogram`] — fixed log2-bucket value distribution with
//!   min/max-bounded p50/p90/p99 estimation and lossless merge,
//! - [`Registry`] — `Arc`-shared, thread-safe name → metric table with
//!   deterministic sorted JSON export,
//! - [`SpanTimer`] / [`StageClock`] — RAII wall-clock guards that record
//!   elapsed nanoseconds into a histogram,
//! - [`Stopwatch`] — raw elapsed-ns reader for call sites that aggregate
//!   timings themselves; the only sanctioned clock access outside this
//!   crate (enforced by the AL009 lint).

mod histogram;
mod metric;
mod registry;
mod span;

pub use histogram::{Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge};
pub use registry::Registry;
pub use span::{SpanTimer, StageClock, Stopwatch};
