//! Fixed log2-bucket histogram with bounded quantile estimation.
//!
//! Values (latencies in nanoseconds, sizes in bytes — any `u64`) land in
//! one of 64 power-of-two buckets: bucket 0 holds exactly `0`, bucket
//! `i` (1 ≤ i < 63) holds `[2^(i-1), 2^i - 1]`, and bucket 63 holds
//! everything from `2^62` up. Log2 bucketing gives a constant ~±50%
//! resolution across twelve decades, which is the right trade for latency
//! distributions: p99 of a 40µs path and p99 of a 2s path read off the
//! same 64 words with no reconfiguration.
//!
//! Quantile estimates interpolate inside the covering bucket and are then
//! clamped to the *exact* recorded `[min, max]`, so an estimate can never
//! leave the observed range — the property the proptests pin down — and
//! estimates are monotone in the quantile.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; index = position of the value's highest set bit.
const N_BUCKETS: usize = 64;

/// A lock-free value distribution. All recording is `Relaxed` atomics;
/// snapshots taken while writers are active are internally consistent per
/// field (counts never tear) but may straddle concurrent records — the
/// standard contract for online metrics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Exact smallest recorded value; `u64::MAX` while empty.
    min: AtomicU64,
    /// Exact largest recorded value; `0` while empty.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: `0` for zero, otherwise the index of
    /// the highest set bit (clamped into the last bucket).
    #[inline]
    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(N_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of a bucket.
    fn bucket_lower(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Inclusive upper bound of a bucket.
    fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            i if i == N_BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a wall-clock duration in nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact smallest recorded value, `None` while empty.
    pub fn min(&self) -> Option<u64> {
        let m = self.min.load(Ordering::Relaxed);
        (self.count() > 0).then_some(m)
    }

    /// Exact largest recorded value, `None` while empty.
    pub fn max(&self) -> Option<u64> {
        let m = self.max.load(Ordering::Relaxed);
        (self.count() > 0).then_some(m)
    }

    /// Mean of recorded values; `0.0` while empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`q` clamped into `[0, 1]`); `0` while
    /// empty.
    ///
    /// The estimate interpolates linearly inside the bucket containing the
    /// target rank and is clamped to the recorded `[min, max]`, so it is
    /// always bounded by true extrema and monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, ceil so q=1.0 is the max.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        // The boundary order statistics are tracked exactly — return them
        // rather than a bucket interpolation (q=0 is the min, q=1 the max).
        if rank == 1 {
            return self.min.load(Ordering::Relaxed);
        }
        if rank == count {
            return self.max.load(Ordering::Relaxed);
        }
        let mut seen = 0u64;
        let mut estimate = self.max.load(Ordering::Relaxed);
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                let lo = Self::bucket_lower(i) as f64;
                let hi = Self::bucket_upper(i) as f64;
                let frac = (rank - seen) as f64 / in_bucket as f64;
                estimate = (lo + (hi - lo) * frac) as u64;
                break;
            }
            seen += in_bucket;
        }
        estimate.clamp(
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// Fold another histogram's contents into this one. Pure bucket/count
    /// addition plus min/max folds, so merging is associative and
    /// commutative (up to `sum` wrap-around) — shard-local histograms can
    /// be combined in any order.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for export or comparison.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bucket)| {
                let n = bucket.load(Ordering::Relaxed);
                (n > 0).then_some(BucketCount {
                    lower: Self::bucket_lower(i),
                    upper: Self::bucket_upper(i),
                    count: n,
                })
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

/// One occupied bucket of a [`HistogramSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive lower bound of the bucket.
    pub lower: u64,
    /// Inclusive upper bound of the bucket.
    pub upper: u64,
    /// Values recorded into the bucket.
    pub count: u64,
}

/// A point-in-time copy of a [`Histogram`]: summary statistics, the three
/// standard latency percentiles, and the occupied buckets.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Exact recorded minimum, `None` while empty.
    pub min: Option<u64>,
    /// Exact recorded maximum, `None` while empty.
    pub max: Option<u64>,
    /// Mean of recorded values.
    pub mean: f64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Occupied buckets, ascending.
    pub buckets: Vec<BucketCount>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_domain() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), N_BUCKETS - 1);
        // Every bucket's bounds contain exactly the values indexed into it.
        for i in 0..N_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
            if i < N_BUCKETS - 1 {
                assert_eq!(Histogram::bucket_index(Histogram::bucket_upper(i)), i);
            }
        }
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(1234);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1234, "q={q}");
        }
        assert_eq!(h.min(), Some(1234));
        assert_eq!(h.max(), Some(1234));
        assert_eq!(h.mean(), 1234.0);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        // 100 values 1..=100: p50 must land near 50, p99 near the top.
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((32..=80).contains(&p50), "p50 estimate {p50} out of band");
        let p99 = h.quantile(0.99);
        assert!(p99 >= h.quantile(0.5));
        assert!(p99 <= 100);
        assert_eq!(h.quantile(1.0), 100, "q=1 clamps to the exact max");
        assert_eq!(h.quantile(0.0), 1, "q=0 clamps to the exact min");
    }

    #[test]
    fn merge_accumulates_both_sides() {
        let (a, b) = (Histogram::new(), Histogram::new());
        a.record(10);
        a.record(20);
        b.record(5_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 5_030);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(5_000));
        // Merging an empty histogram is a no-op.
        let before = a.snapshot();
        a.merge_from(&Histogram::new());
        assert_eq!(a.snapshot(), before);
    }
}
