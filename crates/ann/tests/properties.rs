//! Property tests for the HNSW index: on arbitrary vector sets, `knn`
//! must always return results in the `rank` total order with no
//! duplicates and never panic; builds must be byte-deterministic under
//! a fixed seed; and recall against the exact-scan oracle must stay
//! high on small worlds where `ef` covers the graph.

use alicoco_ann::hnsw::{Hnsw, HnswConfig};
use alicoco_nn::rank;
use alicoco_nn::util::FxHashSet;
use proptest::prelude::*;

/// A strategy over small vector sets: up to 80 vectors with a shared
/// effective dimension in 1..=12, with components covering negatives,
/// zeros and repeated (tie-producing) values. Vectors are generated at
/// width 12 and the index's `fit` truncates to `dim`, so mismatched
/// input lengths are exercised for free.
fn world_strategy() -> impl Strategy<Value = (usize, Vec<Vec<i8>>)> {
    (
        1usize..=12,
        prop::collection::vec(prop::collection::vec(any::<i8>(), 12..=12), 0..80),
    )
}

fn build(dim: usize, raw: &[Vec<i8>], seed: u64) -> Hnsw {
    let cfg = HnswConfig {
        m: 4,
        ef_construction: 24,
        seed,
    };
    let mut h = Hnsw::new(dim, cfg);
    for v in raw {
        let v: Vec<f32> = v.iter().map(|&x| f32::from(x)).collect();
        h.insert(&v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn knn_is_rank_ordered_with_no_duplicates(
        world in world_strategy(),
        query in prop::collection::vec(any::<i8>(), 0..16),
        k in 0usize..20,
        ef in 1usize..40,
    ) {
        let (dim, raw) = world;
        let h = build(dim, &raw, 7);
        let q: Vec<f32> = query.iter().map(|&x| f32::from(x)).collect();
        let out = h.knn(&q, k, ef);
        prop_assert!(out.len() <= k);
        if !raw.is_empty() && k > 0 {
            prop_assert!(!out.is_empty());
        }
        let mut sorted = out.clone();
        sorted.sort_by(rank::by_score_then_id);
        prop_assert_eq!(&out, &sorted, "results must follow the ranking order");
        let ids: FxHashSet<u32> = out.iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(ids.len(), out.len(), "no duplicate ids");
        for &(id, _) in &out {
            prop_assert!((id as usize) < raw.len(), "id in range");
        }
    }

    #[test]
    fn builds_are_byte_deterministic_per_seed(
        world in world_strategy(),
        seed in 0u64..1000,
    ) {
        let (dim, raw) = world;
        let (a, b) = (build(dim, &raw, seed), build(dim, &raw, seed));
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.encode(&mut ba);
        b.encode(&mut bb);
        prop_assert_eq!(ba, bb, "same seed + inserts must encode identically");
    }

    #[test]
    fn decode_inverts_encode(world in world_strategy()) {
        let (dim, raw) = world;
        let h = build(dim, &raw, 3);
        let mut bytes = Vec::new();
        h.encode(&mut bytes);
        let back = Hnsw::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &h);
        let mut again = Vec::new();
        back.encode(&mut again);
        prop_assert_eq!(bytes, again);
    }

    #[test]
    fn recall_matches_the_scan_oracle_on_small_worlds(
        world in world_strategy(),
        qsel in 0usize..80,
    ) {
        let (dim, raw) = world;
        // With ef at the world size the frontier covers everything the
        // graph keeps reachable; adversarial tie-heavy worlds can still
        // prune a few edges, so the property is a recall floor against
        // the exact oracle, not equality (the in-module unit tests pin
        // exactness on well-separated data).
        prop_assume!(raw.len() >= 2);
        let h = build(dim, &raw, 11);
        let q: Vec<f32> = raw[qsel % raw.len()].iter().map(|&x| f32::from(x)).collect();
        let approx = h.knn(&q, 10, raw.len().max(16));
        let exact = h.scan_knn(&q, 10);
        prop_assert!(approx.len() <= exact.len());
        // Elementwise score coverage: the i-th approximate answer must be
        // at least as similar as the i-th exact answer (ties between
        // equally-similar ids don't count as misses — degenerate low-dim
        // worlds collapse to a handful of distinct directions).
        let covered = exact
            .iter()
            .enumerate()
            .filter(|&(i, &(_, es))| {
                approx
                    .get(i)
                    .is_some_and(|&(_, s)| s.total_cmp(&es) != std::cmp::Ordering::Less)
            })
            .count();
        let recall = covered as f64 / exact.len() as f64;
        prop_assert!(
            recall >= 0.7,
            "score-recall@10 {} below floor (n={}, dim={})", recall, raw.len(), dim
        );
        // And whatever is returned must carry its true stored score.
        for &(id, s) in &approx {
            let expected = h.scan_knn(&q, raw.len()).iter()
                .find(|&&(eid, _)| eid == id)
                .map(|&(_, es)| es);
            prop_assert_eq!(Some(s), expected, "score of id {} must be exact", id);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Any outcome is fine except a panic; most inputs are typed errors.
        let _ = Hnsw::decode(&bytes);
    }
}
