//! Recall calibration harness for the serving-bench workload. Ignored by
//! default: run `cargo test --release -p alicoco-ann -- --ignored
//! --nocapture` to re-measure recall@10 across query-time `ef` (and a
//! doubled `ef_construction`) on the same 100k clustered synthetic set
//! the serving bench gates on, when retuning `ANN_EF` or the index
//! defaults against the `serving.ann.recall_at_10 >= 0.9` floor.

use alicoco_ann::{Hnsw, HnswConfig};

const N: usize = 100_000;
const DIM: usize = 32;
const CLUSTERS: usize = 256;
const QUERIES: usize = 512;
const K: usize = 10;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f32 {
    (splitmix(state) >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
}

fn clustered_vectors(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed;
    let anchors: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| unit(&mut state)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let anchor = &anchors[i % clusters];
            anchor.iter().map(|a| a + 0.3 * unit(&mut state)).collect()
        })
        .collect()
}

fn recall_at_k(index: &Hnsw, queries: &[Vec<f32>], ef: usize) -> f64 {
    let mut sum = 0.0;
    for q in queries {
        let approx = index.knn(q, K, ef);
        let exact = index.scan_knn(q, K);
        let exact_ids: std::collections::BTreeSet<u32> = exact.iter().map(|a| a.0).collect();
        let hits = approx.iter().filter(|a| exact_ids.contains(&a.0)).count();
        sum += hits as f64 / K as f64;
    }
    sum / queries.len() as f64
}

#[test]
#[ignore = "calibration harness: minutes of wall clock, prints a table"]
fn recall_vs_ef_on_the_bench_workload() {
    let vectors = clustered_vectors(N, DIM, CLUSTERS, 0x0A11_C0C0);
    for ef_construction in [100usize, 200] {
        let cfg = HnswConfig {
            ef_construction,
            ..HnswConfig::default()
        };
        let t = std::time::Instant::now();
        let mut index = Hnsw::new(DIM, cfg);
        for v in &vectors {
            index.insert(v);
        }
        let build = t.elapsed().as_secs_f64();

        let mut state = 0x00C0_FFEE;
        let queries: Vec<Vec<f32>> = (0..QUERIES)
            .map(|_| {
                let id = (splitmix(&mut state) % N as u64) as u32;
                let mut q: Vec<f32> = index.vector(id).to_vec();
                for x in &mut q {
                    *x += 0.1 * unit(&mut state);
                }
                q
            })
            .collect();

        println!("ef_construction {ef_construction}: build {build:.1} s");
        for ef in [64usize, 96, 128, 192, 256] {
            let t = std::time::Instant::now();
            let recall = recall_at_k(&index, &queries, ef);
            let per_query_ns = t.elapsed().as_nanos() as f64 / QUERIES as f64;
            println!(
                "  ef {ef:>3}: recall@{K} {recall:.4} (~{per_query_ns:.0} ns/query incl. oracle)"
            );
        }
    }
}
