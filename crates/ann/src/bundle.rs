//! The hybrid-retrieval bundle: everything serving needs to answer a
//! vector query — a token → embedding table for query encoding, one
//! [`Hnsw`] index over concept vectors and one over item vectors.
//!
//! The bundle is a *side-car* of the concept net, never part of
//! [`alicoco::AliCoCo`] itself: it serializes to three opaque byte
//! payloads that the `ALCC` snapshot codec carries as extra checksummed
//! sections (`AVOC`/`ACON`/`AITM`) and that [`AnnBundle::decode`]
//! reassembles. A snapshot without the sections is simply a net without
//! vector retrieval — every legacy path is untouched.

use alicoco::snapshot::LoadError;
use alicoco_nn::util::FxHashMap;

use crate::hnsw::{normalize, ByteReader, Hnsw};

/// Encoded-format version of the token-table payload.
const VOCAB_VERSION: u32 = 1;

/// A token → embedding-row table used to embed queries at serve time.
///
/// Rows are stored in a fixed id order (the training vocabulary's), so
/// encoding is deterministic; lookups go through a rebuilt hash index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TokenTable {
    dim: usize,
    tokens: Vec<String>,
    index: FxHashMap<String, u32>,
    /// `tokens.len() × dim`, row-major (raw, un-normalized vectors).
    vectors: Vec<f32>,
}

impl TokenTable {
    /// Build from parallel `(token, vector)` rows. Rows with a vector of
    /// the wrong length are zero-padded/truncated; duplicate tokens keep
    /// the first row.
    pub fn new(dim: usize, rows: impl IntoIterator<Item = (String, Vec<f32>)>) -> Self {
        let dim = dim.max(1);
        let mut t = TokenTable {
            dim,
            tokens: Vec::new(),
            index: FxHashMap::default(),
            vectors: Vec::new(),
        };
        for (token, v) in rows {
            if t.index.contains_key(&token) {
                continue;
            }
            t.index.insert(token.clone(), t.tokens.len() as u32);
            t.tokens.push(token);
            let mut row = vec![0.0f32; dim];
            for (dst, src) in row.iter_mut().zip(&v) {
                *dst = if src.is_finite() { *src } else { 0.0 };
            }
            t.vectors.extend_from_slice(&row);
        }
        t
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The stored vector for `token`, if present.
    pub fn vector(&self, token: &str) -> Option<&[f32]> {
        let row = *self.index.get(token)? as usize;
        self.vectors.get(row * self.dim..(row + 1) * self.dim)
    }

    /// Embed a token sequence as the L2-normalized mean of the known
    /// tokens' vectors, in the given order (so float summation order —
    /// and therefore the result — is deterministic). `None` when no
    /// token is known or the mean collapses to zero.
    pub fn embed<S: AsRef<str>>(&self, tokens: &[S]) -> Option<Vec<f32>> {
        let mut sum = vec![0.0f32; self.dim];
        let mut known = 0usize;
        for t in tokens {
            let Some(v) = self.vector(t.as_ref()) else {
                continue;
            };
            known += 1;
            for (dst, src) in sum.iter_mut().zip(v) {
                *dst += src;
            }
        }
        if known == 0 {
            return None;
        }
        normalize(&mut sum);
        if sum.iter().all(|&x| x == 0.0) {
            return None;
        }
        Some(sum)
    }

    /// Serialize: header, token strings (length-prefixed UTF-8 in row
    /// order), then the vector matrix.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&VOCAB_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.tokens.len() as u32).to_le_bytes());
        for t in &self.tokens {
            out.extend_from_slice(&(t.len() as u32).to_le_bytes());
            out.extend_from_slice(t.as_bytes());
        }
        for &x in &self.vectors {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Decode a table produced by [`encode`](Self::encode), validating
    /// counts, lengths and UTF-8; corrupt input is a typed error.
    pub fn decode(bytes: &[u8]) -> Result<TokenTable, LoadError> {
        let mut r = ByteReader::new(bytes, "ann vocab");
        let version = r.u32()?;
        if version != VOCAB_VERSION {
            return Err(r.corrupt(format!("unsupported ann vocab version {version}")));
        }
        let dim = r.u32()? as usize;
        let n = r.u32()? as usize;
        if dim == 0 || dim > 4096 {
            return Err(r.corrupt("dimension out of range"));
        }
        let mut tokens = Vec::with_capacity(n.min(1 << 20));
        let mut index = FxHashMap::default();
        for i in 0..n {
            let len = r.u32()? as usize;
            if len > 4096 {
                return Err(r.corrupt("token longer than 4096 bytes"));
            }
            let raw = r.bytes(len)?;
            let token = std::str::from_utf8(raw)
                .map_err(|_| LoadError::Corrupt("ann vocab", "token is not UTF-8".into()))?;
            if index.insert(token.to_string(), i as u32).is_some() {
                return Err(r.corrupt(format!("duplicate token {token:?}")));
            }
            tokens.push(token.to_string());
        }
        let need = n
            .checked_mul(dim)
            .and_then(|c| c.checked_mul(4))
            .ok_or_else(|| r.corrupt("vector matrix overflows"))?;
        if r.remaining() != need {
            return Err(r.corrupt("vector matrix length mismatch"));
        }
        let mut vectors = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            let x = r.f32()?;
            if !x.is_finite() {
                return Err(r.corrupt("non-finite vector component"));
            }
            vectors.push(x);
        }
        r.expect_end()?;
        Ok(TokenTable {
            dim,
            tokens,
            index,
            vectors,
        })
    }
}

/// The serving-side hybrid-retrieval bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct AnnBundle {
    tokens: TokenTable,
    concepts: Hnsw,
    items: Hnsw,
}

impl AnnBundle {
    /// Assemble from parts (see `embed::build_bundle` for the trained
    /// construction path).
    pub fn new(tokens: TokenTable, concepts: Hnsw, items: Hnsw) -> Self {
        AnnBundle {
            tokens,
            concepts,
            items,
        }
    }

    /// The query-embedding token table.
    pub fn tokens(&self) -> &TokenTable {
        &self.tokens
    }

    /// The concept-vector index (ids are concept-id ordinals).
    pub fn concepts(&self) -> &Hnsw {
        &self.concepts
    }

    /// The item-vector index (ids are item-id ordinals).
    pub fn items(&self) -> &Hnsw {
        &self.items
    }

    /// Embed a whitespace-tokenized query string. `None` when no query
    /// token is in the table.
    pub fn embed_query(&self, query: &str) -> Option<Vec<f32>> {
        let toks: Vec<&str> = query.split_whitespace().collect();
        self.tokens.embed(&toks)
    }

    /// Serialize into the three section payloads the `ALCC` codec
    /// carries: `(vocab, concept index, item index)`.
    pub fn encode(&self) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let mut vocab = Vec::new();
        self.tokens.encode(&mut vocab);
        let mut concepts = Vec::new();
        self.concepts.encode(&mut concepts);
        let mut items = Vec::new();
        self.items.encode(&mut items);
        (vocab, concepts, items)
    }

    /// Reassemble from the three section payloads. Cross-payload
    /// consistency (matching dimensions) is validated here; per-payload
    /// structure is validated by the part decoders.
    pub fn decode(vocab: &[u8], concepts: &[u8], items: &[u8]) -> Result<AnnBundle, LoadError> {
        let tokens = TokenTable::decode(vocab)?;
        let concepts = Hnsw::decode(concepts)?;
        let items = Hnsw::decode(items)?;
        if concepts.dim() != tokens.dim() || items.dim() != tokens.dim() {
            return Err(LoadError::Corrupt(
                "ann index",
                "index dimension disagrees with the vocab".into(),
            ));
        }
        Ok(AnnBundle {
            tokens,
            concepts,
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::HnswConfig;

    fn sample_table() -> TokenTable {
        TokenTable::new(
            4,
            [
                ("grill".to_string(), vec![1.0, 0.0, 0.0, 0.0]),
                ("charcoal".to_string(), vec![0.8, 0.2, 0.0, 0.0]),
                ("yoga".to_string(), vec![0.0, 0.0, 1.0, 0.0]),
            ],
        )
    }

    fn sample_bundle() -> AnnBundle {
        let table = sample_table();
        let mut concepts = Hnsw::new(4, HnswConfig::default());
        concepts.insert(&[1.0, 0.1, 0.0, 0.0]);
        concepts.insert(&[0.0, 0.0, 1.0, 0.2]);
        let mut items = Hnsw::new(4, HnswConfig::default());
        items.insert(&[0.9, 0.1, 0.0, 0.0]);
        AnnBundle::new(table, concepts, items)
    }

    #[test]
    fn embed_averages_known_tokens_in_order() {
        let t = sample_table();
        let v = t.embed(&["grill", "charcoal", "unknown"]).unwrap();
        assert_eq!(v.len(), 4);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        assert!(t.embed(&["nothing", "here"]).is_none());
        assert!(t.embed::<&str>(&[]).is_none());
        // Same tokens, same order ⇒ bitwise-identical embedding.
        assert_eq!(v, t.embed(&["grill", "charcoal"]).unwrap());
    }

    #[test]
    fn table_roundtrips_and_rejects_corruption() {
        let t = sample_table();
        let mut bytes = Vec::new();
        t.encode(&mut bytes);
        let back = TokenTable::decode(&bytes).unwrap();
        assert_eq!(back, t);
        let mut again = Vec::new();
        back.encode(&mut again);
        assert_eq!(bytes, again);
        for len in 0..bytes.len() {
            assert!(TokenTable::decode(&bytes[..len]).is_err(), "trunc {len}");
        }
        let mut b = bytes.clone();
        b.push(0);
        assert!(TokenTable::decode(&b).is_err());
    }

    #[test]
    fn bundle_roundtrips_through_the_three_payloads() {
        let bundle = sample_bundle();
        let (v, c, i) = bundle.encode();
        let back = AnnBundle::decode(&v, &c, &i).unwrap();
        assert_eq!(back, bundle);
        // Swapping a payload for one of a different dimension is caught.
        let mut other = Hnsw::new(7, HnswConfig::default());
        other.insert(&[1.0; 7]);
        let mut cbad = Vec::new();
        other.encode(&mut cbad);
        assert!(AnnBundle::decode(&v, &cbad, &i).is_err());
    }

    #[test]
    fn query_embedding_finds_the_right_concept() {
        let bundle = sample_bundle();
        let q = bundle.embed_query("charcoal grill").unwrap();
        let hits = bundle.concepts().knn(&q, 1, 8);
        assert_eq!(hits.first().map(|&(id, _)| id), Some(0));
        let q = bundle.embed_query("yoga").unwrap();
        let hits = bundle.concepts().knn(&q, 1, 8);
        assert_eq!(hits.first().map(|&(id, _)| id), Some(1));
        assert!(bundle.embed_query("quantum entanglement").is_none());
    }
}
