//! Building an [`AnnBundle`] from a concept net.
//!
//! The training corpus deliberately mixes layers: each concept's
//! document is its surface tokens *plus* its interpreting primitives'
//! names *plus* the title tokens of its linked items, and each item's
//! document symmetrically pulls in its concepts' surfaces. That co-
//! occurrence is what closes the lexical gap — a query token that
//! appears only in item titles ("charcoal") lands near the concepts
//! those items are linked to ("outdoor barbecue") even though no
//! concept or primitive surface contains it, which token postings alone
//! can never do (PAPER.md's semantic-matching motivation).
//!
//! Everything downstream of the corpus is deterministic: the vocabulary
//! orders tokens by count then spelling, word2vec is seeded, documents
//! are visited in id order, and the HNSW build is byte-reproducible —
//! so `build_bundle` on the same net and config always encodes to the
//! same snapshot bytes.

use alicoco::AliCoCo;
use alicoco_text::word2vec::{train, Word2VecConfig};
use alicoco_text::Vocab;

use crate::bundle::{AnnBundle, TokenTable};
use crate::hnsw::{Hnsw, HnswConfig};

/// Configuration for the embedding + index build.
#[derive(Clone, Debug, Default)]
pub struct EmbedConfig {
    /// word2vec training parameters (dimension, epochs, seed …).
    pub word2vec: Word2VecConfig,
    /// HNSW construction parameters.
    pub hnsw: HnswConfig,
}

/// The document of one concept: surface tokens, then interpreting
/// primitive names, then linked item title tokens — a deterministic
/// id-order traversal.
fn concept_doc(kg: &AliCoCo, id: alicoco::ids::ConceptId) -> Vec<String> {
    let node = kg.concept(id);
    let mut doc: Vec<String> = node.name.split_whitespace().map(str::to_string).collect();
    for &p in &node.primitives {
        doc.extend(kg.primitive(p).name.split_whitespace().map(str::to_string));
    }
    for &(item, _) in &node.items {
        doc.extend(kg.item(item).title.iter().cloned());
    }
    doc
}

/// The document of one item: title tokens, then the surfaces of the
/// concepts that suggest it, then its property primitives' names.
fn item_doc(kg: &AliCoCo, id: alicoco::ids::ItemId) -> Vec<String> {
    let node = kg.item(id);
    let mut doc: Vec<String> = node.title.clone();
    for &c in &node.concepts {
        doc.extend(kg.concept(c).name.split_whitespace().map(str::to_string));
    }
    for &p in &node.primitives {
        doc.extend(kg.primitive(p).name.split_whitespace().map(str::to_string));
    }
    doc
}

/// Train embeddings over the net's cross-layer corpus and build the
/// hybrid-retrieval bundle: a token table for query embedding plus one
/// HNSW index over concept vectors (ids = concept ordinals) and one
/// over item vectors (ids = item ordinals).
pub fn build_bundle(kg: &AliCoCo, cfg: &EmbedConfig) -> AnnBundle {
    let concept_docs: Vec<Vec<String>> = kg.concept_ids().map(|c| concept_doc(kg, c)).collect();
    let item_docs: Vec<Vec<String>> = kg.item_ids().map(|i| item_doc(kg, i)).collect();
    let corpus: Vec<&[String]> = concept_docs
        .iter()
        .chain(item_docs.iter())
        .map(Vec::as_slice)
        .collect();
    let vocab = Vocab::from_corpus(corpus.iter().copied(), 1);
    let sentences: Vec<Vec<usize>> = corpus.iter().map(|s| vocab.encode(s)).collect();
    let vectors = train(&vocab, &sentences, &cfg.word2vec);
    let dim = cfg.word2vec.dim.max(1);
    // Skip <unk> (id 0): unknown query tokens must contribute nothing.
    let table = TokenTable::new(
        dim,
        vocab
            .iter()
            .skip(1)
            .map(|(id, tok, _)| (tok.to_string(), vectors.vector(id).to_vec())),
    );
    let mut concepts = Hnsw::new(dim, cfg.hnsw);
    for doc in &concept_docs {
        concepts.insert(&table.embed(doc).unwrap_or_else(|| vec![0.0; dim]));
    }
    let mut items = Hnsw::new(dim, cfg.hnsw);
    for doc in &item_docs {
        items.insert(&table.embed(doc).unwrap_or_else(|| vec![0.0; dim]));
    }
    AnnBundle::new(table, concepts, items)
}

/// Convenience: `build_bundle` with the default configuration.
pub fn build_default_bundle(kg: &AliCoCo) -> AnnBundle {
    build_bundle(kg, &EmbedConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small two-scenario world: barbecue concepts whose items carry
    /// title tokens ("charcoal") absent from every concept surface.
    fn sample_kg() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let category = kg.add_class("Category", Some(root));
        let event = kg.add_class("Event", Some(root));
        let grill = kg.add_primitive("grill", category);
        let bbq = kg.add_primitive("barbecue", event);
        let yoga = kg.add_primitive("yoga", event);
        let outdoor = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(outdoor, grill);
        kg.link_concept_primitive(outdoor, bbq);
        let indoor = kg.add_concept("indoor yoga");
        kg.link_concept_primitive(indoor, yoga);
        let i1 = kg.add_item(&["charcoal".into(), "grill".into()]);
        let i2 = kg.add_item(&["yoga".into(), "mat".into()]);
        kg.link_concept_item(outdoor, i1, 0.9);
        kg.link_concept_item(indoor, i2, 0.8);
        kg
    }

    #[test]
    fn bundle_build_is_deterministic() {
        let kg = sample_kg();
        let a = build_default_bundle(&kg);
        let b = build_default_bundle(&kg);
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.concepts().len(), kg.num_concepts());
        assert_eq!(a.items().len(), kg.num_items());
    }

    #[test]
    fn item_title_tokens_reach_their_concepts() {
        // "charcoal" appears only in an item title, never in a concept
        // or primitive surface — the lexical-miss case. The cross-layer
        // corpus still embeds it, and the nearest concept must be the
        // one its item is linked to.
        let kg = sample_kg();
        let bundle = build_default_bundle(&kg);
        let q = bundle
            .embed_query("charcoal")
            .expect("title token is in the table");
        let hits = bundle.concepts().knn(&q, 1, 16);
        let outdoor = kg.concept_by_name("outdoor barbecue").unwrap();
        assert_eq!(
            hits.first().map(|&(id, _)| id as usize),
            Some(outdoor.index())
        );
    }
}
