#![warn(missing_docs)]
//! # alicoco-ann
//!
//! Hybrid-retrieval substrate: a dependency-free, **deterministic** HNSW
//! vector index over the embeddings the workspace already trains, plus
//! the serving-side bundle that fuses vector candidates into the lexical
//! engines (closing the zero-token-overlap gap of PAPER.md's semantic
//! matching task).
//!
//! - [`hnsw`] — the index itself: seeded level assignment, `rank`-total-
//!   order neighbor selection, byte-reproducible builds, `knn` search and
//!   the exact `scan_knn` oracle it is recall-gated against.
//! - [`bundle`] — [`bundle::AnnBundle`]: token → embedding table for
//!   query encoding plus one index over concepts and one over items,
//!   serialized as the three opaque payloads the `ALCC` snapshot codec
//!   carries as checksummed `AVOC`/`ACON`/`AITM` sections.
//! - [`embed`] — training the bundle from a concept net: a cross-layer
//!   corpus (concept surfaces ⊕ primitive names ⊕ item titles) through
//!   seeded word2vec, so item-title-only tokens still reach concepts.

pub mod bundle;
pub mod embed;
pub mod hnsw;
pub mod io;

pub use bundle::{AnnBundle, TokenTable};
pub use embed::{build_bundle, build_default_bundle, EmbedConfig};
pub use hnsw::{Hnsw, HnswConfig};
pub use io::{load_file_with_bundle, load_snapshot_with_bundle, save_snapshot_with_bundle};
