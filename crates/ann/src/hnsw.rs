//! A dependency-free, deterministic HNSW (Hierarchical Navigable Small
//! World) index over dense vectors.
//!
//! Determinism is the design constraint everything else bends around:
//!
//! - **Level assignment** is a pure hash of `(seed, id)` — not a draw from
//!   mutable RNG state — so a node's level never depends on insertion
//!   history.
//! - **Every ordering decision** (candidate frontier, result set, neighbor
//!   selection, greedy descent) goes through the workspace ranking order
//!   [`rank::by_score_then_id`] (similarity descending, id ascending), a
//!   total order even under NaN, so ties never depend on float luck or
//!   hash iteration.
//! - **Construction is single-threaded in id order**, which together with
//!   the above makes builds byte-reproducible: the same `(seed, inserts)`
//!   always [`encode`](Hnsw::encode)s to the same bytes — asserted by the
//!   determinism tests and relied on by the snapshot codec.
//!
//! Similarity is the dot product of stored vectors. [`Hnsw::insert`]
//! L2-normalizes the copy it stores, so with normalized queries the score
//! is cosine similarity. [`Hnsw::scan_knn`] is the exact brute-force
//! oracle the approximate [`Hnsw::knn`] is recall-gated against (same
//! oracle pattern as `SemanticSearch::search_scan`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use alicoco::snapshot::LoadError;
use alicoco_nn::rank::{self, Ranked, TopK};
use alicoco_nn::util::FxHashSet;

/// Hard cap on assigned levels; with `m ≥ 4` the geometric level
/// distribution makes reaching it astronomically unlikely, but the cap
/// keeps the encoded layout bounded regardless of seed.
const MAX_LEVEL: usize = 16;

/// Encoded-format version tag (the payload travels inside a checksummed
/// `ALCC` section, so this only guards against format evolution).
const VERSION: u32 = 1;

/// Construction parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HnswConfig {
    /// Max neighbors per node on levels ≥ 1 (level 0 keeps `2·m`).
    pub m: usize,
    /// Candidate-frontier width during construction. The default of 200
    /// is calibrated on the serving bench's 100k clustered workload
    /// (`crates/ann/tests/calibration.rs`): 100 left recall@10 at ~0.81
    /// even with wide query-time `ef`, while 200 clears 0.93 at `ef=64`
    /// for ~1.5× the build cost.
    pub ef_construction: usize,
    /// Seed for the level-assignment hash.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 200,
            seed: 42,
        }
    }
}

/// The index: vectors plus one adjacency list per `(node, level)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Hnsw {
    dim: usize,
    cfg: HnswConfig,
    /// Entry point for search — the highest-level node.
    entry: Option<u32>,
    /// Highest assigned level.
    max_level: usize,
    /// Assigned level per node.
    levels: Vec<u32>,
    /// L2-normalized vectors, `n × dim`, row-major.
    vectors: Vec<f32>,
    /// `links[id][level]` = neighbor ids of `id` at `level`
    /// (`levels[id] + 1` lists per node).
    links: Vec<Vec<Vec<u32>>>,
}

/// L2-normalize in place; zero vectors stay zero.
pub fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 && norm.is_finite() {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Dot product over the common prefix of two slices.
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Hnsw {
    /// Empty index over `dim`-dimensional vectors.
    pub fn new(dim: usize, cfg: HnswConfig) -> Self {
        let cfg = HnswConfig {
            m: cfg.m.clamp(2, 64),
            ef_construction: cfg.ef_construction.max(1),
            seed: cfg.seed,
        };
        Hnsw {
            dim: dim.max(1),
            cfg,
            entry: None,
            max_level: 0,
            levels: Vec::new(),
            vectors: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Construction parameters.
    pub fn config(&self) -> HnswConfig {
        self.cfg
    }

    /// The stored (normalized) vector of `id`; empty slice for an
    /// out-of-range id.
    pub fn vector(&self, id: u32) -> &[f32] {
        let start = (id as usize).saturating_mul(self.dim);
        self.vectors.get(start..start + self.dim).unwrap_or(&[])
    }

    /// Level assigned to `id` — a pure function of `(seed, id)`, so it is
    /// independent of insertion history.
    fn level_for(&self, id: u32) -> usize {
        let h = splitmix64(self.cfg.seed ^ u64::from(id).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // 53 uniform mantissa bits → u in (0, 1]; -ln(u)·ml is the usual
        // geometric-ish HNSW level draw with ml = 1/ln(m).
        let u = 1.0 - (h >> 11) as f64 / (1u64 << 53) as f64;
        let ml = 1.0 / (self.cfg.m as f64).ln();
        let lvl = (-u.ln() * ml) as usize;
        lvl.min(MAX_LEVEL)
    }

    fn neighbors(&self, id: u32, level: usize) -> &[u32] {
        self.links
            .get(id as usize)
            .and_then(|per_node| per_node.get(level))
            .map_or(&[], Vec::as_slice)
    }

    /// Similarity of stored node `id` to a query slice — the dot product
    /// of the stored (normalized) vector with `q`, i.e. the cosine when
    /// `q` is normalized too. Out-of-range ids and shorter queries zip to
    /// fewer terms and score toward zero; nothing panics.
    pub fn sim_to(&self, id: u32, q: &[f32]) -> f32 {
        dot(self.vector(id), q)
    }

    /// Similarity between two stored nodes.
    fn sim_pair(&self, a: u32, b: u32) -> f32 {
        dot(self.vector(a), self.vector(b))
    }

    /// Copy `v` into a `dim`-sized normalized buffer (zero-padding or
    /// truncating a mismatched length, so no input shape can panic).
    fn fit(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for (dst, src) in out.iter_mut().zip(v) {
            *dst = if src.is_finite() { *src } else { 0.0 };
        }
        normalize(&mut out);
        out
    }

    /// Greedy descent on one level: hill-climb to the rank-best neighbor
    /// until no neighbor improves. Ties go to the lower id via the
    /// ranking order, so the path is deterministic.
    fn greedy(&self, q: &[f32], mut ep: u32, level: usize) -> u32 {
        let mut best = self.sim_to(ep, q);
        loop {
            let mut improved = false;
            for &nb in self.neighbors(ep, level) {
                let s = self.sim_to(nb, q);
                if Ranked(nb, s) < Ranked(ep, best) {
                    ep = nb;
                    best = s;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// The ef-bounded best-first search of one level, returning up to
    /// `ef` results best-first under the ranking order.
    fn search_layer(&self, q: &[f32], eps: &[u32], ef: usize, level: usize) -> Vec<(u32, f32)> {
        let ef = ef.max(1);
        let mut visited: FxHashSet<u32> = FxHashSet::default();
        // Max-heap root = worst kept result (Ord *is* the ranking order).
        let mut results: BinaryHeap<Ranked<u32, f32>> = BinaryHeap::new();
        // Reverse ⇒ pops the rank-best unexplored candidate first.
        let mut frontier: BinaryHeap<Reverse<Ranked<u32, f32>>> = BinaryHeap::new();
        for &e in eps {
            if visited.insert(e) {
                let s = self.sim_to(e, q);
                results.push(Ranked(e, s));
                frontier.push(Reverse(Ranked(e, s)));
            }
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Reverse(cand)) = frontier.pop() {
            if results.len() >= ef {
                match results.peek() {
                    Some(worst) if cand > *worst => break,
                    _ => {}
                }
            }
            for &nb in self.neighbors(cand.0, level) {
                if !visited.insert(nb) {
                    continue;
                }
                let s = self.sim_to(nb, q);
                let keep =
                    results.len() < ef || results.peek().is_none_or(|worst| Ranked(nb, s) < *worst);
                if keep {
                    frontier.push(Reverse(Ranked(nb, s)));
                    results.push(Ranked(nb, s));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        // Ascending under the ranking Ord = best-first.
        results
            .into_sorted_vec()
            .into_iter()
            .map(|r| (r.0, r.1))
            .collect()
    }

    /// The HNSW neighbor-selection heuristic, made deterministic: walk
    /// candidates best-first, keep one iff it is closer to the base than
    /// to every already-kept neighbor (diversity), then backfill with the
    /// best pruned ones up to `m`.
    fn select_neighbors(&self, cands: &[(u32, f32)], m: usize) -> Vec<(u32, f32)> {
        let mut selected: Vec<(u32, f32)> = Vec::with_capacity(m);
        let mut pruned: Vec<(u32, f32)> = Vec::new();
        for &(c, sim_c) in cands {
            if selected.len() >= m {
                break;
            }
            let diverse = selected.iter().all(|&(s, _)| self.sim_pair(c, s) <= sim_c);
            if diverse {
                selected.push((c, sim_c));
            } else {
                pruned.push((c, sim_c));
            }
        }
        for &(c, s) in &pruned {
            if selected.len() >= m {
                break;
            }
            selected.push((c, s));
        }
        selected
    }

    /// Insert a vector (stored L2-normalized) and return its id — always
    /// the current [`len`](Self::len), so ids are dense insertion
    /// ordinals. Single-threaded id-order insertion is what makes builds
    /// byte-reproducible.
    pub fn insert(&mut self, vector: &[f32]) -> u32 {
        let id = self.levels.len() as u32;
        let v = self.fit(vector);
        let level = self.level_for(id);
        self.vectors.extend_from_slice(&v);
        self.levels.push(level as u32);
        self.links.push(vec![Vec::new(); level + 1]);
        let Some(mut ep) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return id;
        };
        // Descend greedily through levels above the node's own.
        for l in (level + 1..=self.max_level).rev() {
            ep = self.greedy(&v, ep, l);
        }
        // Connect on every level the node lives on.
        let mut eps = vec![ep];
        for l in (0..=level.min(self.max_level)).rev() {
            let cands = self.search_layer(&v, &eps, self.cfg.ef_construction, l);
            let selected = self.select_neighbors(&cands, self.cfg.m);
            let m_max = if l == 0 { self.cfg.m * 2 } else { self.cfg.m };
            if let Some(slot) = self
                .links
                .get_mut(id as usize)
                .and_then(|per_node| per_node.get_mut(l))
            {
                *slot = selected.iter().map(|&(c, _)| c).collect();
            }
            for &(nb, _) in &selected {
                self.link_back(nb, id, l, m_max);
            }
            eps = cands.into_iter().map(|(c, _)| c).collect();
            if eps.is_empty() {
                eps = vec![ep];
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
        id
    }

    /// Add the back-edge `nb → id` at `level`, re-selecting `nb`'s
    /// neighbor list when it overflows `m_max`.
    fn link_back(&mut self, nb: u32, id: u32, level: usize, m_max: usize) {
        let current = self.neighbors(nb, level);
        if current.contains(&id) {
            return;
        }
        if current.len() < m_max {
            if let Some(slot) = self
                .links
                .get_mut(nb as usize)
                .and_then(|per_node| per_node.get_mut(level))
            {
                slot.push(id);
            }
            return;
        }
        // Overflow: rank all candidates by similarity to `nb` and keep a
        // diverse `m_max` of them.
        let mut cands: Vec<(u32, f32)> = current
            .iter()
            .chain(std::iter::once(&id))
            .map(|&c| (c, self.sim_pair(c, nb)))
            .collect();
        cands.sort_by(rank::by_score_then_id);
        let kept: Vec<u32> = self
            .select_neighbors(&cands, m_max)
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        if let Some(slot) = self
            .links
            .get_mut(nb as usize)
            .and_then(|per_node| per_node.get_mut(level))
        {
            *slot = kept;
        }
    }

    /// Approximate k-nearest-neighbor search: the best `k` of an
    /// `ef`-wide level-0 frontier (`ef` is raised to `k` if below),
    /// best-first under the ranking order — similarity descending, id
    /// ascending, no duplicates.
    pub fn knn(&self, query: &[f32], k: usize, ef: usize) -> Vec<(u32, f32)> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let q = self.fit(query);
        let mut ep = entry;
        for l in (1..=self.max_level).rev() {
            ep = self.greedy(&q, ep, l);
        }
        let mut out = self.search_layer(&q, &[ep], ef.max(k), 0);
        out.truncate(k);
        out
    }

    /// Exact brute-force kNN over every stored vector — the oracle
    /// [`knn`](Self::knn) is recall-gated against.
    pub fn scan_knn(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        let q = self.fit(query);
        let mut top = TopK::new(k);
        for id in 0..self.levels.len() as u32 {
            top.push(id, self.sim_to(id, &q));
        }
        top.into_sorted_vec()
    }

    // ---- codec -------------------------------------------------------------

    /// Serialize into `out`. The layout is fixed-stride little-endian
    /// (header, per-node levels, vectors, then one CSR adjacency per
    /// level), so equal indexes always produce equal bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let n = self.levels.len();
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.cfg.m as u32).to_le_bytes());
        out.extend_from_slice(&(self.cfg.ef_construction as u32).to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&self.entry.unwrap_or(u32::MAX).to_le_bytes());
        out.extend_from_slice(&(self.max_level as u32).to_le_bytes());
        out.extend_from_slice(&self.cfg.seed.to_le_bytes());
        for &l in &self.levels {
            out.extend_from_slice(&l.to_le_bytes());
        }
        for &x in &self.vectors {
            out.extend_from_slice(&x.to_le_bytes());
        }
        if n == 0 {
            return;
        }
        for level in 0..=self.max_level {
            let mut off = 0u32;
            out.extend_from_slice(&off.to_le_bytes());
            for id in 0..n as u32 {
                off = off.saturating_add(self.neighbors(id, level).len() as u32);
                out.extend_from_slice(&off.to_le_bytes());
            }
            for id in 0..n as u32 {
                for &nb in self.neighbors(id, level) {
                    out.extend_from_slice(&nb.to_le_bytes());
                }
            }
        }
    }

    /// Decode an index previously produced by [`encode`](Self::encode),
    /// validating every count, id and offset — corrupt input of any shape
    /// is a typed [`LoadError`], never a panic. `decode(encode(x)) == x`,
    /// and re-encoding reproduces the input bytes.
    pub fn decode(bytes: &[u8]) -> Result<Hnsw, LoadError> {
        let mut r = ByteReader::new(bytes, "ann index");
        let version = r.u32()?;
        if version != VERSION {
            return Err(r.corrupt(format!("unsupported ann version {version}")));
        }
        let dim = r.u32()? as usize;
        let m = r.u32()? as usize;
        let ef_construction = r.u32()? as usize;
        let n = r.u32()? as usize;
        let entry_raw = r.u32()?;
        let max_level = r.u32()? as usize;
        let seed = r.u64()?;
        if dim == 0 || dim > 4096 {
            return Err(r.corrupt("dimension out of range"));
        }
        if !(2..=64).contains(&m) || max_level > MAX_LEVEL {
            return Err(r.corrupt("parameters out of range"));
        }
        // Counts are validated against the bytes actually present before
        // any allocation is sized from them.
        let need = n
            .checked_mul(4 + dim * 4)
            .ok_or_else(|| r.corrupt("node count overflows"))?;
        if r.remaining() < need {
            return Err(r.corrupt("truncated node data"));
        }
        let entry = if entry_raw == u32::MAX {
            None
        } else if (entry_raw as usize) < n {
            Some(entry_raw)
        } else {
            return Err(r.corrupt("entry point out of range"));
        };
        if entry.is_none() && n != 0 {
            return Err(r.corrupt("non-empty index without an entry point"));
        }
        let mut levels = Vec::with_capacity(n);
        for _ in 0..n {
            let l = r.u32()?;
            if l as usize > max_level {
                return Err(r.corrupt("node level above max level"));
            }
            levels.push(l);
        }
        if let Some(e) = entry {
            if levels.get(e as usize).copied() != Some(max_level as u32) {
                return Err(r.corrupt("entry point is not on the max level"));
            }
        }
        let mut vectors = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            let x = r.f32()?;
            if !x.is_finite() {
                return Err(r.corrupt("non-finite vector component"));
            }
            vectors.push(x);
        }
        let mut links: Vec<Vec<Vec<u32>>> = levels
            .iter()
            .map(|&l| vec![Vec::new(); l as usize + 1])
            .collect();
        if n > 0 {
            for level in 0..=max_level {
                let mut offsets = Vec::with_capacity(n + 1);
                for _ in 0..=n {
                    offsets.push(r.u32()? as usize);
                }
                if offsets.first() != Some(&0) {
                    return Err(r.corrupt("adjacency offsets must start at zero"));
                }
                let total = offsets.last().copied().unwrap_or(0);
                if total > r.remaining() / 4 {
                    return Err(r.corrupt("adjacency longer than section"));
                }
                for id in 0..n {
                    let (start, end) = match (offsets.get(id), offsets.get(id + 1)) {
                        (Some(&s), Some(&e)) if s <= e => (s, e),
                        _ => return Err(r.corrupt("adjacency offsets must be non-decreasing")),
                    };
                    let degree = end - start;
                    let node_level = levels.get(id).copied().unwrap_or(0) as usize;
                    if level > node_level && degree > 0 {
                        return Err(r.corrupt("neighbors above the node's level"));
                    }
                    let mut nbs = Vec::with_capacity(degree);
                    for _ in 0..degree {
                        let nb = r.u32()?;
                        if nb as usize >= n || nb as usize == id {
                            return Err(r.corrupt("neighbor id out of range"));
                        }
                        if levels.get(nb as usize).map_or(0, |&l| l as usize) < level {
                            return Err(r.corrupt("neighbor below this level"));
                        }
                        nbs.push(nb);
                    }
                    if let Some(slot) = links
                        .get_mut(id)
                        .and_then(|per_node| per_node.get_mut(level))
                    {
                        *slot = nbs;
                    }
                }
            }
        }
        r.expect_end()?;
        Ok(Hnsw {
            dim,
            cfg: HnswConfig {
                m,
                ef_construction: ef_construction.max(1),
                seed,
            },
            entry,
            max_level,
            levels,
            vectors,
            links,
        })
    }
}

/// Sequential validating little-endian reader (the ann-payload analogue
/// of the codec's varint `Cursor`).
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8], section: &'static str) -> Self {
        ByteReader {
            buf,
            pos: 0,
            section,
        }
    }

    pub(crate) fn corrupt(&self, msg: impl Into<String>) -> LoadError {
        LoadError::Corrupt(self.section, msg.into())
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], LoadError> {
        let bytes = self
            .buf
            .get(self.pos..self.pos + N)
            .and_then(|b| <[u8; N]>::try_from(b).ok())
            .ok_or_else(|| self.corrupt("truncated integer"))?;
        self.pos += N;
        Ok(bytes)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, LoadError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, LoadError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, LoadError> {
        Ok(f32::from_le_bytes(self.take()?))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        let out = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| self.corrupt("truncated payload"))?;
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn expect_end(&self) -> Result<(), LoadError> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt("trailing bytes in section"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>() - 0.5).collect())
            .collect()
    }

    fn build(vectors: &[Vec<f32>], cfg: HnswConfig) -> Hnsw {
        let dim = vectors.first().map_or(4, Vec::len);
        let mut h = Hnsw::new(dim, cfg);
        for v in vectors {
            h.insert(v);
        }
        h
    }

    #[test]
    fn empty_index_answers_empty() {
        let h = Hnsw::new(8, HnswConfig::default());
        assert!(h.knn(&[1.0; 8], 5, 32).is_empty());
        assert!(h.scan_knn(&[1.0; 8], 5).is_empty());
        let mut bytes = Vec::new();
        h.encode(&mut bytes);
        assert_eq!(Hnsw::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn knn_is_exact_on_small_sets() {
        // With ef ≥ n the frontier visits the whole connected graph, so
        // the approximate search must equal the scan oracle.
        let vectors = random_vectors(64, 8, 7);
        let h = build(&vectors, HnswConfig::default());
        for (qi, q) in vectors.iter().enumerate().step_by(9) {
            let approx = h.knn(q, 10, 64);
            let exact = h.scan_knn(q, 10);
            assert_eq!(approx, exact, "query {qi}");
            assert_eq!(approx.first().map(|&(id, _)| id), Some(qi as u32));
        }
    }

    #[test]
    fn results_are_rank_ordered_without_duplicates() {
        let vectors = random_vectors(200, 6, 3);
        let h = build(
            &vectors,
            HnswConfig {
                m: 8,
                ..HnswConfig::default()
            },
        );
        let out = h.knn(&vectors[17], 20, 40);
        assert!(!out.is_empty());
        let mut sorted = out.clone();
        sorted.sort_by(rank::by_score_then_id);
        assert_eq!(out, sorted, "results must follow the ranking order");
        let ids: FxHashSet<u32> = out.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids.len(), out.len(), "no duplicate ids");
    }

    #[test]
    fn same_inserts_same_seed_is_byte_identical() {
        let vectors = random_vectors(120, 8, 11);
        let cfg = HnswConfig {
            seed: 5,
            ..HnswConfig::default()
        };
        let (a, b) = (build(&vectors, cfg), build(&vectors, cfg));
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.encode(&mut ba);
        b.encode(&mut bb);
        assert_eq!(ba, bb, "same seed + inserts must be byte-identical");
        // A different seed re-rolls levels and produces different bytes.
        let c = build(&vectors, HnswConfig { seed: 6, ..cfg });
        let mut bc = Vec::new();
        c.encode(&mut bc);
        assert_ne!(ba, bc);
    }

    #[test]
    fn decode_roundtrips_and_reencodes_identically() {
        let vectors = random_vectors(90, 5, 23);
        let h = build(&vectors, HnswConfig::default());
        let mut bytes = Vec::new();
        h.encode(&mut bytes);
        let back = Hnsw::decode(&bytes).unwrap();
        assert_eq!(back, h);
        let mut again = Vec::new();
        back.encode(&mut again);
        assert_eq!(bytes, again);
        // The decoded index answers identically.
        assert_eq!(back.knn(&vectors[3], 5, 50), h.knn(&vectors[3], 5, 50));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let h = build(&random_vectors(24, 4, 1), HnswConfig::default());
        let mut bytes = Vec::new();
        h.encode(&mut bytes);
        for len in 0..bytes.len() {
            assert!(Hnsw::decode(&bytes[..len]).is_err(), "truncation at {len}");
        }
    }

    #[test]
    fn corrupt_fields_are_typed_errors() {
        let h = build(&random_vectors(24, 4, 1), HnswConfig::default());
        let mut bytes = Vec::new();
        h.encode(&mut bytes);
        // Version.
        let mut b = bytes.clone();
        b[0] = 99;
        assert!(Hnsw::decode(&b).is_err());
        // Entry point beyond n.
        let mut b = bytes.clone();
        b[16..20].copy_from_slice(&1000u32.to_le_bytes());
        assert!(Hnsw::decode(&b).is_err());
        // A neighbor id in the adjacency tail flipped out of range.
        let mut b = bytes.clone();
        let tail = b.len() - 4;
        b[tail..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Hnsw::decode(&b).is_err());
        // Trailing garbage.
        let mut b = bytes.clone();
        b.push(0);
        assert!(Hnsw::decode(&b).is_err());
    }

    #[test]
    fn recall_is_high_on_clustered_data() {
        // Clustered vectors (the realistic embedding shape): recall@10
        // against the exact oracle must clear the CI gate's floor.
        let mut rng = StdRng::seed_from_u64(99);
        let dim = 16;
        let centers: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>() - 0.5).collect())
            .collect();
        let vectors: Vec<Vec<f32>> = (0..600)
            .map(|i| {
                let c = &centers[i % centers.len()];
                c.iter()
                    .map(|x| x + 0.1 * (rng.gen::<f32>() - 0.5))
                    .collect()
            })
            .collect();
        let h = build(&vectors, HnswConfig::default());
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in vectors.iter().step_by(13) {
            let approx: FxHashSet<u32> = h.knn(q, 10, 64).into_iter().map(|(id, _)| id).collect();
            for (id, _) in h.scan_knn(q, 10) {
                total += 1;
                hit += usize::from(approx.contains(&id));
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "recall@10 {recall} below the gate floor");
    }

    #[test]
    fn mismatched_query_lengths_do_not_panic() {
        let h = build(&random_vectors(10, 4, 2), HnswConfig::default());
        assert!(!h.knn(&[1.0], 3, 8).is_empty());
        assert!(!h.knn(&[1.0; 64], 3, 8).is_empty());
        assert!(!h.knn(&[f32::NAN; 4], 3, 8).is_empty());
        assert_eq!(h.knn(&[], 3, 8).len(), 3);
    }
}
