//! Snapshot I/O for ann-bearing snapshots: the one-stop load/save
//! helpers the CLI and `alicoco-serve` use when a snapshot may carry
//! the `AVOC`/`ACON`/`AITM` trailer sections.
//!
//! These sit in this crate (not `core::store`) because core treats the
//! ANN payloads as opaque bytes — only this crate knows how to decode
//! them into an [`AnnBundle`].

use std::path::Path;

use alicoco::snapshot::binary::{self, AnnPayload, SnapshotView};
use alicoco::snapshot::SaveError;
use alicoco::store::{FileLoadError, Format};
use alicoco::AliCoCo;
use alicoco_obs::{Registry, Stopwatch};

use crate::bundle::AnnBundle;

/// Serialize a net plus its retrieval bundle as one binary snapshot
/// with the three ANN trailer sections.
pub fn save_snapshot_with_bundle(
    kg: &AliCoCo,
    bundle: &AnnBundle,
    out: &mut Vec<u8>,
) -> Result<(), SaveError> {
    let (vocab, concepts, items) = bundle.encode();
    binary::save_with_ann(
        kg,
        Some(AnnPayload {
            vocab: &vocab,
            concepts: &concepts,
            items: &items,
        }),
        out,
    )
}

/// Decode a snapshot buffer into the net plus its bundle, if the
/// snapshot carries one. TSV snapshots (and binary snapshots without
/// the trailer) load with `None`.
pub fn load_snapshot_with_bundle(
    bytes: &[u8],
) -> Result<(AliCoCo, Option<AnnBundle>), alicoco::snapshot::LoadError> {
    if Format::detect(bytes) != Format::Binary {
        let store = alicoco::store::store_for(Format::Tsv);
        return Ok((store.load(bytes)?, None));
    }
    let view = SnapshotView::open(bytes)?;
    let kg = view.to_graph()?;
    let bundle = view
        .ann()
        .map(|(v, c, i)| AnnBundle::decode(v, c, i))
        .transpose()?;
    Ok((kg, bundle))
}

/// Read `path`, sniff the codec, and load net + optional bundle,
/// recording the same `snapshot.<fmt>.*` metrics as
/// [`alicoco::store::load_file`] — the serve binary's loading path.
pub fn load_file_with_bundle(
    path: &Path,
    metrics: &Registry,
) -> Result<(AliCoCo, Option<AnnBundle>), FileLoadError> {
    let bytes = std::fs::read(path).map_err(FileLoadError::Io)?;
    let fmt = Format::detect(&bytes).name();
    let watch = Stopwatch::start();
    let loaded = load_snapshot_with_bundle(&bytes)?;
    metrics
        .histogram(&format!("snapshot.{fmt}.load_ns"))
        .record_duration(watch.elapsed());
    metrics
        .counter(&format!("snapshot.{fmt}.loaded_bytes"))
        .add(bytes.len() as u64);
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::build_default_bundle;

    fn sample_kg() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("root", None);
        let event = kg.add_class("Event", Some(root));
        let bbq = kg.add_primitive("barbecue", event);
        let c = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c, bbq);
        let i = kg.add_item(&["charcoal".into(), "grill".into()]);
        kg.link_concept_item(c, i, 0.75);
        kg
    }

    #[test]
    fn snapshot_with_bundle_roundtrips() {
        let kg = sample_kg();
        let bundle = build_default_bundle(&kg);
        let mut bytes = Vec::new();
        save_snapshot_with_bundle(&kg, &bundle, &mut bytes).unwrap();
        let (kg2, bundle2) = load_snapshot_with_bundle(&bytes).unwrap();
        assert_eq!(kg2, kg);
        assert_eq!(bundle2.as_ref(), Some(&bundle));
        // Saving again from the reloaded pair is byte-identical.
        let mut again = Vec::new();
        save_snapshot_with_bundle(&kg2, &bundle2.unwrap(), &mut again).unwrap();
        assert_eq!(bytes, again);
        // A bare binary snapshot loads with no bundle.
        let mut bare = Vec::new();
        binary::save(&kg, &mut bare).unwrap();
        let (kg3, none) = load_snapshot_with_bundle(&bare).unwrap();
        assert_eq!(kg3, kg);
        assert!(none.is_none());
    }

    #[test]
    fn file_loader_records_metrics_and_types_errors() {
        let dir = std::env::temp_dir().join(format!("alicoco-ann-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let kg = sample_kg();
        let bundle = build_default_bundle(&kg);
        let mut bytes = Vec::new();
        save_snapshot_with_bundle(&kg, &bundle, &mut bytes).unwrap();
        let path = dir.join("net.alcc");
        std::fs::write(&path, &bytes).unwrap();
        let reg = Registry::new();
        let (kg2, loaded) = load_file_with_bundle(&path, &reg).unwrap();
        assert_eq!(kg2, kg);
        assert_eq!(loaded, Some(bundle));
        assert_eq!(
            reg.counter("snapshot.binary.loaded_bytes").get(),
            bytes.len() as u64
        );
        assert!(matches!(
            load_file_with_bundle(&dir.join("absent"), &reg),
            Err(FileLoadError::Io(_))
        ));
        let truncated = dir.join("trunc.alcc");
        std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            load_file_with_bundle(&truncated, &reg),
            Err(FileLoadError::Load(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
