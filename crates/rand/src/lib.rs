//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace. The crates.io registry is unreachable in the build
//! environment, so the workspace resolves `rand` to this path crate
//! instead. The generator behind [`rngs::StdRng`] is xoshiro256++ seeded
//! via SplitMix64 — not the same stream as upstream `StdRng` (ChaCha12),
//! but deterministic, seedable, and statistically strong enough for the
//! model initialisation, shuffling, and synthetic-world generation this
//! repo does.
//!
//! Covered API: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: object-safe word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's full range (`u*`/`i*`),
    /// the unit interval (`f32`/`f64`), or a fair coin (`bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range; panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly with no parameters (rand's `Standard`
/// distribution, flattened into a trait).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` from the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, n)` via rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Accept v <= zone, the largest multiple of n minus one; keeps the
    // modulo exactly uniform.
    let zone = u64::MAX - u64::MAX.wrapping_rem(n).wrapping_add(1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Types with a uniform draw over an interval. A single generic
/// [`SampleRange`] impl funnels through this so integer-literal ranges
/// (`0..2`) unify with the surrounding expression's type, exactly as
/// upstream rand's inference behaves.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range on empty range");
                } else {
                    assert!(lo < hi, "gen_range on empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let _ = inclusive;
                assert!(lo < hi, "gen_range on empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }

    /// Alias: this build has a single generator quality tier.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_u64, Rng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0u8..=100);
            assert!(i <= 100);
        }
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
        assert!(v.choose(&mut rng).is_some());
        let empty: &[usize] = &[];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rngcore_supports_gen_range() {
        // congen.rs samples through `&mut dyn RngCore`.
        let mut rng = StdRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut rng;
        let v = dynr.gen_range(0..10usize);
        assert!(v < 10);
    }
}
