//! Concurrency contracts of the snapshot-pointer parameter storage and the
//! training worker pool: readers never observe a torn mid-step value, and a
//! worker panic is re-raised exactly once on the caller with model/shard
//! context instead of aborting the process mid-scope.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};

use alicoco_nn::graph::Graph;
use alicoco_nn::param::{Param, ParamSet, Sgd};
use alicoco_nn::tensor::Tensor;
use alicoco_nn::train::{TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_uniform(data: &[f32], what: &str) {
    let first = data[0];
    assert!(
        data.iter().all(|&v| v.to_bits() == first.to_bits()),
        "{what} observed a torn value: first={first}, full={data:?}"
    );
}

/// Hammer the snapshot-pointer protocol: a writer repeatedly rewrites every
/// element of a parameter to a single per-step constant while readers pull
/// snapshots through both read paths — `Param::value()` and a persistent
/// `Graph`'s version-checked cache. Every observed tensor must be uniform;
/// a mix of old and new elements would mean a torn mid-step read.
#[test]
fn snapshot_reads_never_observe_torn_values() {
    let p = Param::new("w", Tensor::zeros(16, 16));
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                while !done.load(Ordering::Relaxed) {
                    let snap = p.value();
                    assert_uniform(snap.data(), "Param::value reader");
                }
            });
        }
        s.spawn(|| {
            // The trainer's hot path: one tape reused across examples, with
            // the parameter snapshot revalidated by version on each read.
            let mut g = Graph::new();
            while !done.load(Ordering::Relaxed) {
                g.reset();
                let node = g.param(&p);
                assert_uniform(g.value(node).data(), "Graph cache reader");
            }
        });

        // Writer: the optimizer-step pattern. Half the steps mutate through
        // `DerefMut` (copy-on-write in place), half replace the tensor
        // wholesale — both must publish atomically.
        for step in 1..=400i32 {
            let k = step as f32;
            if step % 2 == 0 {
                let mut v = p.value_mut();
                for x in v.data_mut() {
                    *x = k;
                }
            } else {
                *p.value_mut() = Tensor::full(16, 16, k);
            }
        }
        done.store(true, Ordering::Relaxed);
    });

    assert_uniform(p.value().data(), "final state");
    assert_eq!(p.value().get(0, 0), 400.0);
}

/// A panicking forward pass inside the pooled engine must surface as one
/// caller-side panic carrying the model label and the lane/shard position —
/// not as a worker-thread abort or a bare `expect` message.
#[test]
fn worker_panic_resumes_on_caller_with_context() {
    let mut ps = ParamSet::new();
    let w = ps.add("w", Tensor::scalar(1.0));
    let cfg = TrainConfig::new(1, 0.1)
        .with_batch_size(8)
        .with_workers(4)
        .with_min_threads(4);
    let trainer = Trainer::new(&ps, cfg).labeled("hypernym_projection");
    let data: Vec<f32> = (0..8).map(|i| i as f32).collect();

    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut opt = Sgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(1);
        trainer.train(
            &mut opt,
            &data,
            |g, &x| {
                if x == 3.0 {
                    panic!("boom on example {x}");
                }
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let p = g.mul(wn, xn);
                Some(g.sum_all(p))
            },
            &mut rng,
        );
    }));

    let payload = result.expect_err("the worker panic must propagate to the caller");
    let msg = payload
        .downcast_ref::<String>()
        .expect("contextualized panics carry a String payload");
    assert!(
        msg.contains("hypernym_projection"),
        "missing model label: {msg}"
    );
    assert!(
        msg.contains("training worker panicked on lane"),
        "missing shard context: {msg}"
    );
    assert!(
        msg.contains("boom on example 3"),
        "original message lost: {msg}"
    );
}

/// Non-string panic payloads must be resumed unchanged so callers that
/// panic with typed values can still downcast them.
#[test]
fn non_string_panic_payloads_survive_the_round_trip() {
    #[derive(Debug)]
    struct Typed(u32);

    let mut ps = ParamSet::new();
    let w = ps.add("w", Tensor::scalar(1.0));
    let cfg = TrainConfig::new(1, 0.1)
        .with_batch_size(4)
        .with_workers(4)
        .with_min_threads(4);
    let trainer = Trainer::new(&ps, cfg);
    let data = [0.0f32, 1.0, 2.0, 3.0];

    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut opt = Sgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(2);
        trainer.train(
            &mut opt,
            &data,
            |g, &x| {
                if x == 2.0 {
                    std::panic::panic_any(Typed(77));
                }
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let p = g.mul(wn, xn);
                Some(g.sum_all(p))
            },
            &mut rng,
        );
    }));

    let payload = result.expect_err("the worker panic must propagate");
    let typed = payload
        .downcast_ref::<Typed>()
        .expect("typed payload must be resumed unchanged");
    assert_eq!(typed.0, 77);
}

/// The pooled engine (threads forced via `min_threads`) must keep training
/// correct, not just deterministic: a real fit on the pool converges to the
/// same answer as the inline path.
#[test]
fn forced_pool_still_fits() {
    let data: Vec<(f32, f32)> = (0..24).map(|i| (i as f32 / 8.0, i as f32 / 4.0)).collect();
    let mut snaps = Vec::new();
    for (workers, min_threads) in [(1usize, 0usize), (4, 4)] {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(1, 1));
        let cfg = TrainConfig::new(30, 0.05)
            .with_batch_size(8)
            .with_workers(workers)
            .with_min_threads(min_threads);
        let mut opt = Sgd::new(cfg.lr);
        let mut rng = StdRng::seed_from_u64(9);
        Trainer::new(&ps, cfg).train(
            &mut opt,
            &data,
            |g, &(x, y)| {
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let yn = g.input(Tensor::scalar(y));
                let pred = g.mul(wn, xn);
                let d = g.sub(pred, yn);
                let sq = g.mul(d, d);
                Some(g.sum_all(sq))
            },
            &mut rng,
        );
        assert!((w.value().item() - 2.0).abs() < 0.05, "pool failed to fit");
        snaps.push(ps.snapshot());
    }
    for (a, b) in snaps[0].iter().zip(&snaps[1]) {
        assert_eq!(a.data(), b.data(), "pooled fit drifted from inline fit");
    }
}
