//! Finite-difference verification of the autodiff core for the ops the five
//! construction models lean on hardest, plus optimizer convergence checks on
//! a fixed quadratic.

use alicoco_nn::graph::Graph;
use alicoco_nn::param::{Adam, Optimizer, Param, ParamSet, Sgd};
use alicoco_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Central-difference gradient check of `build` w.r.t. one parameter.
fn grad_check(build: impl Fn(&mut Graph, &Param) -> alicoco_nn::NodeId, rows: usize, cols: usize) {
    let mut rng = StdRng::seed_from_u64(17);
    let p = Param::new("p", Tensor::uniform(rows, cols, 0.5, &mut rng));
    let mut g = Graph::new();
    let loss = build(&mut g, &p);
    g.backward(loss);
    let analytic = p.grad().clone();
    let eps = 1e-3f32;
    for k in 0..rows * cols {
        let orig = p.value().data()[k];
        p.value_mut().data_mut()[k] = orig + eps;
        let mut g1 = Graph::new();
        let l1 = build(&mut g1, &p);
        let f1 = g1.value(l1).item();
        p.value_mut().data_mut()[k] = orig - eps;
        let mut g2 = Graph::new();
        let l2 = build(&mut g2, &p);
        let f2 = g2.value(l2).item();
        p.value_mut().data_mut()[k] = orig;
        let numeric = (f1 - f2) / (2.0 * eps);
        let a = analytic.data()[k];
        assert!(
            (a - numeric).abs() < 1e-2 * (1.0 + a.abs().max(numeric.abs())),
            "grad mismatch at {k}: analytic {a} vs numeric {numeric}"
        );
    }
}

#[test]
fn fd_matmul() {
    grad_check(
        |g, p| {
            let x = g.input(Tensor::from_vec(2, 3, vec![0.3, -0.1, 0.7, -0.4, 0.2, 0.5]));
            let w = g.param(p);
            let y = g.matmul(x, w);
            g.sum_all(y)
        },
        3,
        4,
    );
}

#[test]
fn fd_softmax_rows() {
    // Weight each softmax output so the gradient is non-trivial (the plain
    // row sum of a softmax is constant 1 and would hide errors).
    grad_check(
        |g, p| {
            let x = g.param(p);
            let s = g.softmax_rows(x);
            let w = g.input(Tensor::from_vec(2, 3, vec![1.0, -2.0, 0.5, 0.7, 3.0, -1.0]));
            let m = g.mul(s, w);
            g.sum_all(m)
        },
        2,
        3,
    );
}

#[test]
fn fd_bce_with_logits() {
    grad_check(
        |g, p| {
            let l = g.param(p);
            g.bce_with_logits(l, &[1.0, 0.0, 1.0])
        },
        1,
        3,
    );
}

#[test]
fn fd_mean_rows() {
    grad_check(
        |g, p| {
            let x = g.param(p);
            let m = g.mean_rows(x);
            let w = g.input(Tensor::from_vec(1, 4, vec![2.0, -1.0, 0.5, 1.5]));
            let y = g.mul(m, w);
            g.sum_all(y)
        },
        3,
        4,
    );
}

/// Fixed quadratic `L(w) = sum((w - t)^2)` with minimum at `t`.
fn quadratic_step(ps: &ParamSet, w: &Param, t: &Tensor, opt: &mut dyn Optimizer) -> f32 {
    let mut g = Graph::new();
    let wn = g.param(w);
    let tn = g.input(t.clone());
    let d = g.sub(wn, tn);
    let sq = g.mul(d, d);
    let loss = g.sum_all(sq);
    g.backward(loss);
    let l = g.value(loss).item();
    opt.step(ps);
    l
}

#[test]
fn sgd_and_adam_both_converge_on_fixed_quadratic() {
    let target = Tensor::from_vec(3, 1, vec![1.0, -2.0, 0.5]);
    let mut final_losses = Vec::new();
    for optimizer in ["sgd", "adam"] {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(3, 1));
        let mut opt: Box<dyn Optimizer> = match optimizer {
            "sgd" => Box::new(Sgd::new(0.1)),
            _ => Box::new(Adam::new(0.1)),
        };
        let first = quadratic_step(&ps, &w, &target, opt.as_mut());
        let mut last = first;
        for _ in 0..300 {
            last = quadratic_step(&ps, &w, &target, opt.as_mut());
        }
        assert!(
            last < first * 1e-3,
            "{optimizer} failed to reduce the quadratic: {first} -> {last}"
        );
        for (a, b) in w.value().data().iter().zip(target.data()) {
            assert!((a - b).abs() < 1e-2, "{optimizer} off target: {a} vs {b}");
        }
        final_losses.push(last);
    }
    // Both optimizers reach (near) zero; the trajectories differ but the
    // fixed quadratic has a unique minimum they must agree on.
    assert!(final_losses.iter().all(|&l| l < 1e-4));
}
