//! Property-based tests of the tensor algebra and the autodiff engine:
//! algebraic identities on random matrices, and finite-difference gradient
//! verification of randomly composed graphs.

use alicoco_nn::graph::Graph;
use alicoco_nn::param::Param;
use alicoco_nn::tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs()))
}

fn tensors_close(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape() && a.data().iter().zip(b.data()).all(|(&x, &y)| close(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- algebraic identities -------------------------------------------

    #[test]
    fn matmul_is_associative(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(tensors_close(&left, &right));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(tensors_close(&left, &right));
    }

    #[test]
    fn transpose_is_involution_and_reverses_products(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
    ) {
        prop_assert!(tensors_close(&a.transpose().transpose(), &a));
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(tensors_close(&left, &right));
    }

    #[test]
    fn fused_transpose_products_match(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(4, 5),
        c in tensor_strategy(2, 3),
    ) {
        prop_assert!(tensors_close(&a.matmul_tn(&b), &a.transpose().matmul(&b)));
        prop_assert!(tensors_close(&a.matmul_nt(&c), &a.matmul(&c.transpose())));
    }

    #[test]
    fn softmax_rows_is_a_distribution(a in tensor_strategy(4, 6)) {
        let s = a.softmax_rows();
        for r in 0..4 {
            let row = s.row_slice(r);
            prop_assert!(row.iter().all(|&v| v >= 0.0));
            let sum: f32 = row.iter().sum();
            prop_assert!(close(sum, 1.0));
        }
    }

    #[test]
    fn stacking_roundtrips(a in tensor_strategy(2, 3), b in tensor_strategy(2, 3)) {
        let v = Tensor::vstack(&[&a, &b]);
        prop_assert_eq!(v.shape(), (4, 3));
        prop_assert_eq!(v.row_slice(0), a.row_slice(0));
        prop_assert_eq!(v.row_slice(2), b.row_slice(0));
        let h = Tensor::hstack(&[&a, &b]);
        prop_assert_eq!(h.shape(), (2, 6));
        prop_assert_eq!(&h.row_slice(0)[..3], a.row_slice(0));
        prop_assert_eq!(&h.row_slice(0)[3..], b.row_slice(0));
    }

    // ---- autodiff gradients on random compositions -----------------------

    #[test]
    fn grad_check_random_composition(
        w_data in prop::collection::vec(-0.9f32..0.9, 6),
        x_data in prop::collection::vec(-0.9f32..0.9, 6),
        ops in prop::collection::vec(0u8..5, 1..4),
    ) {
        // Build the same graph twice with a parameter perturbed; compare
        // analytic and numeric derivatives of a scalar output.
        let build = |p: &Param| -> f32 {
            let mut g = Graph::new();
            let w = g.param(p);
            let x = g.input(Tensor::from_vec(2, 3, x_data.clone()));
            let mut cur = g.add(w, x);
            for &op in &ops {
                cur = match op {
                    0 => g.tanh(cur),
                    1 => g.sigmoid(cur),
                    // ReLU is excluded: finite differences are wrong at the
                    // kink (it has a dedicated grad check in unit tests);
                    // scale stands in as the piecewise-linear smooth op.
                    2 => g.scale(cur, 0.7),
                    3 => g.softmax_rows(cur),
                    _ => {
                        let t = g.transpose(cur);
                        g.transpose(t)
                    }
                };
            }
            let loss = g.sum_all(cur);
            g.backward(loss);
            g.value(loss).item()
        };
        let p = Param::new("w", Tensor::from_vec(2, 3, w_data.clone()));
        let _ = build(&p);
        let analytic = p.grad().clone();
        let eps = 1e-2f32;
        for k in 0..6 {
            let orig = p.value().data()[k];
            p.zero_grad();
            p.value_mut().data_mut()[k] = orig + eps;
            let f1 = build(&p);
            p.zero_grad();
            p.value_mut().data_mut()[k] = orig - eps;
            let f2 = build(&p);
            p.value_mut().data_mut()[k] = orig;
            p.zero_grad();
            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.data()[k];
            prop_assert!(
                (a - numeric).abs() < 0.05 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {k}: analytic {a} vs numeric {numeric} (ops {ops:?})"
            );
        }
    }

    #[test]
    fn bce_loss_is_nonnegative_and_bounded_gradient(
        logits in prop::collection::vec(-8.0f32..8.0, 1..6),
        labels in prop::collection::vec(any::<bool>(), 6),
    ) {
        let n = logits.len();
        let targets: Vec<f32> = labels.iter().take(n).map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let p = Param::new("l", Tensor::from_vec(n, 1, logits));
        let mut g = Graph::new();
        let node = g.param(&p);
        let loss = g.bce_with_logits(node, &targets);
        prop_assert!(g.value(loss).item() >= 0.0);
        g.backward(loss);
        // d/dx of mean BCE is (sigmoid(x) - t)/n, bounded by 1/n.
        for &gv in p.grad().data() {
            prop_assert!(gv.abs() <= 1.0 / n as f32 + 1e-6);
        }
    }
}
