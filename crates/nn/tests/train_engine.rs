//! Integration tests of the shared training engine: the byte-identical
//! worker-parity contract on random synthetic datasets, and the uniform
//! gradient-norm clip as a regression guard against exploding losses.

use alicoco_nn::param::{ParamSet, Sgd};
use alicoco_nn::tensor::Tensor;
use alicoco_nn::train::{TrainConfig, Trainer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Train a tiny linear model `loss = sum((x·W - y)^2)` on `data` and return
/// the per-epoch mean losses plus the final parameter snapshot.
fn run(
    cfg: TrainConfig,
    dim: usize,
    data: &[(Vec<f32>, f32)],
    seed: u64,
) -> (Vec<f32>, Vec<Tensor>) {
    let mut ps = ParamSet::new();
    let mut init = StdRng::seed_from_u64(seed ^ 0x5eed);
    let w = ps.add("w", Tensor::xavier(dim, 1, &mut init));
    let mut opt = Sgd::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(seed);
    let trainer = Trainer::new(&ps, cfg);
    let stats = trainer.train(
        &mut opt,
        data,
        |g, (x, y): &(Vec<f32>, f32)| {
            let wn = g.param(&w);
            let xn = g.input(Tensor::from_vec(1, x.len(), x.clone()));
            let yn = g.input(Tensor::scalar(*y));
            let pred = g.matmul(xn, wn);
            let d = g.sub(pred, yn);
            let sq = g.mul(d, d);
            Some(g.sum_all(sq))
        },
        &mut rng,
    );
    (stats.iter().map(|s| s.mean_loss).collect(), ps.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole determinism guarantee: for any random dataset, feature
    /// dimension, batch size (including batches far larger than the merge
    /// lane cap, and tail batches smaller than the worker count), and seed,
    /// training with 1 worker and with 2..=8 workers yields bit-identical
    /// per-epoch losses and final parameters. `min_threads` forces a real
    /// worker pool even on machines whose available parallelism is 1, so
    /// the pooled code path itself is what gets exercised.
    #[test]
    fn worker_parity_on_random_datasets(
        dim in 1usize..5,
        n in 3usize..40,
        batch_ix in 0usize..4,
        seed in 0u64..1000,
        raw in prop::collection::vec(-2.0f32..2.0, 5 * 40 + 40),
    ) {
        let batch = [1usize, 3, 8, 32][batch_ix];
        let data: Vec<(Vec<f32>, f32)> = (0..n)
            .map(|i| {
                let x: Vec<f32> = (0..dim).map(|j| raw[i * dim + j]).collect();
                (x, raw[5 * 40 + i])
            })
            .collect();
        let cfg = TrainConfig::new(3, 0.02).with_batch_size(batch);
        let (base_losses, base_params) = run(cfg.clone(), dim, &data, seed);
        for workers in 2..=8 {
            let (losses, params) = run(
                cfg.clone().with_workers(workers).with_min_threads(workers),
                dim,
                &data,
                seed,
            );
            for (a, b) in base_losses.iter().zip(&losses) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "loss drift at {} workers", workers);
            }
            for (a, b) in base_params.iter().zip(&params) {
                prop_assert_eq!(a.data(), b.data(), "param drift at {} workers", workers);
            }
        }
    }
}

/// A dataset whose final batch is smaller than the worker count (7 examples
/// at batch 32 → one 7-example batch; 9 at batch 8 → tail of 1) must still
/// be byte-identical across worker counts — the lane plan, not the worker
/// count, decides the merge grouping.
#[test]
fn tail_batches_smaller_than_worker_count_keep_parity() {
    for (n, batch) in [(7usize, 32usize), (9, 8), (5, 3)] {
        let raw: Vec<f32> = (0..n * 3 + n)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) / 5.0)
            .collect();
        let data: Vec<(Vec<f32>, f32)> = (0..n)
            .map(|i| (raw[i * 3..i * 3 + 3].to_vec(), raw[n * 3 + i]))
            .collect();
        let cfg = TrainConfig::new(2, 0.02).with_batch_size(batch);
        let (base_losses, base_params) = run(cfg.clone(), 3, &data, 42);
        for workers in [2usize, 6, 8] {
            let (losses, params) = run(
                cfg.clone().with_workers(workers).with_min_threads(workers),
                3,
                &data,
                42,
            );
            for (a, b) in base_losses.iter().zip(&losses) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "loss drift: n={n} batch={batch} workers={workers}"
                );
            }
            for (a, b) in base_params.iter().zip(&params) {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "param drift: n={n} batch={batch} workers={workers}"
                );
            }
        }
    }
}

/// A huge-magnitude example drives the squared-error gradient to ~1e21;
/// without clipping, a single SGD step flings the weight to ~1e19 and the
/// next forward pass overflows `f32` — the failure mode
/// `TrainConfig::clip_norm` exists to prevent.
fn pathological_losses(clip: bool) -> Vec<f32> {
    let mut ps = ParamSet::new();
    let w = ps.add("w", Tensor::scalar(1.0));
    let mut cfg = TrainConfig::new(4, 0.1);
    if !clip {
        cfg.clip_norm = None;
    }
    let mut opt = Sgd::new(cfg.lr);
    if !clip {
        // Sgd carries its own defensive clip; disable it too so the test
        // exercises the no-clip failure mode end to end.
        opt.clip = None;
    }
    let mut rng = StdRng::seed_from_u64(9);
    let trainer = Trainer::new(&ps, cfg);
    // Large but finite input: pre-clip gradients stay finite, so the global
    // norm clip can rescale them (an infinite gradient would clip to NaN).
    let data = [(1e10f32, 1.0f32), (1.0, 2.0)];
    let stats = trainer.train(
        &mut opt,
        &data,
        |g, &(x, y)| {
            let wn = g.param(&w);
            let xn = g.input(Tensor::scalar(x));
            let yn = g.input(Tensor::scalar(y));
            let pred = g.mul(wn, xn);
            let d = g.sub(pred, yn);
            let sq = g.mul(d, d);
            Some(g.sum_all(sq))
        },
        &mut rng,
    );
    stats.iter().map(|s| s.mean_loss).collect()
}

#[test]
fn clip_norm_keeps_pathological_example_finite() {
    let clipped = pathological_losses(true);
    assert!(
        clipped.iter().all(|l| l.is_finite()),
        "clipped training produced a non-finite loss: {clipped:?}"
    );
    // The same run with all clipping disabled must exhibit the failure the
    // clip guards against, proving the regression test has teeth.
    let unclipped = pathological_losses(false);
    assert!(
        unclipped.iter().any(|l| !l.is_finite()),
        "expected the unclipped run to diverge, got {unclipped:?}"
    );
}
