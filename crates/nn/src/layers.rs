//! Basic trainable layers: linear, embedding, MLP.

use rand::Rng;

use crate::graph::{Graph, NodeId};
use crate::param::{Param, ParamSet};
use crate::tensor::Tensor;

/// Activation functions selectable in composite layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Sigmoid.
    Sigmoid,
    /// Tanh.
    Tanh,
    /// Relu.
    Relu,
    /// No activation (identity).
    None,
}

impl Activation {
    /// Apply.
    pub fn apply(self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Tanh => g.tanh(x),
            Activation::Relu => g.relu(x),
            Activation::None => x,
        }
    }
}

/// Fully connected layer `y = x W + b` with `W: (in, out)`, `b: (1, out)`.
pub struct Linear {
    /// W.
    pub w: Param,
    /// B.
    pub b: Param,
}

impl Linear {
    /// Create a new instance.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        name: &str,
        input: usize,
        output: usize,
        rng: &mut R,
    ) -> Self {
        let w = ps.add(format!("{name}.w"), Tensor::xavier(input, output, rng));
        let b = ps.add(format!("{name}.b"), Tensor::zeros(1, output));
        Linear { w, b }
    }

    /// `x: (m, in) -> (m, out)`.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let w = g.param(&self.w);
        let b = g.param(&self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }

    /// Output embedding dimension.
    pub fn output_dim(&self) -> usize {
        self.w.value().cols()
    }
}

/// Embedding table: rows are vectors for ids `0..vocab`.
pub struct Embedding {
    /// Table.
    pub table: Param,
}

impl Embedding {
    /// Create a new instance.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        // Small uniform init, as is conventional for embeddings.
        let table = ps.add(
            format!("{name}.table"),
            Tensor::uniform(vocab, dim, 0.1, rng),
        );
        Embedding { table }
    }

    /// Build an embedding layer from pre-trained vectors (fine-tuned during
    /// training, matching the paper's use of pre-trained word embeddings).
    pub fn from_pretrained(ps: &mut ParamSet, name: &str, table: Tensor) -> Self {
        let table = ps.add(format!("{name}.table"), table);
        Embedding { table }
    }

    /// Build a *frozen* embedding layer from pre-trained vectors: the table
    /// is not registered with the optimizer's parameter set, so it never
    /// updates. Use when fine-tuning on small data would destroy the
    /// pre-trained geometry that generalization depends on.
    pub fn from_pretrained_frozen(name: &str, table: Tensor) -> Self {
        Embedding {
            table: crate::param::Param::new(format!("{name}.table"), table),
        }
    }

    /// `ids -> (ids.len(), dim)`.
    pub fn forward(&self, g: &mut Graph, ids: &[usize]) -> NodeId {
        g.lookup(&self.table, ids)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value().cols()
    }

    /// Vocab.
    pub fn vocab(&self) -> usize {
        self.table.value().rows()
    }
}

/// Multi-layer perceptron: hidden layers use `activation`, the final layer is
/// linear (producing logits).
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// `dims` is `[input, hidden..., output]` and must have at least two
    /// entries.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(ps, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Run the forward pass.
    pub fn forward(&self, g: &mut Graph, mut x: NodeId) -> NodeId {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, x);
            if i < last {
                x = self.activation.apply(g, x);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Adam, Optimizer};
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(5, 4));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (5, 3));
        assert_eq!(lin.output_dim(), 3);
    }

    #[test]
    fn embedding_shapes_and_vocab() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let emb = Embedding::new(&mut ps, "e", 10, 6, &mut rng);
        assert_eq!(emb.vocab(), 10);
        assert_eq!(emb.dim(), 6);
        let mut g = Graph::new();
        let e = emb.forward(&mut g, &[1, 5, 9]);
        assert_eq!(g.value(e).shape(), (3, 6));
    }

    #[test]
    fn mlp_learns_xor() {
        // The classic nonlinear sanity check: a 2-4-1 MLP must fit XOR.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(&mut ps, "xor", &[2, 8, 1], Activation::Tanh, &mut rng);
        let mut opt = Adam::new(0.05);
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..400 {
            let mut g = Graph::new();
            let mut losses = Vec::new();
            for (x, t) in &data {
                let input = g.input(Tensor::row(x.to_vec()));
                let logit = mlp.forward(&mut g, input);
                losses.push(g.bce_with_logits(logit, &[*t]));
            }
            let l01 = g.add(losses[0], losses[1]);
            let l23 = g.add(losses[2], losses[3]);
            let total = g.add(l01, l23);
            g.backward(total);
            opt.step(&ps);
        }
        for (x, t) in &data {
            let mut g = Graph::new();
            let input = g.input(Tensor::row(x.to_vec()));
            let logit = mlp.forward(&mut g, input);
            let p = 1.0 / (1.0 + (-g.value(logit).item()).exp());
            assert!(
                (p - t).abs() < 0.25,
                "xor({x:?}) predicted {p}, expected {t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_rejects_single_dim() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let _ = Mlp::new(&mut ps, "bad", &[4], Activation::Relu, &mut rng);
    }
}
