//! 1-D convolution over token sequences.
//!
//! Used for the char-level CNN in the concept-tagging model (§5.3.1, eq. 4–5)
//! and the wide CNN encoders in the semantic-matching model (§6, eq. 9–10).

use rand::Rng;

use crate::graph::{Graph, NodeId};
use crate::layers::Linear;
use crate::param::ParamSet;
use crate::tensor::Tensor;

/// Convolution along the row (time) axis of a `(T, in)` matrix with an odd
/// window size `k` and zero padding, producing `(T, out)`.
///
/// Implemented as a window-unfold followed by one shared linear map — exactly
/// the im2col formulation of a convolution.
pub struct Conv1d {
    proj: Linear,
    window: usize,
    input: usize,
}

impl Conv1d {
    /// # Panics
    /// Panics if `window` is even (the paper's CNNs center each window on a
    /// token).
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        name: &str,
        input: usize,
        output: usize,
        window: usize,
        rng: &mut R,
    ) -> Self {
        assert!(window % 2 == 1, "Conv1d window must be odd, got {window}");
        Conv1d {
            proj: Linear::new(ps, name, window * input, output, rng),
            window,
            input,
        }
    }

    /// `(T, in) -> (T, out)`.
    pub fn forward(&self, g: &mut Graph, xs: NodeId) -> NodeId {
        let t_len = g.value(xs).rows();
        assert!(t_len > 0, "Conv1d over empty sequence");
        assert_eq!(g.value(xs).cols(), self.input, "Conv1d input dim mismatch");
        let half = self.window / 2;
        let pad = g.input(Tensor::zeros(1, self.input));
        let mut rows: Vec<NodeId> = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let mut parts: Vec<NodeId> = Vec::with_capacity(self.window);
            for off in -(half as isize)..=(half as isize) {
                let pos = t as isize + off;
                if pos < 0 || pos >= t_len as isize {
                    parts.push(pad);
                } else {
                    parts.push(g.slice_rows(xs, pos as usize, 1));
                }
            }
            rows.push(g.concat_cols(&parts));
        }
        let unfolded = g.concat_rows(&rows);
        self.proj.forward(g, unfolded)
    }

    /// Output embedding dimension.
    pub fn output_dim(&self) -> usize {
        self.proj.output_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn conv_output_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let conv = Conv1d::new(&mut ps, "c", 4, 6, 3, &mut rng);
        let mut g = Graph::new();
        let xs = g.input(Tensor::zeros(5, 4));
        let y = conv.forward(&mut g, xs);
        assert_eq!(g.value(y).shape(), (5, 6));
        assert_eq!(conv.output_dim(), 6);
    }

    #[test]
    fn conv_is_translation_consistent_in_interior() {
        // A pattern moved by one position (away from the boundary) must yield
        // the same activation, shifted by one.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let conv = Conv1d::new(&mut ps, "c", 1, 3, 3, &mut rng);
        let run = |seq: Vec<f32>| {
            let mut g = Graph::new();
            let xs = g.input(Tensor::from_vec(seq.len(), 1, seq));
            let y = conv.forward(&mut g, xs);
            g.value(y).clone()
        };
        let a = run(vec![0.0, 1.0, 2.0, 3.0, 0.0, 0.0]);
        let b = run(vec![0.0, 0.0, 1.0, 2.0, 3.0, 0.0]);
        for c in 0..3 {
            assert!((a.get(2, c) - b.get(3, c)).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "window must be odd")]
    fn even_window_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let _ = Conv1d::new(&mut ps, "c", 2, 2, 4, &mut rng);
    }

    #[test]
    fn conv_gradient_flows_to_projection() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let conv = Conv1d::new(&mut ps, "c", 2, 2, 3, &mut rng);
        let mut g = Graph::new();
        let xs = g.input(Tensor::from_vec(3, 2, vec![0.5; 6]));
        let y = conv.forward(&mut g, xs);
        let loss = g.sum_all(y);
        g.backward(loss);
        let wg = conv.proj.w.grad();
        assert!(
            wg.data().iter().any(|&v| v != 0.0),
            "no gradient reached conv weights"
        );
    }
}
