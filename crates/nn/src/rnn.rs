//! LSTM and bidirectional LSTM over `(seq_len, dim)` matrices.
//!
//! The BiLSTM is the workhorse encoder of every sequence model in the paper
//! (vocabulary mining §4.1, concept classification §5.2.2, concept tagging
//! §5.3).

use rand::Rng;

use crate::graph::{Graph, NodeId};
use crate::layers::Linear;
use crate::param::ParamSet;
use crate::tensor::Tensor;

/// A single-direction LSTM.
///
/// Gates are parameterized as four linear maps over `[x_t ; h_{t-1}]`.
pub struct Lstm {
    wi: Linear,
    wf: Linear,
    wo: Linear,
    wg: Linear,
    hidden: usize,
}

impl Lstm {
    /// Create a new instance.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let cat = input + hidden;
        let cell = Lstm {
            wi: Linear::new(ps, &format!("{name}.wi"), cat, hidden, rng),
            wf: Linear::new(ps, &format!("{name}.wf"), cat, hidden, rng),
            wo: Linear::new(ps, &format!("{name}.wo"), cat, hidden, rng),
            wg: Linear::new(ps, &format!("{name}.wg"), cat, hidden, rng),
            hidden,
        };
        // Forget-gate bias of 1.0: the standard trick to ease gradient flow
        // early in training.
        cell.wf
            .b
            .value_mut()
            .data_mut()
            .iter_mut()
            .for_each(|v| *v = 1.0);
        cell
    }

    /// Hidden embedding dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Run over the rows of `xs` (`(T, input)`), returning the hidden state
    /// at every step as a `(T, hidden)` matrix. If `reverse` is set the
    /// sequence is processed right-to-left but the output rows stay in the
    /// original order.
    pub fn forward(&self, g: &mut Graph, xs: NodeId, reverse: bool) -> NodeId {
        let t_len = g.value(xs).rows();
        assert!(t_len > 0, "LSTM over empty sequence");
        let mut h = g.input(Tensor::zeros(1, self.hidden));
        let mut c = g.input(Tensor::zeros(1, self.hidden));
        let mut outputs: Vec<NodeId> = vec![h; t_len];
        let order: Vec<usize> = if reverse {
            (0..t_len).rev().collect()
        } else {
            (0..t_len).collect()
        };
        for t in order {
            let xt = g.slice_rows(xs, t, 1);
            let cat = g.concat_cols(&[xt, h]);
            let i_lin = self.wi.forward(g, cat);
            let i = g.sigmoid(i_lin);
            let f_lin = self.wf.forward(g, cat);
            let f = g.sigmoid(f_lin);
            let o_lin = self.wo.forward(g, cat);
            let o = g.sigmoid(o_lin);
            let g_lin = self.wg.forward(g, cat);
            let cand = g.tanh(g_lin);
            let fc = g.mul(f, c);
            let ic = g.mul(i, cand);
            c = g.add(fc, ic);
            let tc = g.tanh(c);
            h = g.mul(o, tc);
            outputs[t] = h;
        }
        g.concat_rows(&outputs)
    }
}

/// Bidirectional LSTM: concatenates forward and backward hidden states, so
/// the output is `(T, 2 * hidden)`.
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
}

impl BiLstm {
    /// Create a new instance.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        BiLstm {
            fwd: Lstm::new(ps, &format!("{name}.fwd"), input, hidden, rng),
            bwd: Lstm::new(ps, &format!("{name}.bwd"), input, hidden, rng),
        }
    }

    /// `(T, input) -> (T, 2*hidden)`.
    pub fn forward(&self, g: &mut Graph, xs: NodeId) -> NodeId {
        let f = self.fwd.forward(g, xs, false);
        let b = self.bwd.forward(g, xs, true);
        g.concat_cols(&[f, b])
    }

    /// Output embedding dimension.
    pub fn output_dim(&self) -> usize {
        self.fwd.hidden_dim() + self.bwd.hidden_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Adam, Optimizer};
    use rand::SeedableRng;

    #[test]
    fn lstm_output_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let lstm = Lstm::new(&mut ps, "l", 3, 5, &mut rng);
        let mut g = Graph::new();
        let xs = g.input(Tensor::zeros(7, 3));
        let hs = lstm.forward(&mut g, xs, false);
        assert_eq!(g.value(hs).shape(), (7, 5));
    }

    #[test]
    fn bilstm_output_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let bi = BiLstm::new(&mut ps, "b", 3, 4, &mut rng);
        assert_eq!(bi.output_dim(), 8);
        let mut g = Graph::new();
        let xs = g.input(Tensor::zeros(6, 3));
        let hs = bi.forward(&mut g, xs);
        assert_eq!(g.value(hs).shape(), (6, 8));
    }

    #[test]
    fn reverse_direction_sees_future_context() {
        // With a reversed LSTM, the output at position 0 must depend on the
        // input at the last position.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let lstm = Lstm::new(&mut ps, "r", 2, 3, &mut rng);

        let run = |last: f32| {
            let mut g = Graph::new();
            let xs = g.input(Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, last, last]));
            let hs = lstm.forward(&mut g, xs, true);
            g.value(hs).row_slice(0).to_vec()
        };
        let a = run(0.0);
        let b = run(1.0);
        assert_ne!(a, b, "reversed LSTM output at t=0 ignored input at t=2");

        // And a forward LSTM's first output must NOT depend on the future.
        let run_fwd = |last: f32| {
            let mut g = Graph::new();
            let xs = g.input(Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, last, last]));
            let hs = lstm.forward(&mut g, xs, false);
            g.value(hs).row_slice(0).to_vec()
        };
        assert_eq!(run_fwd(0.0), run_fwd(1.0));
    }

    #[test]
    fn lstm_learns_sequence_parity_of_first_token() {
        // Train a tiny classifier: label = first element of the sequence.
        // Only the backward direction can carry this to the last position, so
        // use a BiLSTM and read the final row.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let bi = BiLstm::new(&mut ps, "b", 1, 4, &mut rng);
        let head = crate::layers::Linear::new(&mut ps, "head", 8, 1, &mut rng);
        let mut opt = Adam::new(0.05);
        let seqs: Vec<(Vec<f32>, f32)> = vec![
            (vec![1.0, 0.3, 0.7], 1.0),
            (vec![0.0, 0.3, 0.7], 0.0),
            (vec![1.0, 0.9, 0.1], 1.0),
            (vec![0.0, 0.9, 0.1], 0.0),
        ];
        for _ in 0..150 {
            for (seq, label) in &seqs {
                let mut g = Graph::new();
                let xs = g.input(Tensor::from_vec(seq.len(), 1, seq.clone()));
                let hs = bi.forward(&mut g, xs);
                let last = g.slice_rows(hs, seq.len() - 1, 1);
                let logit = head.forward(&mut g, last);
                let loss = g.bce_with_logits(logit, &[*label]);
                g.backward(loss);
                opt.step(&ps);
            }
        }
        for (seq, label) in &seqs {
            let mut g = Graph::new();
            let xs = g.input(Tensor::from_vec(seq.len(), 1, seq.clone()));
            let hs = bi.forward(&mut g, xs);
            let last = g.slice_rows(hs, seq.len() - 1, 1);
            let logit = head.forward(&mut g, last);
            let p = 1.0 / (1.0 + (-g.value(logit).item()).exp());
            assert!(
                (p - label).abs() < 0.3,
                "seq {seq:?}: got {p}, want {label}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn lstm_rejects_empty_sequence() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let lstm = Lstm::new(&mut ps, "l", 2, 2, &mut rng);
        let mut g = Graph::new();
        let xs = g.input(Tensor::zeros(0, 2));
        lstm.forward(&mut g, xs, false);
    }
}
