//! Unified data-parallel training engine for the five construction models.
//!
//! Every model in `alicoco-mining` (§7 of the paper: vocabulary mining,
//! hypernym discovery, concept classification, concept tagging, semantic
//! matching) trains the same way: shuffle the examples each epoch, build a
//! fresh [`Graph`] tape per example, run forward/backward, clip the global
//! gradient norm, and take an optimizer step. [`Trainer`] owns that loop
//! once, adding two things the hand-rolled loops lacked:
//!
//! - **Data parallelism with a determinism guarantee.** A mini-batch is
//!   sharded across [`std::thread::scope`] workers; each worker runs
//!   forward/backward into a private [`GradShadow`], and the trainer merges
//!   the shadows *in example order* on the calling thread before the single
//!   optimizer step. Summation order is therefore independent of
//!   [`TrainConfig::workers`], making losses and final parameters
//!   byte-identical for any worker count (the training-side mirror of
//!   `search_batch`'s parity contract from the serving layer).
//! - **Generalized early stopping.** [`StopCriterion::BestSnapshot`] lifts
//!   `congen`'s validation-driven best-parameter snapshot/restore so any
//!   model can use it, with optional patience.
//!
//! With `batch_size = 1` and `workers = 1` (the defaults) the engine is
//! arithmetically identical to the per-example loops it replaced: the same
//! RNG draws, the same per-example optimizer steps, the same loss telemetry.

use std::time::Instant;

use rand::seq::SliceRandom;
use rand::Rng;

use alicoco_obs::Registry;

use crate::graph::{Graph, NodeId};
use crate::param::{GradShadow, Optimizer, ParamSet};
use crate::tensor::Tensor;

/// Shared hyper-parameters of the training loop. Each model config embeds
/// one of these (replacing the per-module `{epochs, lr}` pairs).
#[derive(Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Learning rate handed to the optimizer the model constructs.
    pub lr: f32,
    /// Global gradient-norm clip applied before every optimizer step.
    pub clip_norm: Option<f32>,
    /// Examples per optimizer step. `1` reproduces per-example stepping.
    pub batch_size: usize,
    /// Worker threads a batch is sharded across. Any value produces
    /// byte-identical results; more workers only change wall-clock time.
    pub workers: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            lr: 0.01,
            clip_norm: Some(5.0),
            batch_size: 1,
            workers: 1,
        }
    }
}

impl TrainConfig {
    /// Create a new instance with default clipping and sharding.
    pub fn new(epochs: usize, lr: f32) -> Self {
        TrainConfig {
            epochs,
            lr,
            ..TrainConfig::default()
        }
    }

    /// Builder-style epoch override.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style learning-rate override.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Builder-style batch-size override.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder-style worker-count override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// When the epoch loop ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCriterion {
    /// Run exactly [`TrainConfig::epochs`] epochs.
    FixedEpochs,
    /// Evaluate the metric closure after every epoch, snapshot the
    /// parameters whenever it strictly improves, and restore the best
    /// snapshot when training ends. With `patience: Some(p)`, stop after
    /// `p` consecutive epochs without improvement; `None` always runs the
    /// full epoch budget (as `congen::train_with_validation` did).
    BestSnapshot {
        /// Consecutive non-improving epochs tolerated before stopping.
        patience: Option<usize>,
    },
}

/// One epoch of a raw training loop run by [`Trainer::run_raw`]: the epoch
/// index, the total epoch budget, and the scheduled learning rate.
#[derive(Clone, Copy, Debug)]
pub struct RawEpoch {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Total epoch budget ([`TrainConfig::epochs`]).
    pub epochs: usize,
    /// Linearly decayed learning rate for this epoch:
    /// `lr * max(1 - epoch / epochs, floor)`.
    pub lr: f32,
}

/// Per-epoch telemetry returned by [`Trainer::train`].
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Examples that produced a loss (skipped examples excluded).
    pub examples: usize,
    /// Total loss divided by the dataset size (matching the historical
    /// per-module telemetry, which averaged over all examples).
    pub mean_loss: f32,
    /// Validation metric `(key, secondary)` under
    /// [`StopCriterion::BestSnapshot`]; `None` for fixed-epoch runs.
    pub metric: Option<(f64, f64)>,
    /// Wall-clock nanoseconds the epoch took (forward/backward, merge, and
    /// optimizer steps; excludes the validation-metric closure).
    pub elapsed_ns: u64,
}

/// Bridge per-epoch telemetry into a metrics [`Registry`] under the
/// `train.<model>.*` namespace: epoch and example counters, an epoch
/// wall-clock histogram, and a gauge holding the final mean loss. The
/// pipeline calls this once per model after training; benches and the CLI
/// export it alongside the serving metrics.
pub fn record_epoch_stats(reg: &Registry, model: &str, stats: &[EpochStats]) {
    if stats.is_empty() {
        return;
    }
    let epochs = reg.counter(format!("train.{model}.epochs").as_str());
    let examples = reg.counter(format!("train.{model}.examples").as_str());
    let epoch_ns = reg.histogram(format!("train.{model}.epoch_ns").as_str());
    for s in stats {
        epochs.inc();
        examples.add(s.examples as u64);
        epoch_ns.record(s.elapsed_ns);
    }
    if let Some(last) = stats.last() {
        reg.gauge(format!("train.{model}.mean_loss").as_str())
            .set(f64::from(last.mean_loss));
    }
}

/// The shared training loop. Borrows the model's [`ParamSet`]; the forward
/// pass is a closure so each model keeps its own architecture code.
pub struct Trainer<'a> {
    params: &'a ParamSet,
    cfg: TrainConfig,
}

impl<'a> Trainer<'a> {
    /// Create a new instance.
    pub fn new(params: &'a ParamSet, cfg: TrainConfig) -> Self {
        Trainer { params, cfg }
    }

    /// The configuration this trainer runs with.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Run a raw (non-autodiff) training loop: the counterpart of
    /// [`Trainer::train`] for hot-loop models that own their parameter
    /// arrays directly (the SGNS-style embedding trainers in
    /// `alicoco-text`). The engine owns the epoch iteration and the linear
    /// learning-rate decay schedule — no module needs a private epoch loop —
    /// while `epoch_body` performs the model's own updates for one full
    /// pass over its data at the scheduled rate.
    ///
    /// The schedule is `cfg.lr * max(1 - epoch / epochs, lr_floor)`; a
    /// floor of `1.0` yields a constant `cfg.lr` for every epoch (used by
    /// inference-time optimization and loops with their own finer-grained
    /// schedule). The RNG is threaded through untouched, so a migrated loop
    /// draws exactly the sequence its hand-rolled predecessor drew.
    pub fn run_raw<R, F>(cfg: &TrainConfig, lr_floor: f32, rng: &mut R, mut epoch_body: F)
    where
        R: Rng + ?Sized,
        F: FnMut(RawEpoch, &mut R),
    {
        for epoch in 0..cfg.epochs {
            let lr = cfg.lr * (1.0 - epoch as f32 / cfg.epochs as f32).max(lr_floor);
            epoch_body(
                RawEpoch {
                    epoch,
                    epochs: cfg.epochs,
                    lr,
                },
                rng,
            );
        }
    }

    /// Train for [`TrainConfig::epochs`] epochs. `forward` builds the loss
    /// for one example on a fresh tape, returning `None` to skip it (e.g.
    /// empty token lists); skipped examples consume no optimizer step.
    pub fn train<E, F, R>(
        &self,
        opt: &mut dyn Optimizer,
        data: &[E],
        forward: F,
        rng: &mut R,
    ) -> Vec<EpochStats>
    where
        E: Sync,
        F: Fn(&mut Graph, &E) -> Option<NodeId> + Sync,
        R: Rng + ?Sized,
    {
        self.train_with(
            opt,
            data,
            forward,
            StopCriterion::FixedEpochs,
            || (0.0, 0.0),
            rng,
        )
    }

    /// Train with an explicit stop criterion. Under
    /// [`StopCriterion::BestSnapshot`] the `metric` closure is called after
    /// each epoch and must return `(key, secondary)` ordered so that larger
    /// tuples are better; the parameters of the best epoch are restored
    /// before returning.
    pub fn train_with<E, F, M, R>(
        &self,
        opt: &mut dyn Optimizer,
        data: &[E],
        forward: F,
        stop: StopCriterion,
        mut metric: M,
        rng: &mut R,
    ) -> Vec<EpochStats>
    where
        E: Sync,
        F: Fn(&mut Graph, &E) -> Option<NodeId> + Sync,
        M: FnMut() -> (f64, f64),
        R: Rng + ?Sized,
    {
        let batch_size = self.cfg.batch_size.max(1);
        // The order vector persists across epochs and is shuffled in place,
        // exactly as the per-module loops did, so seeded runs reproduce the
        // historical permutation sequence.
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut stats = Vec::new();
        let mut best: Option<((f64, f64), Vec<Tensor>)> = None;
        let mut stale = 0usize;

        for epoch in 0..self.cfg.epochs {
            let epoch_start = Instant::now();
            order.shuffle(rng);
            let mut total = 0.0f32;
            let mut trained = 0usize;
            for batch in order.chunks(batch_size) {
                let results = self.run_batch(data, batch, &forward);
                let mut any = false;
                // Deterministic merge: example order within the batch, then
                // ParamSet registration order within each shadow.
                for (loss, shadow) in results.iter().flatten() {
                    total += *loss;
                    trained += 1;
                    any = true;
                    shadow.merge_into(self.params);
                }
                if !any {
                    continue;
                }
                if let Some(c) = self.cfg.clip_norm {
                    self.params.clip_grad_norm(c);
                }
                opt.step(self.params);
            }

            let mut epoch_stats = EpochStats {
                epoch,
                examples: trained,
                mean_loss: total / data.len().max(1) as f32,
                metric: None,
                elapsed_ns: epoch_start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            };
            match stop {
                StopCriterion::FixedEpochs => stats.push(epoch_stats),
                StopCriterion::BestSnapshot { patience } => {
                    let key = metric();
                    epoch_stats.metric = Some(key);
                    stats.push(epoch_stats);
                    if best.as_ref().is_none_or(|(k, _)| key > *k) {
                        best = Some((key, self.params.snapshot()));
                        stale = 0;
                    } else {
                        stale += 1;
                        if patience.is_some_and(|p| stale >= p) {
                            break;
                        }
                    }
                }
            }
        }

        if let Some((_, weights)) = best {
            self.params.restore(&weights);
        }
        stats
    }

    /// Forward/backward every example of `batch`, each on a fresh tape with
    /// gradients captured in a private [`GradShadow`]. With more than one
    /// worker the batch is split into contiguous shards; results come back
    /// in batch order regardless of which thread produced them.
    fn run_batch<E, F>(
        &self,
        data: &[E],
        batch: &[usize],
        forward: &F,
    ) -> Vec<Option<(f32, GradShadow)>>
    where
        E: Sync,
        F: Fn(&mut Graph, &E) -> Option<NodeId> + Sync,
    {
        let workers = self.cfg.workers.max(1).min(batch.len());
        if workers <= 1 {
            return batch
                .iter()
                .map(|&ix| run_example(&data[ix], forward))
                .collect();
        }
        let shard = batch.len().div_ceil(workers);
        let mut out = Vec::with_capacity(batch.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = batch
                .chunks(shard)
                .map(|part| {
                    s.spawn(move || {
                        part.iter()
                            .map(|&ix| run_example(&data[ix], forward))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("training worker panicked"));
            }
        });
        out
    }
}

fn run_example<E, F>(example: &E, forward: &F) -> Option<(f32, GradShadow)>
where
    F: Fn(&mut Graph, &E) -> Option<NodeId>,
{
    let mut g = Graph::new();
    let loss = forward(&mut g, example)?;
    let mut shadow = GradShadow::new();
    g.backward_shadow(loss, &mut shadow);
    Some((g.value(loss).item(), shadow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One linear weight trained on scalar regression; loss (w·x - y)^2.
    fn fit(cfg: TrainConfig, data: &[(f32, f32)], seed: u64) -> (Vec<EpochStats>, Vec<Tensor>) {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(1, 1));
        let mut opt = Sgd::new(cfg.lr);
        let mut rng = StdRng::seed_from_u64(seed);
        let trainer = Trainer::new(&ps, cfg);
        let stats = trainer.train(
            &mut opt,
            data,
            |g, &(x, y)| {
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let yn = g.input(Tensor::scalar(y));
                let pred = g.mul(wn, xn);
                let d = g.sub(pred, yn);
                let sq = g.mul(d, d);
                Some(g.sum_all(sq))
            },
            &mut rng,
        );
        (stats, ps.snapshot())
    }

    #[test]
    fn trainer_fits_a_line() {
        let data: Vec<(f32, f32)> = (0..16).map(|i| (i as f32 / 8.0, i as f32 / 4.0)).collect();
        let (stats, snap) = fit(TrainConfig::new(40, 0.05), &data, 7);
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
        assert!((snap[0].item() - 2.0).abs() < 0.05);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let data: Vec<(f32, f32)> = (0..23).map(|i| (i as f32 / 10.0, i as f32 / 5.0)).collect();
        let base = fit(TrainConfig::new(3, 0.05).with_batch_size(4), &data, 11);
        for workers in 2..=4 {
            let par = fit(
                TrainConfig::new(3, 0.05)
                    .with_batch_size(4)
                    .with_workers(workers),
                &data,
                11,
            );
            for (a, b) in base.0.iter().zip(&par.0) {
                assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            }
            for (a, b) in base.1.iter().zip(&par.1) {
                assert_eq!(a.data(), b.data());
            }
        }
    }

    #[test]
    fn skipped_examples_take_no_step() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(1.0));
        let mut opt = Sgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let trainer = Trainer::new(&ps, TrainConfig::new(1, 0.1));
        let stats = trainer.train(
            &mut opt,
            &[0.0f32, 1.0, 2.0],
            |g, &x| {
                if x == 0.0 {
                    return None;
                }
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let p = g.mul(wn, xn);
                Some(g.sum_all(p))
            },
            &mut rng,
        );
        assert_eq!(stats[0].examples, 2);
        assert!(w.value().item() < 1.0);
    }

    #[test]
    fn best_snapshot_restores_best_epoch() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let trainer = Trainer::new(&ps, TrainConfig::new(4, 0.1));
        // Metric degrades after the first epoch, so the restored parameters
        // must be the ones snapshotted after epoch 0.
        let mut first: Option<Tensor> = None;
        let mut calls = 0usize;
        let stats = trainer.train_with(
            &mut opt,
            &[1.0f32, 2.0],
            |g, &x| {
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let p = g.mul(wn, xn);
                Some(g.sum_all(p))
            },
            StopCriterion::BestSnapshot { patience: None },
            || {
                calls += 1;
                if calls == 1 {
                    first = Some(w.value().clone());
                    (1.0, 0.0)
                } else {
                    (0.0, 0.0)
                }
            },
            &mut rng,
        );
        assert_eq!(stats.len(), 4);
        assert_eq!(stats[0].metric, Some((1.0, 0.0)));
        assert_eq!(w.value().data(), first.unwrap().data());
    }

    #[test]
    fn patience_stops_early() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(4);
        let trainer = Trainer::new(&ps, TrainConfig::new(10, 0.1));
        let stats = trainer.train_with(
            &mut opt,
            &[1.0f32],
            |g, &x| {
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let p = g.mul(wn, xn);
                Some(g.sum_all(p))
            },
            StopCriterion::BestSnapshot { patience: Some(2) },
            || (0.0, 0.0),
            &mut rng,
        );
        // Epoch 0 sets the best; epochs 1 and 2 are stale; stop.
        assert_eq!(stats.len(), 3);
    }
}
