//! Unified data-parallel training engine for the five construction models.
//!
//! Every model in `alicoco-mining` (§7 of the paper: vocabulary mining,
//! hypernym discovery, concept classification, concept tagging, semantic
//! matching) trains the same way: shuffle the examples each epoch, run
//! forward/backward per example, clip the global gradient norm, and take an
//! optimizer step. [`Trainer`] owns that loop once, adding three things the
//! hand-rolled loops lacked:
//!
//! - **Data parallelism with a determinism guarantee.** A mini-batch is
//!   split into at most [`MAX_MERGE_LANES`] contiguous *merge lanes* whose
//!   boundaries depend only on the batch length — never on the worker
//!   count. Each lane accumulates its examples (in example order) into a
//!   private [`GradShadow`]; the caller then merges lane shadows in lane
//!   order before the single optimizer step. Physical workers claim whole
//!   lanes, so how many threads ran — one or eight — cannot change any
//!   summation order: losses and final parameters are byte-identical for
//!   any [`TrainConfig::workers`] (the training-side mirror of
//!   `search_batch`'s parity contract from the serving layer). The serial
//!   merge section is `O(params × lanes)`, not `O(params × batch)`.
//! - **An epoch-scoped worker pool.** Threads are spawned once per
//!   [`Trainer::train`] call and fed batches through a condvar gate, so
//!   thread startup amortizes over the whole run instead of being paid per
//!   mini-batch. Each lane owns a reusable [`Graph`] tape and shadow arena
//!   (`reset()` between examples — no per-example allocation), and
//!   parameter reads go through the tape's lock-free snapshot cache (see
//!   [`crate::graph`]). The pool never exceeds the machine's available
//!   parallelism: extra configured workers cost nothing and change nothing.
//! - **Generalized early stopping.** [`StopCriterion::BestSnapshot`] lifts
//!   `congen`'s validation-driven best-parameter snapshot/restore so any
//!   model can use it, with optional patience.
//!
//! With `batch_size = 1` and `workers = 1` (the defaults) the engine is
//! arithmetically identical to the per-example loops it replaced: the same
//! RNG draws, the same per-example optimizer steps, the same loss telemetry.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use rand::seq::SliceRandom;
use rand::Rng;

use alicoco_obs::{Registry, Stopwatch};

use crate::graph::{Graph, NodeId};
use crate::param::{GradShadow, Optimizer, ParamSet};
use crate::tensor::Tensor;

/// Upper bound on merge lanes per batch. Lane boundaries are a pure
/// function of the batch length, so gradient summation order — and hence
/// every trained parameter, bit for bit — is independent of how many
/// worker threads actually ran. This is also the ceiling on useful
/// parallelism per batch and on the serial merge cost per step.
pub const MAX_MERGE_LANES: usize = 4;

/// Physical worker threads a run configured with `workers` will use: capped
/// by the machine's available parallelism (oversubscribing cores only adds
/// context switches) and by [`MAX_MERGE_LANES`] (there is never more
/// claimable work per batch than lanes). Extra configured workers are
/// harmless — determinism never depends on the thread count.
pub fn planned_threads(workers: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    workers.max(1).min(hw).min(MAX_MERGE_LANES)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared hyper-parameters of the training loop. Each model config embeds
/// one of these (replacing the per-module `{epochs, lr}` pairs).
#[derive(Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Learning rate handed to the optimizer the model constructs.
    pub lr: f32,
    /// Global gradient-norm clip applied before every optimizer step.
    pub clip_norm: Option<f32>,
    /// Examples per optimizer step. `1` reproduces per-example stepping.
    pub batch_size: usize,
    /// Worker threads batches are sharded across. Any value produces
    /// byte-identical results; more workers only change wall-clock time.
    /// The engine caps the physical thread count at the machine's available
    /// parallelism (see [`planned_threads`]).
    pub workers: usize,
    /// Floor on physical threads, overriding the available-parallelism cap.
    /// `0` (the default) lets the cap apply. Tests use this to force a real
    /// pool on machines whose reported parallelism is 1; it never affects
    /// results, only which threads do the work.
    pub min_threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            lr: 0.01,
            clip_norm: Some(5.0),
            batch_size: 1,
            workers: 1,
            min_threads: 0,
        }
    }
}

impl TrainConfig {
    /// Create a new instance with default clipping and sharding.
    pub fn new(epochs: usize, lr: f32) -> Self {
        TrainConfig {
            epochs,
            lr,
            ..TrainConfig::default()
        }
    }

    /// Builder-style epoch override.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style learning-rate override.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Builder-style batch-size override.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder-style worker-count override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style physical-thread floor override (see
    /// [`TrainConfig::min_threads`]).
    pub fn with_min_threads(mut self, min_threads: usize) -> Self {
        self.min_threads = min_threads;
        self
    }
}

/// When the epoch loop ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCriterion {
    /// Run exactly [`TrainConfig::epochs`] epochs.
    FixedEpochs,
    /// Evaluate the metric closure after every epoch, snapshot the
    /// parameters whenever it strictly improves, and restore the best
    /// snapshot when training ends. With `patience: Some(p)`, stop after
    /// `p` consecutive epochs without improvement; `None` always runs the
    /// full epoch budget (as `congen::train_with_validation` did).
    BestSnapshot {
        /// Consecutive non-improving epochs tolerated before stopping.
        patience: Option<usize>,
    },
}

/// One epoch of a raw training loop run by [`Trainer::run_raw`]: the epoch
/// index, the total epoch budget, and the scheduled learning rate.
#[derive(Clone, Copy, Debug)]
pub struct RawEpoch {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Total epoch budget ([`TrainConfig::epochs`]).
    pub epochs: usize,
    /// Linearly decayed learning rate for this epoch:
    /// `lr * max(1 - epoch / epochs, floor)`.
    pub lr: f32,
}

/// Per-epoch telemetry returned by [`Trainer::train`].
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Examples that produced a loss (skipped examples excluded).
    pub examples: usize,
    /// Total loss divided by the dataset size (matching the historical
    /// per-module telemetry, which averaged over all examples). Losses are
    /// accumulated in `f64` so the mean does not drift on large corpora.
    pub mean_loss: f32,
    /// Validation metric `(key, secondary)` under
    /// [`StopCriterion::BestSnapshot`]; `None` for fixed-epoch runs.
    pub metric: Option<(f64, f64)>,
    /// Wall-clock nanoseconds the epoch took (forward/backward, merge, and
    /// optimizer steps; excludes the validation-metric closure).
    pub elapsed_ns: u64,
    /// Wall-clock nanoseconds of the parallel forward/backward sections
    /// (batch dispatch through last lane completion), summed over batches.
    pub forward_ns: u64,
    /// Wall-clock nanoseconds of the serial sections that read lane losses
    /// and merge lane shadows into shared gradients, summed over batches.
    pub merge_ns: u64,
    /// Wall-clock nanoseconds of gradient clipping plus optimizer steps,
    /// summed over batches.
    pub step_ns: u64,
}

/// Bridge per-epoch telemetry into a metrics [`Registry`] under the
/// `train.<model>.*` namespace: epoch and example counters, an epoch
/// wall-clock histogram, per-stage histograms proving where the time went
/// (`forward_ns` / `merge_ns` / `step_ns`, one sample per epoch), and a
/// gauge holding the final mean loss. The pipeline calls this once per
/// model after training; benches and the CLI export it alongside the
/// serving metrics.
pub fn record_epoch_stats(reg: &Registry, model: &str, stats: &[EpochStats]) {
    if stats.is_empty() {
        return;
    }
    let epochs = reg.counter(format!("train.{model}.epochs").as_str());
    let examples = reg.counter(format!("train.{model}.examples").as_str());
    let epoch_ns = reg.histogram(format!("train.{model}.epoch_ns").as_str());
    let forward_ns = reg.histogram(format!("train.{model}.forward_ns").as_str());
    let merge_ns = reg.histogram(format!("train.{model}.merge_ns").as_str());
    let step_ns = reg.histogram(format!("train.{model}.step_ns").as_str());
    for s in stats {
        epochs.inc();
        examples.add(s.examples as u64);
        epoch_ns.record(s.elapsed_ns);
        forward_ns.record(s.forward_ns);
        merge_ns.record(s.merge_ns);
        step_ns.record(s.step_ns);
    }
    if let Some(last) = stats.last() {
        reg.gauge(format!("train.{model}.mean_loss").as_str())
            .set(f64::from(last.mean_loss));
    }
}

/// How one batch is split into merge lanes. Depends only on the batch
/// length: `lane_size = ceil(len / MAX_MERGE_LANES)` contiguous examples
/// per lane. Batches of at most [`MAX_MERGE_LANES`] examples degenerate to
/// one example per lane, i.e. exactly the historical per-example merge
/// order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct LanePlan {
    lane_size: usize,
    lanes: usize,
}

impl LanePlan {
    fn of(batch_len: usize) -> Self {
        let lane_size = batch_len.div_ceil(MAX_MERGE_LANES).max(1);
        LanePlan {
            lane_size,
            lanes: batch_len.div_ceil(lane_size),
        }
    }

    fn bounds(&self, lane: usize, batch_len: usize) -> (usize, usize) {
        let lo = lane * self.lane_size;
        (lo, (lo + self.lane_size).min(batch_len))
    }
}

/// Reusable per-lane arena: one autodiff tape, one gradient shadow, and the
/// per-example losses of the lane's current slice. Reset (not reallocated)
/// every batch.
struct Lane {
    graph: Graph,
    shadow: GradShadow,
    losses: Vec<Option<f32>>,
}

impl Lane {
    fn new() -> Self {
        Lane {
            graph: Graph::new(),
            shadow: GradShadow::new(),
            losses: Vec::new(),
        }
    }
}

/// Forward/backward every example of the lane's slice, in example order,
/// pre-merging gradients into the lane's private shadow.
fn run_lane<E, F>(lane: &mut Lane, data: &[E], examples: &[usize], forward: &F)
where
    F: Fn(&mut Graph, &E) -> Option<NodeId>,
{
    lane.losses.clear();
    lane.shadow.reset();
    for &ix in examples {
        lane.graph.reset();
        match forward(&mut lane.graph, &data[ix]) {
            Some(loss) => {
                lane.graph.backward_shadow(loss, &mut lane.shadow);
                lane.losses.push(Some(lane.graph.value(loss).item()));
            }
            None => lane.losses.push(None),
        }
    }
}

/// First worker panic of a batch, captured with enough context to re-raise
/// it usefully on the caller.
struct PanicReport {
    lane: usize,
    lo: usize,
    hi: usize,
    payload: Box<dyn Any + Send>,
}

/// Batch handoff between the caller and the pool: the caller publishes lane
/// geometry, wakes the workers, claims lanes itself alongside them, and
/// sleeps until `lanes_done` reaches `lanes_total`. Claims are serialized
/// by the mutex, so each lane runs exactly once per batch no matter which
/// thread wins it.
#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    /// Workers wait here for a published batch (or shutdown).
    work_ready: Condvar,
    /// The caller waits here for the last lane of the batch.
    batch_done: Condvar,
}

#[derive(Default)]
struct GateState {
    /// Shuffled example indices of the current batch.
    batch: Vec<usize>,
    lane_size: usize,
    lanes_total: usize,
    next_lane: usize,
    lanes_done: usize,
    shutdown: bool,
    panic: Option<PanicReport>,
}

/// Record a finished lane (panicked or not) and wake the caller when it was
/// the batch's last. Only the first panic payload is kept; every lane still
/// counts as done so the caller can never deadlock waiting for it.
fn finish_lane(
    gate: &Gate,
    result: Result<(), Box<dyn Any + Send>>,
    lane: usize,
    lo: usize,
    hi: usize,
) {
    let mut st = lock(&gate.state);
    if let Err(payload) = result {
        if st.panic.is_none() {
            st.panic = Some(PanicReport {
                lane,
                lo,
                hi,
                payload,
            });
        }
    }
    st.lanes_done += 1;
    if st.lanes_done >= st.lanes_total {
        gate.batch_done.notify_all();
    }
}

/// Pool worker: claim lanes of the published batch until none remain, then
/// sleep until the next batch (or shutdown). Lane panics are caught and
/// reported through the gate — a worker survives them; the caller re-raises.
fn worker_loop<E, F>(gate: &Gate, lanes: &[Mutex<Lane>], data: &[E], forward: &F)
where
    E: Sync,
    F: Fn(&mut Graph, &E) -> Option<NodeId> + Sync,
{
    let mut examples: Vec<usize> = Vec::new();
    loop {
        let (lane, lo, hi) = {
            let mut st = lock(&gate.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.next_lane < st.lanes_total {
                    break;
                }
                st = gate
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let lane = st.next_lane;
            st.next_lane += 1;
            let lo = lane * st.lane_size;
            let hi = (lo + st.lane_size).min(st.batch.len());
            examples.clear();
            examples.extend_from_slice(&st.batch[lo..hi]);
            (lane, lo, hi)
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            run_lane(&mut lock(&lanes[lane]), data, &examples, forward);
        }));
        finish_lane(gate, result, lane, lo, hi);
    }
}

/// Unblocks the pool no matter how the caller leaves the scope — normal
/// return or unwind — so `thread::scope`'s implicit join can never hang on
/// workers parked at the gate.
struct ShutdownOnDrop<'a> {
    gate: &'a Gate,
}

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        lock(&self.gate.state).shutdown = true;
        self.gate.work_ready.notify_all();
    }
}

/// Re-raise a captured worker panic on the caller, prefixed with model and
/// shard context. String payloads are rewrapped to carry the context in the
/// message; other payloads are resumed unchanged (the context goes to
/// stderr) so `catch_unwind`-based callers still see the original value.
fn resume_worker_panic(report: PanicReport, label: Option<&str>) -> ! {
    let model = label.unwrap_or("train");
    let at = format!(
        "[{model}] training worker panicked on lane {} (batch positions {}..{})",
        report.lane, report.lo, report.hi
    );
    let message = if let Some(s) = report.payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        report.payload.downcast_ref::<String>().cloned()
    };
    match message {
        Some(msg) => panic::panic_any(format!("{at}: {msg}")),
        None => {
            eprintln!("{at}; resuming original panic payload");
            panic::resume_unwind(report.payload)
        }
    }
}

/// The shared training loop. Borrows the model's [`ParamSet`]; the forward
/// pass is a closure so each model keeps its own architecture code.
pub struct Trainer<'a> {
    params: &'a ParamSet,
    cfg: TrainConfig,
    label: Option<String>,
}

impl<'a> Trainer<'a> {
    /// Create a new instance.
    pub fn new(params: &'a ParamSet, cfg: TrainConfig) -> Self {
        Trainer {
            params,
            cfg,
            label: None,
        }
    }

    /// Attach a model label, used to contextualize worker panics and log
    /// output (e.g. `"hypernym_projection"`).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The configuration this trainer runs with.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Physical threads this trainer will actually use (see
    /// [`planned_threads`]; [`TrainConfig::min_threads`] can raise the
    /// hardware cap, and a batch size of `n` never needs more than `n`
    /// lanes' worth of threads).
    fn physical_threads(&self) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.cfg
            .workers
            .max(1)
            .min(hw.max(self.cfg.min_threads))
            .min(MAX_MERGE_LANES)
            .min(self.cfg.batch_size.max(1))
    }

    /// Run a raw (non-autodiff) training loop: the counterpart of
    /// [`Trainer::train`] for hot-loop models that own their parameter
    /// arrays directly (the SGNS-style embedding trainers in
    /// `alicoco-text`). The engine owns the epoch iteration and the linear
    /// learning-rate decay schedule — no module needs a private epoch loop —
    /// while `epoch_body` performs the model's own updates for one full
    /// pass over its data at the scheduled rate.
    ///
    /// The schedule is `cfg.lr * max(1 - epoch / epochs, lr_floor)`; a
    /// floor of `1.0` yields a constant `cfg.lr` for every epoch (used by
    /// inference-time optimization and loops with their own finer-grained
    /// schedule). The RNG is threaded through untouched, so a migrated loop
    /// draws exactly the sequence its hand-rolled predecessor drew.
    pub fn run_raw<R, F>(cfg: &TrainConfig, lr_floor: f32, rng: &mut R, mut epoch_body: F)
    where
        R: Rng + ?Sized,
        F: FnMut(RawEpoch, &mut R),
    {
        for epoch in 0..cfg.epochs {
            let lr = cfg.lr * (1.0 - epoch as f32 / cfg.epochs as f32).max(lr_floor);
            epoch_body(
                RawEpoch {
                    epoch,
                    epochs: cfg.epochs,
                    lr,
                },
                rng,
            );
        }
    }

    /// Train for [`TrainConfig::epochs`] epochs. `forward` builds the loss
    /// for one example on a (reused) tape, returning `None` to skip it
    /// (e.g. empty token lists); skipped examples consume no optimizer
    /// step.
    pub fn train<E, F, R>(
        &self,
        opt: &mut dyn Optimizer,
        data: &[E],
        forward: F,
        rng: &mut R,
    ) -> Vec<EpochStats>
    where
        E: Sync,
        F: Fn(&mut Graph, &E) -> Option<NodeId> + Sync,
        R: Rng + ?Sized,
    {
        self.train_with(
            opt,
            data,
            forward,
            StopCriterion::FixedEpochs,
            || (0.0, 0.0),
            rng,
        )
    }

    /// Train with an explicit stop criterion. Under
    /// [`StopCriterion::BestSnapshot`] the `metric` closure is called after
    /// each epoch and must return `(key, secondary)` ordered so that larger
    /// tuples are better; the parameters of the best epoch are restored
    /// before returning.
    pub fn train_with<E, F, M, R>(
        &self,
        opt: &mut dyn Optimizer,
        data: &[E],
        forward: F,
        stop: StopCriterion,
        mut metric: M,
        rng: &mut R,
    ) -> Vec<EpochStats>
    where
        E: Sync,
        F: Fn(&mut Graph, &E) -> Option<NodeId> + Sync,
        M: FnMut() -> (f64, f64),
        R: Rng + ?Sized,
    {
        let batch_size = self.cfg.batch_size.max(1);
        let lanes: Vec<Mutex<Lane>> = (0..batch_size.min(MAX_MERGE_LANES))
            .map(|_| Mutex::new(Lane::new()))
            .collect();
        let planned = self.physical_threads();
        if planned <= 1 {
            // No pool: the caller runs every lane inline, same lane
            // structure, no gate traffic.
            return self.train_loop(opt, data, &forward, stop, &mut metric, rng, &lanes, None);
        }
        let gate = Gate::default();
        std::thread::scope(|s| {
            let _shutdown = ShutdownOnDrop { gate: &gate };
            // The caller claims lanes too, so `planned` threads of work
            // need only `planned - 1` spawns.
            for _ in 0..planned - 1 {
                s.spawn(|| worker_loop(&gate, &lanes, data, &forward));
            }
            self.train_loop(
                opt,
                data,
                &forward,
                stop,
                &mut metric,
                rng,
                &lanes,
                Some(&gate),
            )
        })
    }

    /// The epoch loop shared by the pooled and inline paths.
    #[allow(clippy::too_many_arguments)]
    fn train_loop<E, F, M, R>(
        &self,
        opt: &mut dyn Optimizer,
        data: &[E],
        forward: &F,
        stop: StopCriterion,
        metric: &mut M,
        rng: &mut R,
        lanes: &[Mutex<Lane>],
        pool: Option<&Gate>,
    ) -> Vec<EpochStats>
    where
        E: Sync,
        F: Fn(&mut Graph, &E) -> Option<NodeId> + Sync,
        M: FnMut() -> (f64, f64),
        R: Rng + ?Sized,
    {
        let batch_size = self.cfg.batch_size.max(1);
        // The order vector persists across epochs and is shuffled in place,
        // exactly as the per-module loops did, so seeded runs reproduce the
        // historical permutation sequence.
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut stats = Vec::new();
        let mut best: Option<((f64, f64), Vec<Tensor>)> = None;
        let mut stale = 0usize;

        for epoch in 0..self.cfg.epochs {
            let epoch_watch = Stopwatch::start();
            order.shuffle(rng);
            // f64 accumulation: per-example f32 losses summed over a large
            // corpus would otherwise lose low-order bits batch by batch.
            let mut total = 0.0f64;
            let mut trained = 0usize;
            let (mut forward_ns, mut merge_ns, mut step_ns) = (0u64, 0u64, 0u64);
            for batch in order.chunks(batch_size) {
                let plan = LanePlan::of(batch.len());
                let mut phase_watch = Stopwatch::start();
                self.run_lanes(data, batch, forward, lanes, plan, pool);
                forward_ns += phase_watch.lap_ns();

                // Deterministic merge: lane order (= example order, lanes
                // are contiguous), then ParamSet registration order within
                // each shadow.
                let mut any = false;
                for lane in lanes.iter().take(plan.lanes) {
                    let lane = lock(lane);
                    for loss in &lane.losses {
                        if let Some(l) = *loss {
                            total += f64::from(l);
                            trained += 1;
                            any = true;
                        }
                    }
                }
                if any {
                    for lane in lanes.iter().take(plan.lanes) {
                        lock(lane).shadow.merge_into(self.params);
                    }
                }
                merge_ns += phase_watch.lap_ns();
                if !any {
                    continue;
                }
                if let Some(c) = self.cfg.clip_norm {
                    self.params.clip_grad_norm(c);
                }
                opt.step(self.params);
                step_ns += phase_watch.lap_ns();
            }

            let mut epoch_stats = EpochStats {
                epoch,
                examples: trained,
                mean_loss: (total / data.len().max(1) as f64) as f32,
                metric: None,
                elapsed_ns: epoch_watch.elapsed_ns(),
                forward_ns,
                merge_ns,
                step_ns,
            };
            match stop {
                StopCriterion::FixedEpochs => stats.push(epoch_stats),
                StopCriterion::BestSnapshot { patience } => {
                    let key = metric();
                    epoch_stats.metric = Some(key);
                    stats.push(epoch_stats);
                    if best.as_ref().is_none_or(|(k, _)| key > *k) {
                        best = Some((key, self.params.snapshot()));
                        stale = 0;
                    } else {
                        stale += 1;
                        if patience.is_some_and(|p| stale >= p) {
                            break;
                        }
                    }
                }
            }
        }

        if let Some((_, weights)) = best {
            self.params.restore(&weights);
        }
        stats
    }

    /// Forward/backward every lane of `batch`. Single-lane batches (and the
    /// poolless path) run inline on the caller; otherwise the batch is
    /// published to the gate and the caller claims lanes alongside the
    /// workers, then sleeps until the last lane completes. A worker panic
    /// is re-raised here, after the batch has fully drained.
    fn run_lanes<E, F>(
        &self,
        data: &[E],
        batch: &[usize],
        forward: &F,
        lanes: &[Mutex<Lane>],
        plan: LanePlan,
        pool: Option<&Gate>,
    ) where
        E: Sync,
        F: Fn(&mut Graph, &E) -> Option<NodeId> + Sync,
    {
        let gate = match pool {
            Some(gate) if plan.lanes > 1 => gate,
            _ => {
                for (i, chunk) in batch.chunks(plan.lane_size).enumerate() {
                    run_lane(&mut lock(&lanes[i]), data, chunk, forward);
                }
                return;
            }
        };
        {
            let mut st = lock(&gate.state);
            st.batch.clear();
            st.batch.extend_from_slice(batch);
            st.lane_size = plan.lane_size;
            st.lanes_total = plan.lanes;
            st.next_lane = 0;
            st.lanes_done = 0;
        }
        gate.work_ready.notify_all();
        loop {
            let claimed = {
                let mut st = lock(&gate.state);
                if st.next_lane >= st.lanes_total {
                    break;
                }
                let lane = st.next_lane;
                st.next_lane += 1;
                lane
            };
            let (lo, hi) = plan.bounds(claimed, batch.len());
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                run_lane(&mut lock(&lanes[claimed]), data, &batch[lo..hi], forward);
            }));
            finish_lane(gate, result, claimed, lo, hi);
        }
        let mut st = lock(&gate.state);
        while st.lanes_done < st.lanes_total {
            st = gate
                .batch_done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(report) = st.panic.take() {
            drop(st);
            resume_worker_panic(report, self.label.as_deref());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One linear weight trained on scalar regression; loss (w·x - y)^2.
    fn fit(cfg: TrainConfig, data: &[(f32, f32)], seed: u64) -> (Vec<EpochStats>, Vec<Tensor>) {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::zeros(1, 1));
        let mut opt = Sgd::new(cfg.lr);
        let mut rng = StdRng::seed_from_u64(seed);
        let trainer = Trainer::new(&ps, cfg);
        let stats = trainer.train(
            &mut opt,
            data,
            |g, &(x, y)| {
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let yn = g.input(Tensor::scalar(y));
                let pred = g.mul(wn, xn);
                let d = g.sub(pred, yn);
                let sq = g.mul(d, d);
                Some(g.sum_all(sq))
            },
            &mut rng,
        );
        (stats, ps.snapshot())
    }

    #[test]
    fn trainer_fits_a_line() {
        let data: Vec<(f32, f32)> = (0..16).map(|i| (i as f32 / 8.0, i as f32 / 4.0)).collect();
        let (stats, snap) = fit(TrainConfig::new(40, 0.05), &data, 7);
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
        assert!((snap[0].item() - 2.0).abs() < 0.05);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let data: Vec<(f32, f32)> = (0..23).map(|i| (i as f32 / 10.0, i as f32 / 5.0)).collect();
        let base = fit(TrainConfig::new(3, 0.05).with_batch_size(4), &data, 11);
        for workers in 2..=4 {
            let par = fit(
                TrainConfig::new(3, 0.05)
                    .with_batch_size(4)
                    .with_workers(workers)
                    .with_min_threads(workers),
                &data,
                11,
            );
            for (a, b) in base.0.iter().zip(&par.0) {
                assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            }
            for (a, b) in base.1.iter().zip(&par.1) {
                assert_eq!(a.data(), b.data());
            }
        }
    }

    #[test]
    fn lane_plan_is_a_pure_function_of_batch_length() {
        // Lanes must never depend on worker count, and small batches must
        // degenerate to one example per lane (the historical merge order).
        for len in 1..=MAX_MERGE_LANES {
            let plan = LanePlan::of(len);
            assert_eq!((plan.lane_size, plan.lanes), (1, len));
        }
        let plan = LanePlan::of(2 * MAX_MERGE_LANES);
        assert_eq!((plan.lane_size, plan.lanes), (2, MAX_MERGE_LANES));
        // Lanes tile the batch contiguously with no gaps or overlap.
        for len in 1..100 {
            let plan = LanePlan::of(len);
            assert!(plan.lanes <= MAX_MERGE_LANES);
            let mut covered = 0;
            for lane in 0..plan.lanes {
                let (lo, hi) = plan.bounds(lane, len);
                assert_eq!(lo, covered);
                assert!(hi > lo);
                covered = hi;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn skipped_examples_take_no_step() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(1.0));
        let mut opt = Sgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let trainer = Trainer::new(&ps, TrainConfig::new(1, 0.1));
        let stats = trainer.train(
            &mut opt,
            &[0.0f32, 1.0, 2.0],
            |g, &x| {
                if x == 0.0 {
                    return None;
                }
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let p = g.mul(wn, xn);
                Some(g.sum_all(p))
            },
            &mut rng,
        );
        assert_eq!(stats[0].examples, 2);
        assert!(w.value().item() < 1.0);
    }

    #[test]
    fn best_snapshot_restores_best_epoch() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let trainer = Trainer::new(&ps, TrainConfig::new(4, 0.1));
        // Metric degrades after the first epoch, so the restored parameters
        // must be the ones snapshotted after epoch 0.
        let mut first: Option<Tensor> = None;
        let mut calls = 0usize;
        let stats = trainer.train_with(
            &mut opt,
            &[1.0f32, 2.0],
            |g, &x| {
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let p = g.mul(wn, xn);
                Some(g.sum_all(p))
            },
            StopCriterion::BestSnapshot { patience: None },
            || {
                calls += 1;
                if calls == 1 {
                    first = Some(w.value().clone());
                    (1.0, 0.0)
                } else {
                    (0.0, 0.0)
                }
            },
            &mut rng,
        );
        assert_eq!(stats.len(), 4);
        assert_eq!(stats[0].metric, Some((1.0, 0.0)));
        assert_eq!(w.value().data(), first.unwrap().data());
    }

    #[test]
    fn patience_stops_early() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(4);
        let trainer = Trainer::new(&ps, TrainConfig::new(10, 0.1));
        let stats = trainer.train_with(
            &mut opt,
            &[1.0f32],
            |g, &x| {
                let wn = g.param(&w);
                let xn = g.input(Tensor::scalar(x));
                let p = g.mul(wn, xn);
                Some(g.sum_all(p))
            },
            StopCriterion::BestSnapshot { patience: Some(2) },
            || (0.0, 0.0),
            &mut rng,
        );
        // Epoch 0 sets the best; epochs 1 and 2 are stale; stop.
        assert_eq!(stats.len(), 3);
    }

    #[test]
    fn stage_clocks_cover_the_epoch() {
        let data: Vec<(f32, f32)> = (0..16).map(|i| (i as f32 / 8.0, i as f32 / 4.0)).collect();
        let (stats, _) = fit(TrainConfig::new(2, 0.05).with_batch_size(4), &data, 5);
        for s in &stats {
            assert!(s.forward_ns > 0, "forward stage not timed");
            assert!(s.merge_ns > 0, "merge stage not timed");
            assert!(s.step_ns > 0, "step stage not timed");
            assert!(
                s.forward_ns + s.merge_ns + s.step_ns <= s.elapsed_ns,
                "stage clocks exceed the epoch wall clock"
            );
        }
    }
}
