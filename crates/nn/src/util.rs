//! Small shared utilities: a fast non-cryptographic hasher (the FxHash
//! algorithm used by rustc) and seeded-RNG helpers.
//!
//! SipHash protects against HashDoS but is slow for the short integer and
//! string keys that dominate AliCoCo's indices; the graph is built from
//! trusted local data so the trade-off is easy.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The FxHash mixing constant (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// rustc's FxHasher: multiply-rotate mixing, word at a time.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with FxHash.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Deterministic RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fxhash_map_roundtrip() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m[&format!("key{i}")], i);
        }
    }

    #[test]
    fn fxhash_is_deterministic() {
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        assert_eq!(h("outdoor barbecue"), h("outdoor barbecue"));
        assert_ne!(h("outdoor barbecue"), h("indoor barbecue"));
    }

    #[test]
    fn seeded_rng_reproducible() {
        use rand::Rng;
        let a: u64 = seeded_rng(99).gen();
        let b: u64 = seeded_rng(99).gen();
        assert_eq!(a, b);
    }
}
