#![warn(missing_docs)]
//! # alicoco-nn
//!
//! A minimal, dependency-light neural-network substrate built from scratch
//! for the AliCoCo reproduction. It provides:
//!
//! - dense 2-D [`tensor::Tensor`]s,
//! - define-by-run reverse-mode autodiff ([`graph::Graph`]),
//! - trainable parameters and optimizers ([`param`]),
//! - a shared, deterministic data-parallel training loop ([`train`]),
//! - the layers the paper's five models are composed of: linear / embedding /
//!   MLP ([`layers`]), LSTM and BiLSTM ([`rnn`]), 1-D convolutions ([`conv`]),
//!   self- and pairwise attention ([`attention`]),
//! - linear-chain CRF and fuzzy CRF with analytic forward–backward gradients
//!   ([`crf`]),
//! - the evaluation metrics the paper reports ([`metrics`]),
//! - fast hashing and seeded RNG utilities ([`util`]).
//!
//! The paper trained its models in a conventional deep-learning stack on
//! Alibaba-scale data; this crate replaces that stack so the entire
//! construction pipeline is reproducible offline in pure Rust. Model sizes
//! are deliberately small (tens of thousands of weights); everything here is
//! exact reverse-mode differentiation, verified by finite-difference tests.

pub mod attention;
pub mod conv;
pub mod crf;
pub mod graph;
pub mod layers;
pub mod metrics;
pub mod param;
pub mod persist;
pub mod rank;
pub mod rnn;
pub mod tensor;
pub mod train;
pub mod util;

pub use graph::{Graph, NodeId};
pub use param::{Adam, GradShadow, Optimizer, Param, ParamSet, Sgd};
pub use tensor::Tensor;
pub use train::{
    planned_threads, record_epoch_stats, EpochStats, RawEpoch, StopCriterion, TrainConfig, Trainer,
    MAX_MERGE_LANES,
};
