//! Trained-parameter persistence.
//!
//! A [`crate::param::ParamSet`] serializes to a line-oriented text format:
//! one record per parameter with its name, shape, and values. Loading
//! restores values *into an existing model* (built with the same
//! architecture/config), matched by parameter name — the usual
//! "rebuild the graph, load the weights" workflow.
//!
//! ```text
//! alicoco-params v1
//! <name>\t<rows>\t<cols>\t<v0> <v1> ...
//! ```

use std::io::{self, BufRead, Write};

use crate::param::ParamSet;
use crate::tensor::Tensor;

const MAGIC: &str = "alicoco-params v1";

/// Serialize every parameter of the set.
///
/// # Panics
/// Panics if a parameter name contains a tab or newline.
pub fn save<W: Write>(params: &ParamSet, w: &mut W) -> io::Result<()> {
    writeln!(w, "{MAGIC}")?;
    for p in params.iter() {
        let name = p.name();
        assert!(
            !name.contains('\t') && !name.contains('\n'),
            "parameter name contains separator: {name:?}"
        );
        let v = p.value();
        write!(w, "{name}\t{}\t{}\t", v.rows(), v.cols())?;
        for (i, x) in v.data().iter().enumerate() {
            if i > 0 {
                write!(w, " ")?;
            }
            // `{:?}` prints round-trippable f32.
            write!(w, "{x:?}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Errors raised while loading parameters.
#[derive(Debug)]
pub enum LoadError {
    /// Io.
    Io(io::Error),
    /// Bad magic.
    BadMagic,
    /// Parse.
    Parse(usize, String),
    /// A parameter in the stream has no counterpart in the target set.
    UnknownParam(String),
    /// Shape in the stream disagrees with the target parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape of the target parameter.
        expected: (usize, usize),
        /// Shape found in the stream.
        found: (usize, usize),
    },
    /// Parameters of the target set missing from the stream.
    MissingParams(Vec<String>),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::BadMagic => write!(f, "not an alicoco-params stream"),
            LoadError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
            LoadError::UnknownParam(n) => write!(f, "unknown parameter {n:?}"),
            LoadError::ShapeMismatch {
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "shape mismatch for {name:?}: expected {expected:?}, found {found:?}"
                )
            }
            LoadError::MissingParams(names) => write!(f, "missing parameters: {names:?}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Load saved values into an existing set (matched by name). Every
/// parameter of the target must be present in the stream, and vice versa.
pub fn load<R: BufRead>(params: &ParamSet, r: &mut R) -> Result<(), LoadError> {
    let mut by_name = alicoco_nn_collect(params);
    let mut lines = r.lines();
    match lines.next() {
        Some(Ok(l)) if l == MAGIC => {}
        Some(Ok(_)) => return Err(LoadError::BadMagic),
        Some(Err(e)) => return Err(e.into()),
        None => return Err(LoadError::BadMagic),
    }
    for (ln, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let name = parts
            .next()
            .ok_or_else(|| LoadError::Parse(ln, "missing name".into()))?;
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Parse(ln, "bad rows".into()))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError::Parse(ln, "bad cols".into()))?;
        let values = parts
            .next()
            .ok_or_else(|| LoadError::Parse(ln, "missing values".into()))?;
        let data: Result<Vec<f32>, _> = values.split(' ').map(str::parse::<f32>).collect();
        let data = data.map_err(|_| LoadError::Parse(ln, "bad value".into()))?;
        if data.len() != rows * cols {
            return Err(LoadError::Parse(ln, "value count != shape".into()));
        }
        let p = by_name
            .remove(name)
            .ok_or_else(|| LoadError::UnknownParam(name.to_string()))?;
        let expected = p.value().shape();
        if expected != (rows, cols) {
            return Err(LoadError::ShapeMismatch {
                name: name.to_string(),
                expected,
                found: (rows, cols),
            });
        }
        *p.value_mut() = Tensor::from_vec(rows, cols, data);
    }
    if !by_name.is_empty() {
        let mut missing: Vec<String> = by_name.into_keys().collect();
        missing.sort();
        return Err(LoadError::MissingParams(missing));
    }
    Ok(())
}

fn alicoco_nn_collect(params: &ParamSet) -> crate::util::FxHashMap<String, crate::param::Param> {
    params.iter().map(|p| (p.name(), p.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Mlp};
    use crate::util::seeded_rng;
    use crate::{Graph, Tensor as T};

    fn model(seed: u64) -> (ParamSet, Mlp) {
        let mut rng = seeded_rng(seed);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(&mut ps, "m", &[3, 5, 1], Activation::Tanh, &mut rng);
        (ps, mlp)
    }

    fn forward(mlp: &Mlp, x: &[f32]) -> f32 {
        let mut g = Graph::new();
        let input = g.input(T::row(x.to_vec()));
        let out = mlp.forward(&mut g, input);
        g.value(out).item()
    }

    #[test]
    fn roundtrip_restores_exact_behaviour() {
        let (ps_a, mlp_a) = model(1);
        let mut buf = Vec::new();
        save(&ps_a, &mut buf).unwrap();
        // Differently-initialized model disagrees before loading...
        let (ps_b, mlp_b) = model(2);
        let x = [0.3, -0.7, 0.5];
        assert_ne!(forward(&mlp_a, &x), forward(&mlp_b, &x));
        // ...and agrees exactly afterwards.
        load(&ps_b, &mut buf.as_slice()).unwrap();
        assert_eq!(forward(&mlp_a, &x), forward(&mlp_b, &x));
    }

    #[test]
    fn rejects_wrong_magic_and_shape() {
        let (ps, _) = model(3);
        assert!(matches!(
            load(&ps, &mut &b"garbage"[..]),
            Err(LoadError::BadMagic)
        ));

        // Same names, different architecture -> shape mismatch.
        let mut rng = seeded_rng(4);
        let mut ps_big = ParamSet::new();
        let _ = Mlp::new(&mut ps_big, "m", &[3, 9, 1], Activation::Tanh, &mut rng);
        let mut buf = Vec::new();
        save(&ps_big, &mut buf).unwrap();
        assert!(matches!(
            load(&ps, &mut buf.as_slice()),
            Err(LoadError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_missing_and_unknown_params() {
        let (ps, _) = model(5);
        // Stream with only the magic: everything missing.
        let buf = format!("{MAGIC}\n");
        assert!(matches!(
            load(&ps, &mut buf.as_bytes()),
            Err(LoadError::MissingParams(_))
        ));
        // Stream with an extra unknown parameter.
        let mut full = Vec::new();
        save(&ps, &mut full).unwrap();
        let mut text = String::from_utf8(full).unwrap();
        text.push_str("ghost.param\t1\t1\t0.5\n");
        assert!(matches!(
            load(&ps, &mut text.as_bytes()),
            Err(LoadError::UnknownParam(_))
        ));
    }

    #[test]
    fn values_roundtrip_bit_exact() {
        let (ps, _) = model(6);
        // Poke in awkward values.
        for p in ps.iter() {
            p.value_mut().data_mut()[0] = f32::MIN_POSITIVE;
        }
        let mut buf = Vec::new();
        save(&ps, &mut buf).unwrap();
        let (ps2, _) = model(7);
        load(&ps2, &mut buf.as_slice()).unwrap();
        for (a, b) in ps.iter().zip(ps2.iter()) {
            assert_eq!(a.value().data(), b.value().data());
        }
    }
}
