//! Linear-chain CRF and fuzzy CRF layers.
//!
//! The CRF sits on top of a BiLSTM encoder in the paper's sequence models
//! (vocabulary mining §4.1, concept tagging §5.3). The *fuzzy* CRF (§5.3.2,
//! eq. 8) replaces the single gold path in the numerator with the set of all
//! paths compatible with per-position *sets* of acceptable labels, which is
//! how the paper handles words like "village" that may validly be tagged
//! `Location` or `Style`.
//!
//! Loss and gradients are computed analytically with the forward–backward
//! algorithm in log space and exposed to the autodiff graph through a
//! [`CustomOp`].

// The forward-backward and Viterbi recurrences read far more clearly as
// index loops over the label lattice than as iterator chains.
#![allow(clippy::needless_range_loop)]

use rand::Rng;

use crate::graph::{CustomOp, Graph, NodeId};
use crate::param::{Param, ParamSet};
use crate::tensor::{log_sum_exp, Tensor};

/// A linear-chain CRF over `labels` output classes.
///
/// The transition matrix has two extra rows/columns for the virtual START
/// and END states: `trans[from][to]` with `START = labels`,
/// `END = labels + 1`.
pub struct Crf {
    /// Trans.
    pub trans: Param,
    labels: usize,
}

impl Crf {
    /// Create a new instance.
    pub fn new<R: Rng>(ps: &mut ParamSet, name: &str, labels: usize, rng: &mut R) -> Self {
        let trans = ps.add(
            format!("{name}.trans"),
            Tensor::uniform(labels + 2, labels + 2, 0.1, rng),
        );
        Crf { trans, labels }
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.labels
    }

    /// Negative log-likelihood of the gold label sequence given emission
    /// scores `(T, labels)`. Returns a scalar loss node.
    pub fn nll(&self, g: &mut Graph, emissions: NodeId, gold: &[usize]) -> NodeId {
        let allowed: Vec<Vec<usize>> = gold.iter().map(|&y| vec![y]).collect();
        self.fuzzy_nll(g, emissions, &allowed)
    }

    /// Fuzzy-CRF negative log-likelihood (paper eq. 8): the numerator sums
    /// over *all* paths whose label at position `t` is in `allowed[t]`.
    ///
    /// # Panics
    /// Panics if a position has an empty allowed set or an out-of-range
    /// label.
    pub fn fuzzy_nll(&self, g: &mut Graph, emissions: NodeId, allowed: &[Vec<usize>]) -> NodeId {
        let emit = g.value(emissions);
        let t_len = emit.rows();
        assert_eq!(
            t_len,
            allowed.len(),
            "allowed sets must match sequence length"
        );
        assert_eq!(emit.cols(), self.labels, "emission width != label count");
        for (t, set) in allowed.iter().enumerate() {
            assert!(!set.is_empty(), "empty allowed set at position {t}");
            assert!(
                set.iter().all(|&y| y < self.labels),
                "label out of range at {t}"
            );
        }
        let trans_node = g.param(&self.trans);
        let emit_v = g.value(emissions).clone();
        let trans_v = g.value(trans_node).clone();
        let (_, _, log_z_full) = marginals(&emit_v, &trans_v, self.labels, None);
        let (_, _, log_z_allowed) = marginals(&emit_v, &trans_v, self.labels, Some(allowed));
        let loss = log_z_full - log_z_allowed;
        let op = CrfNllOp {
            allowed: allowed.to_vec(),
            labels: self.labels,
        };
        g.custom(&[emissions, trans_node], Tensor::scalar(loss), Box::new(op))
    }

    /// Viterbi decode: the highest-scoring label sequence for the given
    /// emission scores, using the current transition values.
    pub fn decode(&self, emissions: &Tensor) -> Vec<usize> {
        viterbi(emissions, &self.trans.value(), self.labels, None)
    }

    /// Constrained Viterbi decode: the best path restricted to the allowed
    /// label sets.
    pub fn decode_constrained(&self, emissions: &Tensor, allowed: &[Vec<usize>]) -> Vec<usize> {
        viterbi(emissions, &self.trans.value(), self.labels, Some(allowed))
    }

    /// Log-partition (total path score) for the emissions; exposed for
    /// confidence estimation.
    pub fn log_partition(&self, emissions: &Tensor) -> f32 {
        let (_, _, z) = marginals(emissions, &self.trans.value(), self.labels, None);
        z
    }

    /// Path score of a specific sequence: emissions + transitions including
    /// START/END.
    pub fn path_score(&self, emissions: &Tensor, path: &[usize]) -> f32 {
        let trans = self.trans.value();
        let start = self.labels;
        let end = self.labels + 1;
        let mut s = 0.0;
        let mut prev = start;
        for (t, &y) in path.iter().enumerate() {
            s += trans.get(prev, y) + emissions.get(t, y);
            prev = y;
        }
        s + trans.get(prev, end)
    }
}

struct CrfNllOp {
    allowed: Vec<Vec<usize>>,
    labels: usize,
}

impl CustomOp for CrfNllOp {
    fn grads(&self, out_grad: &Tensor, parent_values: &[&Tensor]) -> Vec<Tensor> {
        let emit = parent_values[0];
        let trans = parent_values[1];
        let scale = out_grad.item();
        let (de_full, dt_full, _) = marginals(emit, trans, self.labels, None);
        let (de_allow, dt_allow, _) = marginals(emit, trans, self.labels, Some(&self.allowed));
        // d(logZ_full - logZ_allowed) = marginals_full - marginals_allowed.
        let mut de = de_full.sub(&de_allow);
        let mut dt = dt_full.sub(&dt_allow);
        for v in de.data_mut() {
            *v *= scale;
        }
        for v in dt.data_mut() {
            *v *= scale;
        }
        vec![de, dt]
    }

    fn name(&self) -> &'static str {
        "crf_nll"
    }
}

#[inline]
fn is_allowed(allowed: Option<&[Vec<usize>]>, t: usize, y: usize) -> bool {
    match allowed {
        None => true,
        Some(sets) => sets[t].contains(&y),
    }
}

/// Forward–backward in log space. Returns `(d logZ / d emissions,
/// d logZ / d transitions, logZ)` for the (optionally constrained) lattice.
fn marginals(
    emit: &Tensor,
    trans: &Tensor,
    labels: usize,
    allowed: Option<&[Vec<usize>]>,
) -> (Tensor, Tensor, f32) {
    let t_len = emit.rows();
    assert!(t_len > 0, "CRF over empty sequence");
    let start = labels;
    let end = labels + 1;
    let ninf = f32::NEG_INFINITY;

    // alpha[t][y]
    let mut alpha = vec![vec![ninf; labels]; t_len];
    for y in 0..labels {
        if is_allowed(allowed, 0, y) {
            alpha[0][y] = emit.get(0, y) + trans.get(start, y);
        }
    }
    let mut scratch = vec![ninf; labels];
    for t in 1..t_len {
        for y in 0..labels {
            if !is_allowed(allowed, t, y) {
                continue;
            }
            for (yp, s) in scratch.iter_mut().enumerate() {
                *s = alpha[t - 1][yp] + trans.get(yp, y);
            }
            alpha[t][y] = emit.get(t, y) + log_sum_exp(&scratch);
        }
    }
    let finals: Vec<f32> = (0..labels)
        .map(|y| alpha[t_len - 1][y] + trans.get(y, end))
        .collect();
    let log_z = log_sum_exp(&finals);
    assert!(
        log_z.is_finite(),
        "CRF partition is not finite (no allowed path?)"
    );

    // beta[t][y]
    let mut beta = vec![vec![ninf; labels]; t_len];
    for y in 0..labels {
        if is_allowed(allowed, t_len - 1, y) {
            beta[t_len - 1][y] = trans.get(y, end);
        }
    }
    for t in (0..t_len - 1).rev() {
        for y in 0..labels {
            if !is_allowed(allowed, t, y) {
                continue;
            }
            for (yn, s) in scratch.iter_mut().enumerate() {
                *s = trans.get(y, yn) + emit.get(t + 1, yn) + beta[t + 1][yn];
            }
            beta[t][y] = log_sum_exp(&scratch);
        }
    }

    // Emission marginals P(y_t = y).
    let mut de = Tensor::zeros(t_len, labels);
    for t in 0..t_len {
        for y in 0..labels {
            let lp = alpha[t][y] + beta[t][y] - log_z;
            if lp.is_finite() {
                de.set(t, y, lp.exp());
            }
        }
    }

    // Transition marginals.
    let mut dt = Tensor::zeros(labels + 2, labels + 2);
    for y in 0..labels {
        // START -> y contributes P(y_0 = y); y -> END contributes
        // P(y_{T-1} = y).
        let v0 = de.get(0, y);
        dt.set(start, y, v0);
        let vl = de.get(t_len - 1, y);
        dt.set(y, end, vl);
    }
    for t in 0..t_len - 1 {
        for y in 0..labels {
            if alpha[t][y] == ninf {
                continue;
            }
            for yn in 0..labels {
                let lp =
                    alpha[t][y] + trans.get(y, yn) + emit.get(t + 1, yn) + beta[t + 1][yn] - log_z;
                if lp.is_finite() {
                    let v = dt.get(y, yn) + lp.exp();
                    dt.set(y, yn, v);
                }
            }
        }
    }
    (de, dt, log_z)
}

/// Viterbi decoding on an (optionally constrained) lattice.
fn viterbi(
    emit: &Tensor,
    trans: &Tensor,
    labels: usize,
    allowed: Option<&[Vec<usize>]>,
) -> Vec<usize> {
    let t_len = emit.rows();
    assert!(t_len > 0, "viterbi over empty sequence");
    let start = labels;
    let end = labels + 1;
    let ninf = f32::NEG_INFINITY;
    let mut score = vec![vec![ninf; labels]; t_len];
    let mut back = vec![vec![0usize; labels]; t_len];
    for y in 0..labels {
        if is_allowed(allowed, 0, y) {
            score[0][y] = emit.get(0, y) + trans.get(start, y);
        }
    }
    for t in 1..t_len {
        for y in 0..labels {
            if !is_allowed(allowed, t, y) {
                continue;
            }
            let mut best = ninf;
            let mut arg = 0;
            for yp in 0..labels {
                let s = score[t - 1][yp] + trans.get(yp, y);
                if s > best {
                    best = s;
                    arg = yp;
                }
            }
            score[t][y] = best + emit.get(t, y);
            back[t][y] = arg;
        }
    }
    let mut best = ninf;
    let mut last = 0;
    for y in 0..labels {
        let s = score[t_len - 1][y] + trans.get(y, end);
        if s > best {
            best = s;
            last = y;
        }
    }
    let mut path = vec![0usize; t_len];
    path[t_len - 1] = last;
    for t in (1..t_len).rev() {
        path[t - 1] = back[t][path[t]];
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Adam, Optimizer};
    use rand::SeedableRng;

    fn tiny_crf(seed: u64, labels: usize) -> (ParamSet, Crf) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let crf = Crf::new(&mut ps, "crf", labels, &mut rng);
        (ps, crf)
    }

    /// Brute-force log partition by path enumeration.
    fn brute_log_z(crf: &Crf, emit: &Tensor, allowed: Option<&[Vec<usize>]>) -> f32 {
        let t_len = emit.rows();
        let labels = crf.num_labels();
        let mut scores = Vec::new();
        let mut path = vec![0usize; t_len];
        fn rec(
            crf: &Crf,
            emit: &Tensor,
            labels: usize,
            allowed: Option<&[Vec<usize>]>,
            t: usize,
            path: &mut Vec<usize>,
            scores: &mut Vec<f32>,
        ) {
            if t == path.len() {
                scores.push(crf.path_score(emit, path));
                return;
            }
            for y in 0..labels {
                if is_allowed(allowed, t, y) {
                    path[t] = y;
                    rec(crf, emit, labels, allowed, t + 1, path, scores);
                }
            }
        }
        rec(crf, emit, labels, allowed, 0, &mut path, &mut scores);
        log_sum_exp(&scores)
    }

    #[test]
    fn partition_matches_brute_force() {
        let (_, crf) = tiny_crf(1, 3);
        let emit = Tensor::from_vec(4, 3, (0..12).map(|i| (i as f32 * 0.37).sin()).collect());
        let fast = crf.log_partition(&emit);
        let brute = brute_log_z(&crf, &emit, None);
        assert!((fast - brute).abs() < 1e-3, "fast {fast} vs brute {brute}");
    }

    #[test]
    fn constrained_partition_matches_brute_force() {
        let (_, crf) = tiny_crf(2, 3);
        let emit = Tensor::from_vec(3, 3, (0..9).map(|i| (i as f32 * 0.73).cos()).collect());
        let allowed = vec![vec![0, 1], vec![2], vec![0, 2]];
        let (_, _, fast) = marginals(&emit, &crf.trans.value(), 3, Some(&allowed));
        let brute = brute_log_z(&crf, &emit, Some(&allowed));
        assert!((fast - brute).abs() < 1e-3, "fast {fast} vs brute {brute}");
    }

    #[test]
    fn nll_equals_logz_minus_gold_score() {
        let (_, crf) = tiny_crf(3, 2);
        let emit = Tensor::from_vec(3, 2, vec![0.5, -0.3, 0.2, 0.9, -0.4, 0.1]);
        let gold = vec![0, 1, 1];
        let mut g = Graph::new();
        let e = g.input(emit.clone());
        let loss = crf.nll(&mut g, e, &gold);
        let expected = crf.log_partition(&emit) - crf.path_score(&emit, &gold);
        assert!((g.value(loss).item() - expected).abs() < 1e-4);
        assert!(g.value(loss).item() >= -1e-5, "NLL must be non-negative");
    }

    #[test]
    fn fuzzy_nll_never_exceeds_strict_nll() {
        // Allowing extra labels can only increase the numerator mass.
        let (_, crf) = tiny_crf(4, 3);
        let emit = Tensor::from_vec(3, 3, (0..9).map(|i| (i as f32 * 0.21).sin()).collect());
        let gold = vec![1, 0, 2];
        let mut g = Graph::new();
        let e = g.input(emit.clone());
        let strict = crf.nll(&mut g, e, &gold);
        let fuzzy_sets = vec![vec![1, 2], vec![0], vec![2, 0]];
        let e2 = g.input(emit.clone());
        let fuzzy = crf.fuzzy_nll(&mut g, e2, &fuzzy_sets);
        assert!(g.value(fuzzy).item() <= g.value(strict).item() + 1e-5);
    }

    #[test]
    fn crf_gradient_finite_difference() {
        let (_, crf) = tiny_crf(5, 2);
        let emit = Tensor::from_vec(3, 2, vec![0.4, -0.1, 0.3, 0.2, -0.5, 0.6]);
        let gold = vec![0, 1, 0];

        let mut g = Graph::new();
        let e = g.input(emit.clone());
        let loss = crf.nll(&mut g, e, &gold);
        g.backward(loss);
        let de = g.grad(e).clone();
        let dt = crf.trans.grad().clone();

        let eps = 1e-2f32;
        // Emissions.
        for k in 0..emit.len() {
            let mut ep = emit.clone();
            ep.data_mut()[k] += eps;
            let mut em = emit.clone();
            em.data_mut()[k] -= eps;
            let lp = {
                let mut g = Graph::new();
                let e = g.input(ep);
                let l = crf.nll(&mut g, e, &gold);
                g.value(l).item()
            };
            let lm = {
                let mut g = Graph::new();
                let e = g.input(em);
                let l = crf.nll(&mut g, e, &gold);
                g.value(l).item()
            };
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (de.data()[k] - num).abs() < 2e-2,
                "emission grad {k}: analytic {} vs numeric {num}",
                de.data()[k]
            );
        }
        // Transitions (spot-check a few entries).
        for &k in &[0usize, 3, 5, 9] {
            let orig = crf.trans.value().data()[k];
            crf.trans.value_mut().data_mut()[k] = orig + eps;
            let lp = {
                let mut g = Graph::new();
                let e = g.input(emit.clone());
                let l = crf.nll(&mut g, e, &gold);
                g.value(l).item()
            };
            crf.trans.value_mut().data_mut()[k] = orig - eps;
            let lm = {
                let mut g = Graph::new();
                let e = g.input(emit.clone());
                let l = crf.nll(&mut g, e, &gold);
                g.value(l).item()
            };
            crf.trans.value_mut().data_mut()[k] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (dt.data()[k] - num).abs() < 2e-2,
                "trans grad {k}: analytic {} vs numeric {num}",
                dt.data()[k]
            );
        }
    }

    #[test]
    fn decode_finds_highest_scoring_path() {
        let (_, crf) = tiny_crf(6, 3);
        let emit = Tensor::from_vec(3, 3, (0..9).map(|i| (i as f32 * 1.3).sin()).collect());
        let decoded = crf.decode(&emit);
        let decoded_score = crf.path_score(&emit, &decoded);
        // Compare against every path.
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    let s = crf.path_score(&emit, &[a, b, c]);
                    assert!(
                        s <= decoded_score + 1e-5,
                        "path {:?} beats viterbi",
                        [a, b, c]
                    );
                }
            }
        }
    }

    #[test]
    fn constrained_decode_respects_allowed_sets() {
        let (_, crf) = tiny_crf(7, 3);
        let emit = Tensor::from_vec(3, 3, vec![5.0, 0.0, 0.0, 5.0, 0.0, 0.0, 5.0, 0.0, 0.0]);
        // Label 0 dominates but is forbidden at position 1.
        let allowed = vec![vec![0, 1, 2], vec![1, 2], vec![0, 1, 2]];
        let path = crf.decode_constrained(&emit, &allowed);
        assert_ne!(path[1], 0);
        assert_eq!(path[0], 0);
        assert_eq!(path[2], 0);
    }

    #[test]
    fn crf_learns_alternating_transitions() {
        // Emissions are uninformative; only transitions can explain the gold
        // alternating sequences, so training must push the transition matrix
        // toward alternation.
        let (ps, crf) = tiny_crf(8, 2);
        let mut opt = Adam::new(0.1);
        let emit = Tensor::zeros(4, 2);
        for _ in 0..60 {
            let mut g = Graph::new();
            let e = g.input(emit.clone());
            let l1 = crf.nll(&mut g, e, &[0, 1, 0, 1]);
            let e2 = g.input(emit.clone());
            let l2 = crf.nll(&mut g, e2, &[1, 0, 1, 0]);
            let total = g.add(l1, l2);
            g.backward(total);
            opt.step(&ps);
        }
        let decoded = crf.decode(&emit);
        for w in decoded.windows(2) {
            assert_ne!(w[0], w[1], "decoded path {decoded:?} does not alternate");
        }
    }

    #[test]
    #[should_panic(expected = "empty allowed set")]
    fn empty_allowed_set_rejected() {
        let (_, crf) = tiny_crf(9, 2);
        let mut g = Graph::new();
        let e = g.input(Tensor::zeros(2, 2));
        crf.fuzzy_nll(&mut g, e, &[vec![0], vec![]]);
    }
}
